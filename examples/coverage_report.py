#!/usr/bin/env python3
"""Use case IV-B: coverage of a class.

Rebuilds the paper's analysis of ITCS 3145 against both curricula — the
ranked covered areas, the untouched areas, the missing-tools omission —
and renders the two Figure 2 panels for the class as text trees.

Run:  python examples/coverage_report.py
"""

from repro import class_report, compute_coverage, seeded_repository
from repro.viz import tree_render


def main() -> None:
    repo = seeded_repository()

    for ontology in ("PDC12", "CS13"):
        report = class_report(repo, "itcs3145", ontology)
        print(report.format())
        print("\n" + "-" * 72 + "\n")

    print("Figure 2f — ITCS 3145 classified against PDC12:\n")
    coverage = compute_coverage(repo, "PDC12", collection="itcs3145")
    tree = coverage.tree(repo.ontology("PDC12"))
    print(tree_render.render_text(tree, max_depth=2))

    print("\nFigure 2c — ITCS 3145 classified against CS13 (areas/units):\n")
    coverage = compute_coverage(repo, "CS13", collection="itcs3145")
    tree = coverage.tree(repo.ontology("CS13"))
    print(tree_render.render_text(tree, max_depth=2))

    print(
        "\nTake-home (paper IV-B): the class is a Programming-then-"
        "Algorithms course; Architecture and Cross-Cutting are nearly "
        "untouched, PDC12 Tools coverage is absent (the instructor's "
        "omission), and non-PDC areas like Graphics or Intelligent "
        "Systems could host engaging new examples."
    )


if __name__ == "__main__":
    main()
