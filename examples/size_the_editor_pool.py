#!/usr/bin/env python3
"""Sizing the editor pool for a crowdsourced CAR-CS deployment.

The paper proposes crowdsourced curation with editor review and expects
auto-suggested classifications to "save time for the user".  This example
runs the curation-queue simulation at growing submission loads and shows
the staffing answer — including how much the recommender (see
examples/crowdsourced_curation.py) shrinks the pool.

Run:  python examples/size_the_editor_pool.py
"""

from repro.analysis.crowdsim import (
    CurationConfig,
    editors_needed,
    simulate,
    sweep_editor_pool,
)


def main() -> None:
    print("Review cost: the paper's measured 15-25 minutes per item.")
    print("Auto-suggest saves 40% of review time (verification remains).\n")

    print("How many editors keep the queue stable?")
    print(f"  {'submissions/day':>16s} {'plain':>6s} {'auto-suggest':>13s}")
    for load in (20, 50, 100, 200):
        plain = editors_needed(load, horizon_days=15)
        assisted = editors_needed(load, autosuggest=True, horizon_days=15)
        print(f"  {load:16d} {plain:6d} {assisted:13d}")

    print("\nService quality at 50 submissions/day (30 working days):")
    print(f"  {'editors':>8s} {'mean wait (min)':>16s} {'p90':>8s} "
          f"{'backlog':>8s} {'utilization':>12s}")
    for result in sweep_editor_pool(
        pool_sizes=(1, 2, 3, 5, 8), submissions_per_day=50
    ):
        print(
            f"  {result.config.n_editors:8d} "
            f"{result.mean_sojourn_minutes:16.1f} "
            f"{result.p90_sojourn_minutes:8.1f} "
            f"{result.backlog_at_end:8d} "
            f"{result.editor_utilization:12.2f}"
        )

    nifty_day = simulate(CurationConfig(
        n_editors=1, submissions_per_day=97 / 1.0, horizon_days=1.0,
    ))
    print(
        f"\nSanity anchor: at the paper's own 15-25 min/item, one editor "
        f"publishes only {nifty_day.published} of 97 materials in an 8h "
        f"day — entering the full corpus is really ~4 working days, which "
        f"puts the paper's 'about a day of work' in perspective and "
        f"strengthens its own case for crowdsourcing plus auto-suggest."
    )


if __name__ == "__main__":
    main()
