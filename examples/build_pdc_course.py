#!/usr/bin/env python3
"""Build a PDC course plan from the repository (planner extension).

Flips the paper's use cases around: instead of analyzing an existing
class (IV-B), *assemble* one.  Given the PDC12 core topics as the target,
greedy set cover picks a small set of classified materials; whatever
remains uncoverable is exactly the gap list PDC experts should develop
against (Section I goal #1).

Run:  python examples/build_pdc_course.py
"""

from repro import seeded_repository
from repro.analysis import core_targets, plan_course
from repro.core.ontology import Tier


def main() -> None:
    repo = seeded_repository()
    pdc12 = repo.ontology("PDC12")
    targets = core_targets(pdc12, [Tier.CORE])

    print(f"Target: all {len(targets)} PDC12 core topics\n")

    print("Plan A — use any material in the repository:")
    plan = plan_course(repo, "PDC12", targets)
    print(plan.format(pdc12))

    print("\n" + "=" * 72 + "\n")
    print("Plan B — a compact 6-material seminar:")
    compact = plan_course(repo, "PDC12", targets, max_materials=6)
    for pick in compact.picks:
        print(f"  week slot: {pick.title} "
              f"(+{len(pick.newly_covered)} core topics)")
    print(f"  -> covers {compact.coverage_ratio:.0%} of the core")

    print("\nPlan C — restricted to adoptable Peachy assignments only:")
    peachy_only = plan_course(
        repo, "PDC12", targets, collections=["peachy"]
    )
    print(f"  {len(peachy_only.picks)} assignments cover "
          f"{peachy_only.coverage_ratio:.0%} of the core — the Peachy set "
          f"alone cannot yet carry a full course (the IV-C gap, quantified)")


if __name__ == "__main__":
    main()
