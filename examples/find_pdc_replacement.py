#!/usr/bin/env python3
"""Use case IV-D: finding PDC reference material for an early course.

An instructor teaching with Nifty-style assignments asks: which materials
cover the same topics as mine *but also* cover PDC topics?  ("replace a
lecture on looping construct with one that ... also includes discussion
of parallel loops.")  This walks the Figure 3 machinery from one
instructor's material outward.

Run:  python examples/find_pdc_replacement.py
"""

from repro import seeded_repository, similarity_graph
from repro.corpus import collection_ids


def main() -> None:
    repo = seeded_repository()
    nifty_ids = collection_ids(repo, "nifty")
    peachy_ids = collection_ids(repo, "peachy")

    graph = similarity_graph(
        repo, nifty_ids, peachy_ids, threshold=2,
        left_group="nifty", right_group="peachy",
    )
    cs13 = repo.ontology("CS13")

    print("For each Nifty assignment with a PDC counterpart (Figure 3):\n")
    for nid in nifty_ids:
        neighbors = list(graph.neighbors(nid))
        if not neighbors:
            continue
        mine = repo.get_material(nid)
        print(f"{mine.title}  (what I teach today)")
        for pid in neighbors:
            peachy = repo.get_material(pid)
            shared = graph.get_edge_data(nid, pid)["shared_keys"]
            labels = ", ".join(cs13.node(k).label for k in shared)
            extra_pdc = sorted(
                repo.classification_of(pid).keys("PDC12")
            )[:3]
            print(f"  -> {peachy.title}")
            print(f"     shares: {labels}")
            print(f"     adds PDC topics such as:")
            pdc12 = repo.ontology("PDC12")
            for key in extra_pdc:
                print(f"       {pdc12.path_string(key)}")
        print()

    isolated = [n for n in peachy_ids if graph.degree(n) == 0]
    print("Peachy assignments with no early-CS anchor (systems-oriented):")
    for pid in isolated:
        print(f"  - {repo.get_material(pid).title}")


if __name__ == "__main__":
    main()
