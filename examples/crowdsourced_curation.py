#!/usr/bin/env python3
"""The crowdsourced curation model (Sections III-A and Conclusion).

"Instructors can upload their own material in the system and a number of
editors can review the uploaded materials ... Less knowledgeable users
can suggest changes to the metadata which must be verified by an
editor."  This example drives that full role-based workflow, including
the auto-suggest assist that shrinks the paper's 15-25 minute manual
classification cost.

Run:  python examples/crowdsourced_curation.py
"""

from repro import Material, Role, seeded_repository
from repro.core.classification import ClassificationSet
from repro.core.recommend import TextKnnRecommender
from repro.corpus import keys as K


def main() -> None:
    repo = seeded_repository()

    editor = repo.add_user("Dr. Expert", Role.EDITOR)
    submitter = repo.add_user("New Instructor", Role.SUBMITTER)
    user = repo.add_user("Student Volunteer", Role.USER)

    print("1. The instructor submits a material with a rough classification")
    rough = ClassificationSet()
    rough.add("CS13", K.SDF_CTRL)
    submission = repo.submit_material(
        Material(
            title="Parallel Pi with Threads",
            description=(
                "Estimate pi by throwing random darts from multiple "
                "pthreads and combining the per-thread tallies with a "
                "guarded shared counter."
            ),
            collection="community",
        ),
        rough,
        submitted_by=submitter,
    )
    pending = repo.pending_submissions()
    print(f"   pending submissions: {len(pending)}")
    material_id = pending[0]["material_id"]

    print("\n2. The recommender proposes the missing classifications")
    recommender = TextKnnRecommender(repo).fit(exclude={material_id})
    text = repo.get_material(material_id).text()
    for rec in recommender.recommend(text, top=5):
        print(f"   suggested ({rec.score:.2f}): {rec.key}")

    print("\n3. The editor fixes the classification and approves")
    repo.classify(material_id, "PDC12", K.P_PTHREADS)
    repo.classify(material_id, "PDC12", K.P_CRITICAL)
    repo.classify(material_id, "PDC12", K.A_MONTECARLO)
    status = repo.review_submission(submission, editor=editor, approve=True)
    print(f"   submission status: {status.value}")

    print("\n4. A user later suggests one more entry; the editor verifies")
    suggestion = repo.suggest_classification(
        material_id, K.P_SPEEDUP, action="add", suggested_by=user
    )
    repo.review_suggestion(suggestion, editor=editor, approve=True)

    final = repo.classification_of(material_id)
    print(f"\nFinal classification ({len(final)} entries):")
    for item in final.items():
        print(f"   {item}")


if __name__ == "__main__":
    main()
