#!/usr/bin/env python3
"""Quickstart: seed the CAR-CS repository and run every headline analysis.

Reproduces, in one script, the paper's seeded prototype state (Section
III-B) and a one-screen summary of Figures 2 and 3.

Run:  python examples/quickstart.py
"""

from repro import (
    compute_coverage,
    isolated_materials,
    seeded_repository,
    similarity_graph,
)
from repro.corpus import collection_ids


def main() -> None:
    print("Seeding CAR-CS with both ontologies and all three corpora...")
    repo = seeded_repository()

    cs13 = repo.ontology("CS13")
    pdc12 = repo.ontology("PDC12")
    print(f"  CS13  : {len(cs13):5d} entries, {len(cs13.areas())} knowledge areas")
    print(f"  PDC12 : {len(pdc12):5d} entries, {len(pdc12.areas())} areas")
    print(f"  materials: {repo.material_count()} "
          f"({repo.material_count('nifty')} Nifty, "
          f"{repo.material_count('peachy')} Peachy, "
          f"{repo.material_count('itcs3145')} ITCS 3145)")

    print("\nCS13 area coverage per corpus (Figure 2 top rows):")
    header = f"{'area':42s} {'nifty':>6s} {'peachy':>7s} {'itcs':>6s}"
    print("  " + header)
    reports = {
        name: compute_coverage(repo, "CS13", collection=name)
        for name in ("nifty", "peachy", "itcs3145")
    }
    for area in cs13.areas():
        row = [reports[n].count(area.key) for n in ("nifty", "peachy", "itcs3145")]
        if any(row):
            print(f"  {area.label:42s} {row[0]:6d} {row[1]:7d} {row[2]:6d}")

    print("\nFigure 3: Nifty-Peachy similarity graph (>= 2 shared items)")
    graph = similarity_graph(
        repo,
        collection_ids(repo, "nifty"),
        collection_ids(repo, "peachy"),
        threshold=2,
        left_group="nifty",
        right_group="peachy",
    )
    print(f"  edges: {graph.number_of_edges()}")
    print(f"  isolated Nifty : {len(isolated_materials(graph, 'nifty'))} / 65")
    print(f"  isolated Peachy: {len(isolated_materials(graph, 'peachy'))} / 11")
    connected = [
        repo.get_material(n).title
        for n in graph.nodes()
        if graph.degree(n) > 0
    ]
    print("  the cluster:", ", ".join(sorted(connected)))


if __name__ == "__main__":
    main()
