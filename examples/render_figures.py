#!/usr/bin/env python3
"""Regenerate every figure of the paper as SVG + text artifacts.

Writes to artifacts/:
  figure2_{nifty,peachy,itcs3145}_{cs13,pdc12}.svg/.txt   (six panels)
  figure3_similarity.svg/.txt

Run:  python examples/render_figures.py
"""

from pathlib import Path

from repro import compute_coverage, seeded_repository, similarity_graph
from repro.corpus import collection_ids
from repro.viz import graph_render, tree_render

ARTIFACTS = Path(__file__).resolve().parent.parent / "artifacts"


def main() -> None:
    ARTIFACTS.mkdir(exist_ok=True)
    repo = seeded_repository()

    panel = ord("a")
    for onto_name in ("CS13", "PDC12"):
        for collection in ("nifty", "peachy", "itcs3145"):
            coverage = compute_coverage(repo, onto_name, collection=collection)
            tree = coverage.tree(repo.ontology(onto_name))
            title = f"Figure 2{chr(panel)}: {collection} / {onto_name}"
            stem = f"figure2_{collection}_{onto_name.lower()}"
            (ARTIFACTS / f"{stem}.svg").write_text(
                tree_render.render_svg(tree, title=title)
            )
            (ARTIFACTS / f"{stem}.txt").write_text(
                tree_render.render_text(tree, max_depth=2) + "\n"
            )
            print(f"wrote artifacts/{stem}.svg (+.txt)  [{title}]")
            panel += 1

    graph = similarity_graph(
        repo,
        collection_ids(repo, "nifty"),
        collection_ids(repo, "peachy"),
        threshold=2,
        left_group="nifty",
        right_group="peachy",
    )
    (ARTIFACTS / "figure3_similarity.svg").write_text(
        graph_render.render_svg(
            graph, title="Figure 3: Nifty (blue) vs Peachy (red) similarity"
        )
    )
    (ARTIFACTS / "figure3_similarity.txt").write_text(
        graph_render.render_text(graph) + "\n"
    )
    print("wrote artifacts/figure3_similarity.svg (+.txt)")

    from repro.viz.export import write_similarity_graphml
    from repro.viz.html_report import write_report

    write_similarity_graphml(graph, ARTIFACTS / "figure3_similarity.graphml")
    print("wrote artifacts/figure3_similarity.graphml")
    write_report(repo, ARTIFACTS / "report.html")
    print("wrote artifacts/report.html (all panels, one page)")


if __name__ == "__main__":
    main()
