#!/usr/bin/env python3
"""Driving the Figure 1b classification tree widget headlessly.

Replays the IV-A curation session: open the PDC12 tree for a new
material, search for phrases, select entries from the highlighted hits,
and read the resulting classification back — then lint it the way an
editor would.

Run:  python examples/classify_with_widget.py
"""

from repro import Material, seeded_repository
from repro.analysis import lint_material
from repro.viz.tree_widget import TreeListWidget


def main() -> None:
    repo = seeded_repository()
    widget = TreeListWidget(repo.ontology("PDC12"))

    print("The collapsed PDC12 tree (what the curator first sees):\n")
    print(widget.render_text())

    print("\nSearching for 'reduction'...")
    hits = widget.search("reduction")
    print(f"{hits} entries highlighted; the tree opens to them:\n")
    print(widget.render_text(width=76))

    for key in widget.highlighted():
        widget.select(key)
    widget.search("speedup")
    for key in widget.highlighted():
        if "performance-metrics" in key:
            widget.select(key)

    print("\nThe selections, as they appear 'at the bottom of the "
          "material description':")
    classification = widget.to_classification()
    pdc12 = repo.ontology("PDC12")
    for item in classification.items():
        print(f"  {pdc12.path_string(str(item.key))}")

    material = repo.add_material(
        Material(
            title="Tree-Based Array Sum",
            description=(
                "Sum a large array with a tree-shaped parallel reduction "
                "and compare speedup against the sequential loop."
            ),
            collection="new",
        ),
        classification,
    )
    print(f"\nStored as material id={material.id}.")

    print("\nEditor's lint pass:")
    findings = lint_material(repo, material.id)
    if not findings:
        print("  clean — nothing for the editor to fix")
    for finding in findings:
        print(f"  [{finding.rule}] {finding.detail}")


if __name__ == "__main__":
    main()
