#!/usr/bin/env python3
"""Use case IV-A: entering and classifying a new pedagogical material.

Walks the Figure 1 workflow against the REST API: create the material
with its basic metadata (Figure 1a), search the classification tree for
relevant entries (the Figure 1b phrase search), attach classifications,
and read the finished record back — then shows the recommender proposing
the remaining entries, the paper's envisioned time-saver.

Run:  python examples/enter_material.py
"""

from repro import seeded_repository
from repro.web import CarCsApi, Client


def main() -> None:
    repo = seeded_repository()
    client = Client(CarCsApi(repo), root="/api/v1")

    print("Step 1 — create the material (Figure 1a metadata form)")
    created = client.post("/assignments", body={
        "title": "Parallel Wave Equation",
        "description": (
            "Propagate a 1D wave with a finite-difference stencil, then "
            "parallelize the time-step loop with OpenMP and study speedup."
        ),
        "kind": "assignment",
        "course_level": "intermediate",
        "languages": ["C", "OpenMP"],
        "collection": "new",
        "year": 2019,
    })
    material = created.json()
    print(f"  created material id={material['id']}: {material['title']}")

    print("\nStep 2 — search the ontology trees (Figure 1b phrase search)")
    for phrase in ("stencil", "parallel loops", "speedup"):
        for onto in ("CS13", "PDC12"):
            hits = client.get(
                f"/ontologies/{onto}/entries?search={phrase}&limit=2"
            ).json()["items"]
            for hit in hits:
                print(f"  [{phrase!r:17s} in {onto}] {hit['path']}")

    print("\nStep 3 — attach the chosen classifications")
    from repro.ontologies.cs2013 import topic_key
    from repro.ontologies.pdc12 import key_of

    chosen = [
        ("CS13", topic_key(
            "PD", "Parallel Algorithms, Analysis, and Programming",
            "Parallel loops and iteration spaces")),
        ("PDC12", key_of(
            "ALGO", "Algorithmic Paradigms", "Stencil-based iteration")),
        ("PDC12", key_of(
            "PROG", "Parallel programming paradigms and notations",
            "Programming notations: compiler directives and pragmas "
            "(e.g., OpenMP)")),
    ]
    for onto, key in chosen:
        response = client.post(
            f"/assignments/{material['id']}/classifications",
            body={"ontology": onto, "key": key, "bloom": "apply" if onto == "PDC12" else None},
        )
        assert response.ok, response.text()
        print(f"  + {key}")

    print("\nStep 4 — let the system suggest what else commonly co-occurs")
    suggestions = client.post("/recommend", body={
        "text": material["description"],
        "selected": [key for _, key in chosen],
        "top": 6,
    }).json()["suggestions"]
    for s in suggestions:
        print(f"  suggested ({s['score']:.2f}): {s['key']}")

    print("\nStep 5 — the finished record")
    final = client.get(f"/assignments/{material['id']}").json()
    print(f"  {final['title']} — {len(final['classifications'])} classifications")
    for c in final["classifications"]:
        print(f"    {c['ontology']:6s} {c['key']}"
              + (f"  @{c['bloom']}" if c["bloom"] else ""))


if __name__ == "__main__":
    main()
