#!/usr/bin/env python3
"""Surviving a curriculum revision: PDC12 → PDC19.

The paper anticipates the 2019 PDC curriculum update and expects it to
fix the 2012 oddities it reports (Section IV-A).  This example builds
the projected PDC19 edition, diffs it against PDC12, migrates every
stored classification across the revision, and shows the class-coverage
analysis still working on the new edition — no curation work lost.

Run:  python examples/curriculum_revision.py
"""

from repro import compute_coverage, seeded_repository
from repro.core.migrate import migrate_classifications
from repro.ontologies import load, pdc2019
from repro.ontologies.diff import diff_ontologies


def main() -> None:
    repo = seeded_repository()

    print("Step 1 — what changed between editions?\n")
    diff = diff_ontologies(load("PDC12"), load("PDC19"))
    print(diff.format())
    print(f"\nsummary: {diff.summary()}")

    print("\nStep 2 — migrate every classification to PDC19")
    report = migrate_classifications(
        repo, "PDC12", load("PDC19"), pdc2019.translate_key
    )
    print(f"  migrated 1:1 : {report.migrated_links}")
    print(f"  expanded 1:N : {report.expanded_links} (split topics)")
    print(f"  dropped      : {len(report.dropped_links)} (editor queue)")
    print(f"  materials    : {len(report.materials_touched)}")

    print("\nStep 3 — the IV-B coverage analysis on the new edition")
    coverage = compute_coverage(repo, "PDC19", collection="itcs3145")
    for area, count in coverage.area_ranking(repo.ontology("PDC19")):
        if count:
            print(f"  {area.label:32s} {count:3d}")

    print(
        "\nNote how Amdahl's relocation moves the speedup lectures from "
        "Programming into Algorithm — the ranking tightens but the "
        "class's shape survives the edition change, and the new "
        "Map-Reduce entry finally gives the MapReduce-MPI materials a "
        "proper home:"
    )
    pdc19 = repo.ontology("PDC19")
    mapreduce = pdc19.search("map-reduce")[0]
    hits = repo.materials_with(mapreduce.key)
    print(f"  {pdc19.path_string(mapreduce.key)}: "
          f"{len(hits)} materials could now be classified here")


if __name__ == "__main__":
    main()
