#!/usr/bin/env python3
"""Use case IV-C: identifying gaps in the existing PDC offering.

Compares the Nifty (classic early-CS) and Peachy (PDC) communities over
CS13: where each invests, how aligned they are, and which classic-CS
topics the PDC community should target next to drive adoption — the
paper's "take home message".

Run:  python examples/gap_analysis.py
"""

from repro import seeded_repository
from repro.analysis import compare_communities
from repro.core.coverage import compute_coverage
from repro.core.gaps import curriculum_holes
from repro.core.ontology import Tier


def main() -> None:
    repo = seeded_repository()

    comparison = compare_communities(repo, "nifty", "peachy", "CS13")
    print(comparison.format())

    print("\nMisaligned areas (one community only):")
    for area in comparison.misaligned_areas():
        side = "nifty-only" if area.reference_count else "peachy-only"
        count = max(area.reference_count, area.candidate_count)
        print(f"  {area.code:5s} {area.label:44s} {side} ({count})")

    print("\nPDC12 core topics with no material in the whole repository")
    print("(what PDC experts should develop, Section I goal #1):")
    coverage = compute_coverage(repo, "PDC12")
    holes = curriculum_holes(repo.ontology("PDC12"), coverage, tiers=(Tier.CORE,))
    for node in holes[:10]:
        print(f"  - {repo.ontology('PDC12').path_string(node.key)}")
    if not holes:
        print("  (none — every core topic has at least one material)")

    print(
        "\nTake-home (paper IV-C): unless the PDC community develops "
        "assignments that align better with classic CS1-CS2 assignments "
        f"(alignment is only {comparison.alignment:.2f}), broad adoption "
        "is unlikely."
    )


if __name__ == "__main__":
    main()
