"""The curated corpus substrate: Nifty, Peachy, ITCS 3145 + generator."""

from . import itcs3145, nifty, peachy
from .base import MANUAL_CLASSIFICATION_MINUTES, Spec, load_into
from .seed import collection_ids, seed_all, seed_ontologies

__all__ = [
    "MANUAL_CLASSIFICATION_MINUTES",
    "Spec",
    "collection_ids",
    "itcs3145",
    "load_into",
    "nifty",
    "peachy",
    "seed_all",
    "seed_ontologies",
]
