"""The Peachy Parallel Assignments corpus (11 assignments).

"The Peachy Parallel Assignments are a recent effort of the EduPar and
EduHPC workshops to publicize well designed, exciting, and interesting
assignments that include some parallel and distributed computing aspects
... so far 11 Peachy Parallel Assignments have been presented."
(Section II-A.)

Classification constraints reconstructed from the paper (DESIGN.md §2/§5):

* every assignment carries PDC12 entries and CS13
  Parallel-and-Distributed entries (PD is Peachy's top CS13 area, IV-C);
* the "following" CS13 areas are Systems Fundamentals and Architecture;
* SDF is low, and Peachy's SDF coverage sits in Fundamental Programming
  Concepts (variables, loops) plus the single Fundamental Data Structures
  entry "Arrays" — no OOP anywhere (IV-C);
* the four simulation-flavored assignments named in Section IV-D carry
  both "Arrays" and "Conditional and iterative control structures" and
  therefore pair with the six named Nifty assignments in Figure 3;
* the systems-oriented assignments ("dealing with middleware, or data
  races") share fewer than two items with every Nifty assignment and are
  isolated in Figure 3.
"""

from __future__ import annotations

from repro.core.material import CourseLevel, MaterialKind

from . import keys as K
from .base import Spec, check_unique_titles

COLLECTION = "peachy"

CS1 = CourseLevel.CS1
CS2 = CourseLevel.CS2
INTER = CourseLevel.INTERMEDIATE

#: Titles of the four Figure 3 cluster members (named in Section IV-D).
CLUSTER_TITLES = (
    "Computing a Movie of Zooming into a Fractal",
    "Fire Simulator and Fractal",
    "Using a Monte Carlo Pattern to Simulate a Forest Fire",
    "Storm of High-Energy Particles",
)

SPECS: tuple[Spec, ...] = (
    # ----- the four cluster assignments (Arrays + control structures) ------
    Spec(
        "Computing a Movie of Zooming into a Fractal", year=2018, level=CS2,
        languages=("C", "OpenMP"),
        description=(
            "Render successive frames of a Mandelbrot zoom into pixel "
            "arrays: per-pixel iteration loops are embarrassingly parallel, "
            "and uneven frame costs motivate dynamic loop scheduling and "
            "speedup measurement."
        ),
        cs13=(K.SDF_ARRAYS, K.SDF_CTRL, K.SDF_VARS, K.GV_FRACTAL,
              K.PD_EMBARRASS, K.PD_LOOPS, K.PD_SPEEDUP, K.CN_PROC_PARALLEL),
        pdc12=(K.P_PARLOOPS, K.P_OPENMP, K.P_SPEEDUP, K.P_LOADBAL,
               K.P_DATAPAR),
    ),
    Spec(
        "Fire Simulator and Fractal", year=2018, level=CS2,
        languages=("C", "OpenMP"),
        description=(
            "Simulate fire spreading through a forest grid with stochastic "
            "ignition rules, then measure the fractal dimension of the "
            "burned region; the per-cell update loops parallelize with a "
            "data decomposition."
        ),
        cs13=(K.SDF_ARRAYS, K.SDF_CTRL, K.SDF_VARS, K.CN_MONTE_CARLO,
              K.CN_PROC_PARALLEL, K.PD_DATA_DECOMP, K.PD_SPEEDUP),
        pdc12=(K.P_SHMEM, K.P_OPENMP, K.P_DATAPAR, K.A_MONTECARLO,
               K.P_SPEEDUP),
    ),
    Spec(
        "Using a Monte Carlo Pattern to Simulate a Forest Fire", year=2019,
        level=CS1, languages=("C", "OpenMP"),
        description=(
            "Estimate how fire-spread probability affects forest survival: "
            "loop over many randomized trials on a tree array, average the "
            "outcomes, and parallelize the independent trials."
        ),
        cs13=(K.SDF_ARRAYS, K.SDF_CTRL, K.SDF_VARS, K.CN_MONTE_CARLO,
              K.PD_EMBARRASS, K.PD_DATA_DECOMP),
        pdc12=(K.A_MONTECARLO, K.P_PARLOOPS, K.P_OPENMP, K.P_SPEEDUP,
               K.P_NONDET),
    ),
    Spec(
        "Storm of High-Energy Particles", year=2018, level=CS2,
        languages=("C", "MPI", "OpenMP"),
        description=(
            "Simulate waves of high-energy particles bombarding an exposed "
            "surface: accumulate impact energies into a cell array inside "
            "conditional update loops, then distribute the storm across "
            "processes and balance the work."
        ),
        cs13=(K.SDF_ARRAYS, K.SDF_CTRL, K.SDF_VARS, K.PD_DATA_DECOMP,
              K.PD_LOADBAL, K.PD_SPEEDUP, K.CN_PROC_PARALLEL),
        pdc12=(K.P_OPENMP, K.P_MPI, K.P_LOADBAL, K.P_SPEEDUP, K.A_REDUCTION),
    ),
    # ----- systems-oriented assignments (isolated in Figure 3) --------------
    Spec(
        "Heat Diffusion Stencil with MPI", year=2018, level=INTER,
        languages=("C", "MPI"),
        description=(
            "Solve a heat-diffusion problem with a distributed stencil: "
            "halo exchange between neighbor ranks, data distribution "
            "choices, and the latency/bandwidth cost of communication."
        ),
        cs13=(K.PD_MSG, K.PD_SHARED_DIST, K.PD_LOCALITY, K.SF_SEQPAR,
              K.AR_MEM_LOCALITY),
        pdc12=(K.P_MPI, K.P_DISTMEM, K.A_STENCIL, K.P_DATADIST,
               K.ARCH_LATBW),
    ),
    Spec(
        "Hunting Data Races in a Parallel Histogram", year=2019, level=INTER,
        languages=("C", "pthreads"),
        description=(
            "A deliberately racy shared-counter histogram: students observe "
            "nondeterministic results on a multicore machine, locate the "
            "race with a race detector, and repair it with critical "
            "sections."
        ),
        cs13=(K.PD_RACES, K.PD_ATOMICITY, K.OS_MUTEX, K.SF_PVC,
              K.AR_MULTICORE),
        pdc12=(K.P_RACES, K.P_CRITICAL, K.P_PTHREADS, K.P_TOOLS_DEBUG,
               K.P_NONDET),
    ),
    Spec(
        "Publish-Subscribe Middleware", year=2019, level=INTER,
        languages=("Java",),
        description=(
            "Build a small topic-based publish/subscribe middleware: "
            "brokers forward messages to remote subscribers, and the design "
            "must tolerate subscriber failures."
        ),
        cs13=(K.PD_RPC, K.PD_MSG, K.PD_DIST_FAULTS),
        pdc12=(K.P_DISTMEM, K.X_CONCURRENCY),
    ),
    Spec(
        "Bounded Buffer Band", year=2018, level=INTER,
        languages=("C", "pthreads"),
        description=(
            "Producer and consumer threads stream audio chunks through a "
            "bounded buffer; missing synchronization audibly garbles the "
            "music until condition variables and locks are added."
        ),
        cs13=(K.PD_PRODCON, K.PD_ATOMICITY, K.OS_SYNC, K.OS_PRODCON,
              K.SF_MULTI),
        pdc12=(K.P_PTHREADS, K.P_PRODCON, K.P_CRITICAL, K.P_DEADLOCK,
               K.P_TASKS_THREADS),
    ),
    Spec(
        "False Sharing Detective", year=2019, level=INTER,
        languages=("C", "OpenMP"),
        description=(
            "Two per-thread counters that should scale perfectly but do "
            "not: students profile the cache behavior, diagnose false "
            "sharing of a cache line, and fix it with padding."
        ),
        cs13=(K.PD_FALSE_SHARING, K.PD_CACHES, K.AR_COHERENCE,
              K.AR_MEM_LOCALITY, K.SF_HW),
        pdc12=(K.P_FALSE_SHARING, K.P_LOCALITY, K.ARCH_MEMHIER,
               K.ARCH_COHERENCE, K.P_TOOLS_PERF),
    ),
    Spec(
        "Benchmarking Matrix Multiply Across the Memory Hierarchy",
        year=2018, level=INTER, languages=("C",),
        description=(
            "Measure naive, transposed and blocked matrix multiplication "
            "across sizes that straddle the cache levels, relating the "
            "performance cliffs to the memory hierarchy."
        ),
        cs13=(K.AR_MEM_LOCALITY, K.AR_CACHE_ORG, K.SF_BENCH, K.SF_MERIT,
              K.PD_LOCALITY),
        pdc12=(K.ARCH_MEMHIER, K.P_LOCALITY, K.A_MATRIX, K.P_TOOLS_PERF,
               K.P_SPEEDUP),
    ),
    Spec(
        "A First CUDA Kernel", year=2019, level=INTER,
        languages=("CUDA", "C"),
        description=(
            "Port a vector operation to the GPU: map threads to data "
            "elements, reason about SIMD execution, and compare device and "
            "host throughput."
        ),
        cs13=(K.PD_GPU, K.PD_SIMD, K.AR_GPU, K.AR_FLYNN, K.SF_HW),
        pdc12=(K.P_GPU, K.P_SIMD, K.P_DATAPAR, K.ARCH_MULTICORE),
    ),
)

check_unique_titles(SPECS)

assert len(SPECS) == 11, f"expected 11 Peachy specs, found {len(SPECS)}"
