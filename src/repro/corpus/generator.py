"""Parameterised synthetic corpus generator.

The paper's crowdsourcing vision implies corpora far larger than the 97
seeded materials; the SCALE benchmark (DESIGN.md) measures how coverage,
similarity and search behave as the repository grows.  This generator
produces deterministic synthetic materials whose classifications follow a
realistic skewed (Zipf-like) popularity distribution over ontology
entries, with tunable topical clustering so the similarity graph has
non-trivial structure at every size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classification import ClassificationSet
from repro.core.material import CourseLevel, Material, MaterialKind
from repro.core.ontology import NodeKind, Ontology
from repro.core.repository import Repository

_ADJECTIVES = (
    "adaptive", "blazing", "compact", "dynamic", "elegant", "fuzzy",
    "greedy", "hybrid", "incremental", "jittery", "kinetic", "layered",
    "modular", "nimble", "optimal", "parallel", "quick", "robust",
    "scalable", "tiny",
)
_NOUNS = (
    "automaton", "buffer", "cipher", "dataset", "engine", "filter",
    "graph", "heap", "index", "journal", "kernel", "lattice", "matrix",
    "network", "oracle", "pipeline", "queue", "scheduler", "tree",
    "vector",
)
_VERBS = (
    "analyze", "balance", "compress", "decode", "explore", "fold",
    "generate", "hash", "iterate", "join", "merge", "navigate",
    "order", "partition", "query", "rank", "sample", "traverse",
    "update", "visualize",
)


@dataclass
class GeneratorConfig:
    """Knobs for the synthetic corpus."""

    n_materials: int = 100
    min_items: int = 2              # classification entries per material
    max_items: int = 8
    n_clusters: int = 8             # topical neighborhoods in entry space
    zipf_s: float = 1.3             # popularity skew of ontology entries
    seed: int = 20190520            # IPDPSW 2019 opening day
    collection: str = "synthetic"


def _leaf_keys(ontology: Ontology) -> list[str]:
    return [
        n.key
        for n in ontology.nodes()
        if n.kind in (NodeKind.TOPIC, NodeKind.LEARNING_OUTCOME)
    ]


def generate_specs(
    ontology: Ontology, config: GeneratorConfig
) -> list[tuple[Material, ClassificationSet]]:
    """Deterministic synthetic (material, classification) pairs.

    Entries are drawn per material from a mixture of a global Zipf
    popularity law and the material's cluster-local preference, so both
    the "few hot topics" and "topical neighborhoods" properties of real
    corpora are present.
    """
    rng = np.random.default_rng(config.seed)
    leaves = _leaf_keys(ontology)
    n_leaves = len(leaves)
    if n_leaves == 0:
        raise ValueError("ontology has no leaf entries")

    # Global popularity: Zipf over a random permutation of the leaves.
    ranks = rng.permutation(n_leaves) + 1
    popularity = 1.0 / np.power(ranks.astype(np.float64), config.zipf_s)
    popularity /= popularity.sum()

    # Cluster-local preferences: each cluster concentrates on a random
    # subset of ~5% of entries.
    cluster_masks = []
    width = max(4, n_leaves // 20)
    for _ in range(config.n_clusters):
        chosen = rng.choice(n_leaves, size=width, replace=False)
        mask = np.zeros(n_leaves)
        mask[chosen] = 1.0
        cluster_masks.append(mask)

    out: list[tuple[Material, ClassificationSet]] = []
    levels = list(CourseLevel)
    kinds = (
        MaterialKind.ASSIGNMENT,
        MaterialKind.ASSIGNMENT,
        MaterialKind.ASSIGNMENT,
        MaterialKind.LECTURE_SLIDES,
        MaterialKind.EXAM,
    )
    for i in range(config.n_materials):
        cluster = int(rng.integers(config.n_clusters))
        local = cluster_masks[cluster]
        # 60% local neighborhood, 40% global popularity.
        weights = 0.6 * local / max(local.sum(), 1.0) + 0.4 * popularity
        weights /= weights.sum()
        k = int(rng.integers(config.min_items, config.max_items + 1))
        k = min(k, n_leaves)
        chosen = rng.choice(n_leaves, size=k, replace=False, p=weights)

        adjective = _ADJECTIVES[int(rng.integers(len(_ADJECTIVES)))]
        noun = _NOUNS[int(rng.integers(len(_NOUNS)))]
        verb = _VERBS[int(rng.integers(len(_VERBS)))]
        labels = [ontology.node(leaves[int(c)]).label for c in chosen[:3]]
        material = Material(
            title=f"Synthetic {i:05d}: the {adjective} {noun}",
            description=(
                f"Students {verb} a {adjective} {noun} while practicing "
                + "; ".join(l.lower() for l in labels)
                + "."
            ),
            kind=kinds[int(rng.integers(len(kinds)))],
            course_level=levels[int(rng.integers(len(levels)))],
            collection=config.collection,
            year=2010 + int(rng.integers(10)),
        )
        cs = ClassificationSet()
        for c in chosen:
            cs.add(ontology.name, leaves[int(c)])
        out.append((material, cs))
    return out


def _cluster_weights(
    rng: np.random.Generator, n_leaves: int, config: GeneratorConfig
) -> np.ndarray:
    """The per-cluster entry-sampling weight matrix (n_clusters x
    n_leaves), drawn exactly like :func:`generate_specs` draws its
    popularity law and cluster masks."""
    ranks = rng.permutation(n_leaves) + 1
    popularity = 1.0 / np.power(ranks.astype(np.float64), config.zipf_s)
    popularity /= popularity.sum()
    width = max(4, n_leaves // 20)
    weights = np.empty((config.n_clusters, n_leaves))
    for c in range(config.n_clusters):
        chosen = rng.choice(n_leaves, size=width, replace=False)
        mask = np.zeros(n_leaves)
        mask[chosen] = 1.0
        weights[c] = 0.6 * mask / max(mask.sum(), 1.0) + 0.4 * popularity
    weights /= weights.sum(axis=1, keepdims=True)
    return weights


def synthesize_database(
    directory,
    config: GeneratorConfig | None = None,
    *,
    ontology_name: str = "CS13",
    block_rows: int | None = None,
    chunk_rows: int = 1024,
) -> dict:
    """Write ``config.n_materials`` synthetic materials straight to a
    format-2 blocked checkpoint at ``directory`` — the million-material
    path.

    :func:`seed_synthetic` routes every material through engine inserts
    (constraint checks, WAL frames, MVCC publication), which is correct
    but O(corpus) resident and far too slow at 10^6.  This writer
    sidesteps the engine: materials are drawn in vectorized numpy chunks
    (weighted sampling without replacement via exponential races) and
    streamed directly into a :class:`~repro.db.pager.BlockFileWriter`,
    so peak memory is one chunk of rows plus a compact int32 buffer of
    classification links (~12 bytes/link).  ``Database.open`` on the
    result pages rows in lazily through the block cache.

    Deterministic: same config -> byte-identical rows file + manifest.
    Returns a summary dict (materials, links, version, path).
    """
    from pathlib import Path

    from repro.db.pager import BlockFileWriter
    from repro.db.snapshot import schema_to_dict
    from repro.ontologies import load as _load_ontology

    config = config or GeneratorConfig()
    # A scratch in-memory repository supplies everything that is *not*
    # synthesized: table schemas in FK-dependency creation order, the
    # mirrored ontology_entries rows, and the declared index set.
    scratch = Repository()
    scratch.add_ontology(_load_ontology(ontology_name))
    ontology = scratch.ontology(ontology_name)
    leaves = _leaf_keys(ontology)
    n_leaves = len(leaves)
    if n_leaves == 0:
        raise ValueError("ontology has no leaf entries")
    entry_ids = np.array(
        [scratch.entry_id(key) for key in leaves], dtype=np.int64
    )
    labels = [ontology.node(key).label.lower() for key in leaves]

    rng = np.random.default_rng(config.seed)
    weights = _cluster_weights(rng, n_leaves, config)
    levels = [lv.value for lv in CourseLevel]
    kinds = (
        MaterialKind.ASSIGNMENT.value,
        MaterialKind.ASSIGNMENT.value,
        MaterialKind.ASSIGNMENT.value,
        MaterialKind.LECTURE_SLIDES.value,
        MaterialKind.EXAM.value,
    )

    # Per-material link targets, buffered compactly while material rows
    # stream out (link rows serialize later, in table-creation order).
    link_mids: list[np.ndarray] = []
    link_eids: list[np.ndarray] = []

    def material_rows():
        n = config.n_materials
        for start in range(0, n, chunk_rows):
            count = min(chunk_rows, n - start)
            clusters = rng.integers(config.n_clusters, size=count)
            ks = np.minimum(
                rng.integers(config.min_items, config.max_items + 1,
                             size=count),
                n_leaves,
            )
            adj = rng.integers(len(_ADJECTIVES), size=count)
            noun = rng.integers(len(_NOUNS), size=count)
            verb = rng.integers(len(_VERBS), size=count)
            kind = rng.integers(len(kinds), size=count)
            level = rng.integers(len(levels), size=count)
            year = 2010 + rng.integers(10, size=count)
            # Weighted sampling without replacement, all rows at once:
            # each entry's exponential clock fires at Exp(1)/w, and the
            # first k to fire are the sample (the Gumbel-top-k dual).
            clocks = rng.exponential(size=(count, n_leaves))
            clocks /= weights[clusters]
            kmax = int(ks.max())
            top = np.argpartition(
                clocks, min(kmax, n_leaves - 1), axis=1
            )[:, :kmax]
            order = np.take_along_axis(clocks, top, axis=1).argsort(axis=1)
            top = np.take_along_axis(top, order, axis=1)
            mids = np.repeat(
                np.arange(start + 1, start + count + 1, dtype=np.int64), ks
            )
            flat = np.concatenate(
                [top[i, : ks[i]] for i in range(count)]
            ) if count else np.empty(0, dtype=np.int64)
            link_mids.append(mids.astype(np.int32))
            link_eids.append(entry_ids[flat].astype(np.int32))
            for i in range(count):
                mid = start + i + 1
                adjective = _ADJECTIVES[int(adj[i])]
                noun_word = _NOUNS[int(noun[i])]
                chosen = top[i, : min(3, ks[i])]
                yield mid, {
                    "id": mid,
                    "title": f"Synthetic {start + i:05d}: "
                             f"the {adjective} {noun_word}",
                    "description": (
                        f"Students {_VERBS[int(verb[i])]} a {adjective} "
                        f"{noun_word} while practicing "
                        + "; ".join(labels[int(c)] for c in chosen)
                        + "."
                    ),
                    "kind": kinds[int(kind[i])],
                    "url": "",
                    "course_level": levels[int(level[i])],
                    "collection": config.collection,
                    "year": int(year[i]),
                }

    def link_rows():
        lid = 0
        for mids, eids in zip(link_mids, link_eids):
            for mid, eid in zip(mids.tolist(), eids.tolist()):
                lid += 1
                yield lid, {
                    "id": lid,
                    "materials_id": mid,
                    "ontology_entries_id": eid,
                    "bloom": None,
                }

    db = scratch.db
    # Version only needs to be monotonic for future WAL frames; one
    # bump per synthesized material mirrors what inserts would cost.
    final_version = db.version + config.n_materials
    writer = BlockFileWriter(
        directory, version=final_version, name=db.name,
        block_rows=block_rows,
    )
    counts: dict[str, int] = {}
    try:
        with db.lock.write():
            for table in db._tables.values():
                if table.name == "materials":
                    items = material_rows()
                elif table.name == "material_classifications":
                    items = link_rows()
                else:
                    items = iter(sorted(table._rows.items()))
                    writer.add_table(
                        schema_to_dict(table.schema), items,
                        next_id=table._next_id, version=table._version,
                        indexes=table.index_columns(),
                        sorted_indexes=table.sorted_index_columns(),
                    )
                    counts[table.name] = len(table._rows)
                    continue
                counts[table.name] = writer.add_table(
                    schema_to_dict(table.schema), items,
                    indexes=table.index_columns(),
                    sorted_indexes=table.sorted_index_columns(),
                )
        writer.finish()
    except BaseException:
        writer.abort()
        raise
    return {
        "path": str(Path(directory) / "snapshot.json"),
        "materials": counts.get("materials", 0),
        "links": counts.get("material_classifications", 0),
        "version": final_version,
        "tables": counts,
    }


def seed_synthetic(
    repo: Repository,
    ontology_name: str = "CS13",
    config: GeneratorConfig | None = None,
) -> list[int]:
    """Generate and insert a synthetic corpus; returns the material ids.

    The ontology must already be loaded in the repository.
    """
    config = config or GeneratorConfig()
    ontology = repo.ontology(ontology_name)
    ids = []
    for material, cs in generate_specs(ontology, config):
        stored = repo.add_material(material, cs)
        assert stored.id is not None
        ids.append(stored.id)
    return ids
