"""Parameterised synthetic corpus generator.

The paper's crowdsourcing vision implies corpora far larger than the 97
seeded materials; the SCALE benchmark (DESIGN.md) measures how coverage,
similarity and search behave as the repository grows.  This generator
produces deterministic synthetic materials whose classifications follow a
realistic skewed (Zipf-like) popularity distribution over ontology
entries, with tunable topical clustering so the similarity graph has
non-trivial structure at every size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classification import ClassificationSet
from repro.core.material import CourseLevel, Material, MaterialKind
from repro.core.ontology import NodeKind, Ontology
from repro.core.repository import Repository

_ADJECTIVES = (
    "adaptive", "blazing", "compact", "dynamic", "elegant", "fuzzy",
    "greedy", "hybrid", "incremental", "jittery", "kinetic", "layered",
    "modular", "nimble", "optimal", "parallel", "quick", "robust",
    "scalable", "tiny",
)
_NOUNS = (
    "automaton", "buffer", "cipher", "dataset", "engine", "filter",
    "graph", "heap", "index", "journal", "kernel", "lattice", "matrix",
    "network", "oracle", "pipeline", "queue", "scheduler", "tree",
    "vector",
)
_VERBS = (
    "analyze", "balance", "compress", "decode", "explore", "fold",
    "generate", "hash", "iterate", "join", "merge", "navigate",
    "order", "partition", "query", "rank", "sample", "traverse",
    "update", "visualize",
)


@dataclass
class GeneratorConfig:
    """Knobs for the synthetic corpus."""

    n_materials: int = 100
    min_items: int = 2              # classification entries per material
    max_items: int = 8
    n_clusters: int = 8             # topical neighborhoods in entry space
    zipf_s: float = 1.3             # popularity skew of ontology entries
    seed: int = 20190520            # IPDPSW 2019 opening day
    collection: str = "synthetic"


def _leaf_keys(ontology: Ontology) -> list[str]:
    return [
        n.key
        for n in ontology.nodes()
        if n.kind in (NodeKind.TOPIC, NodeKind.LEARNING_OUTCOME)
    ]


def generate_specs(
    ontology: Ontology, config: GeneratorConfig
) -> list[tuple[Material, ClassificationSet]]:
    """Deterministic synthetic (material, classification) pairs.

    Entries are drawn per material from a mixture of a global Zipf
    popularity law and the material's cluster-local preference, so both
    the "few hot topics" and "topical neighborhoods" properties of real
    corpora are present.
    """
    rng = np.random.default_rng(config.seed)
    leaves = _leaf_keys(ontology)
    n_leaves = len(leaves)
    if n_leaves == 0:
        raise ValueError("ontology has no leaf entries")

    # Global popularity: Zipf over a random permutation of the leaves.
    ranks = rng.permutation(n_leaves) + 1
    popularity = 1.0 / np.power(ranks.astype(np.float64), config.zipf_s)
    popularity /= popularity.sum()

    # Cluster-local preferences: each cluster concentrates on a random
    # subset of ~5% of entries.
    cluster_masks = []
    width = max(4, n_leaves // 20)
    for _ in range(config.n_clusters):
        chosen = rng.choice(n_leaves, size=width, replace=False)
        mask = np.zeros(n_leaves)
        mask[chosen] = 1.0
        cluster_masks.append(mask)

    out: list[tuple[Material, ClassificationSet]] = []
    levels = list(CourseLevel)
    kinds = (
        MaterialKind.ASSIGNMENT,
        MaterialKind.ASSIGNMENT,
        MaterialKind.ASSIGNMENT,
        MaterialKind.LECTURE_SLIDES,
        MaterialKind.EXAM,
    )
    for i in range(config.n_materials):
        cluster = int(rng.integers(config.n_clusters))
        local = cluster_masks[cluster]
        # 60% local neighborhood, 40% global popularity.
        weights = 0.6 * local / max(local.sum(), 1.0) + 0.4 * popularity
        weights /= weights.sum()
        k = int(rng.integers(config.min_items, config.max_items + 1))
        k = min(k, n_leaves)
        chosen = rng.choice(n_leaves, size=k, replace=False, p=weights)

        adjective = _ADJECTIVES[int(rng.integers(len(_ADJECTIVES)))]
        noun = _NOUNS[int(rng.integers(len(_NOUNS)))]
        verb = _VERBS[int(rng.integers(len(_VERBS)))]
        labels = [ontology.node(leaves[int(c)]).label for c in chosen[:3]]
        material = Material(
            title=f"Synthetic {i:05d}: the {adjective} {noun}",
            description=(
                f"Students {verb} a {adjective} {noun} while practicing "
                + "; ".join(l.lower() for l in labels)
                + "."
            ),
            kind=kinds[int(rng.integers(len(kinds)))],
            course_level=levels[int(rng.integers(len(levels)))],
            collection=config.collection,
            year=2010 + int(rng.integers(10)),
        )
        cs = ClassificationSet()
        for c in chosen:
            cs.add(ontology.name, leaves[int(c)])
        out.append((material, cs))
    return out


def seed_synthetic(
    repo: Repository,
    ontology_name: str = "CS13",
    config: GeneratorConfig | None = None,
) -> list[int]:
    """Generate and insert a synthetic corpus; returns the material ids.

    The ontology must already be loaded in the repository.
    """
    config = config or GeneratorConfig()
    ontology = repo.ontology(ontology_name)
    ids = []
    for material, cs in generate_specs(ontology, config):
        stored = repo.add_material(material, cs)
        assert stored.id is not None
        ids.append(stored.id)
    return ids
