"""ITCS 3145: Parallel and Distributed Computing (UNC Charlotte).

"We have entered all of the learning materials from the class ITCS 3145
... That class is composed of 12 slide decks and 9 assignments.  The
materials of class consist of lecture slides and scaffolded assignments
on parallel algorithms to be implemented on shared memory systems
(pthreads, OpenMP) and distributed memory systems (MPI and
MapReduce-MPI)." (Sections III-B, IV-A.)

Classification constraints reconstructed from Section IV-B:

* PDC12: Programming first, Algorithm second; Architecture and
  Cross-Cutting mostly untouched; no distributed-systems, complexity-
  theory, complex-algorithm, or Tools entries at all (the paper calls the
  missing tools coverage "an omission of the instructor");
* CS13: PD first, then AL, then CN (stencils, numerical integration, and
  Fundamental Parallel Computing under CN::Processing), then SDF (basic
  constructs with a parallel twist and unit-test scaffolding); partial
  OS, PL and AR; zero HCI, SP, IAS, PBD, GV and IS;
* the early numerical-integration assignment checks
  CN::Numerical Analysis::Numerical differentiation and integration,
  the paper's Bloom-level discussion example.
"""

from __future__ import annotations

from repro.core.material import CourseLevel, MaterialKind

from . import keys as K
from .base import Spec, check_unique_titles

COLLECTION = "itcs3145"

ADV = CourseLevel.ADVANCED
SLIDES = MaterialKind.LECTURE_SLIDES

_AUTHOR = ("Erik Saule",)

SPECS: tuple[Spec, ...] = (
    # ------------------------------ 12 slide decks -------------------------
    Spec(
        "Why Parallel Computing?", kind=SLIDES, year=2018, level=ADV,
        authors=_AUTHOR,
        description=(
            "Course opener: the end of Dennard scaling and the power wall, "
            "why every modern machine is parallel, and what running "
            "multiple computations simultaneously changes for programmers."
        ),
        cs13=(K.PD_MULTI_SIM, K.PD_GOALS, K.AR_POWERWALL, K.CN_PROC_PARALLEL),
        pdc12=(K.X_WHYPDC, K.X_HISTORY),
    ),
    Spec(
        "Task Graphs, Work and Span", kind=SLIDES, year=2018, level=ADV,
        authors=_AUTHOR,
        description=(
            "Dependency graphs as the course's central model: work, span, "
            "and asymptotic bounds on parallel time derived from the "
            "structure of the computation DAG."
        ),
        cs13=(K.PD_CPW, K.AL_BIGO, K.AL_RECURRENCES),
        pdc12=(K.A_TASKGRAPHS, K.A_WORKSPAN, K.A_ASYMPTOTIC),
    ),
    Spec(
        "Scheduling and Load Balancing", kind=SLIDES, year=2018, level=ADV,
        authors=_AUTHOR,
        description=(
            "Mapping a task graph onto processors: makespan, greedy list "
            "scheduling and Graham's bound, and static versus dynamic load "
            "balancing."
        ),
        cs13=(K.PD_SCHED, K.PD_LOADBAL, K.AL_GREEDY),
        pdc12=(K.A_MAKESPAN, K.A_LIST_SCHED, K.P_SCHEDMAP, K.P_LOADBAL),
    ),
    Spec(
        "Pthreads I: Threads and Mutual Exclusion", kind=SLIDES, year=2018,
        level=ADV, authors=_AUTHOR,
        description=(
            "Spawning and joining POSIX threads, shared-memory "
            "communication, and protecting shared state with mutexes and "
            "critical sections."
        ),
        cs13=(K.PD_SHMEM, K.PD_ATOMICITY, K.OS_THREADS, K.OS_MUTEX,
              K.PL_THREADS),
        pdc12=(K.P_PTHREADS, K.P_TASKSPAWN, K.P_CRITICAL, K.P_TASKS_THREADS,
               K.P_SHMEM),
    ),
    Spec(
        "Pthreads II: Condition Variables and Producer-Consumer",
        kind=SLIDES, year=2018, level=ADV, authors=_AUTHOR,
        description=(
            "Coordination beyond locks: condition variables, the "
            "producer-consumer pattern, and the data races and deadlocks "
            "that appear when coordination goes wrong."
        ),
        cs13=(K.PD_PRODCON, K.PD_RACES, K.PD_DEADLOCK, K.OS_SYNC,
              K.OS_PRODCON),
        pdc12=(K.P_PRODCON, K.P_RACES, K.P_DEADLOCK),
    ),
    Spec(
        "OpenMP", kind=SLIDES, year=2018, level=ADV, authors=_AUTHOR,
        description=(
            "Directive-based shared-memory programming: parallel regions, "
            "work-sharing loops, reductions, and data-sharing clauses."
        ),
        cs13=(K.PD_LOOPS, K.PD_DATA_DECOMP, K.PL_DATA_PAR),
        pdc12=(K.P_OPENMP, K.P_PARLOOPS, K.P_DATAPAR, K.P_SHMEM),
    ),
    Spec(
        "Speedup, Efficiency and Amdahl's Law", kind=SLIDES, year=2018,
        level=ADV, authors=_AUTHOR,
        description=(
            "Measuring parallel programs: speedup and efficiency curves, "
            "Amdahl's law, and how to benchmark honestly on a shared "
            "machine."
        ),
        cs13=(K.PD_SPEEDUP, K.PD_PERF_MEASURE, K.AL_EMPIRICAL,
              K.CN_PROC_COSTS),
        pdc12=(K.P_SPEEDUP, K.P_AMDAHL, K.A_SPEEDUP),
    ),
    Spec(
        "Parallel Algorithms: Reductions and Prefix Sums", kind=SLIDES,
        year=2018, level=ADV, authors=_AUTHOR,
        description=(
            "The reduction and scan building blocks: tree-shaped "
            "divide-and-conquer formulations and their work/span analysis."
        ),
        cs13=(K.PD_PATTERNS, K.AL_DNC),
        pdc12=(K.A_REDUCTION, K.A_SCAN, K.A_DNC),
    ),
    Spec(
        "Parallel Sorting", kind=SLIDES, year=2018, level=ADV,
        authors=_AUTHOR,
        description=(
            "Merge-based and sample-based parallel sorting algorithms and "
            "the structure of their parallel divide-and-conquer trees."
        ),
        cs13=(K.PD_MATRIX_SORT, K.AL_SORT_NLOGN, K.AL_DNC),
        pdc12=(K.A_SORTING, K.A_DNC),
    ),
    Spec(
        "Distributed Memory and MPI", kind=SLIDES, year=2018, level=ADV,
        authors=_AUTHOR,
        description=(
            "Message passing with MPI: SPMD structure, point-to-point and "
            "collective operations, and the latency/bandwidth model of "
            "communication."
        ),
        cs13=(K.PD_MSG, K.PD_SHARED_DIST),
        pdc12=(K.P_MPI, K.P_DISTMEM, K.P_SPMD, K.A_BCAST, K.A_SCATTERGATHER,
               K.ARCH_LATBW),
    ),
    Spec(
        "Shared Memory Hardware and the Memory Hierarchy", kind=SLIDES,
        year=2018, level=ADV, authors=_AUTHOR,
        description=(
            "What the machine does underneath: multicore chips, caches and "
            "coherence, data locality, and the false-sharing pitfalls that "
            "follow."
        ),
        cs13=(K.PD_CACHES, K.PD_LOCALITY, K.PD_MULTICORE, K.AR_MULTICORE,
              K.AR_MEM_LOCALITY, K.AR_CACHE_ORG),
        pdc12=(K.ARCH_MEMHIER, K.P_LOCALITY, K.P_FALSE_SHARING),
    ),
    Spec(
        "MapReduce with MPI", kind=SLIDES, year=2018, level=ADV,
        authors=_AUTHOR,
        description=(
            "The map-reduce programming model and its expression with the "
            "MapReduce-MPI library for large distributed datasets."
        ),
        cs13=(K.PD_CLOUD_FRAMEWORKS, K.PD_PATTERNS, K.PD_MSG),
        pdc12=(K.P_DISTMEM, K.A_REDUCTION),
    ),
    # ------------------------------ 9 assignments ---------------------------
    Spec(
        "Numerical Integration with the Rectangle Method", year=2018,
        level=ADV, languages=("C",), authors=_AUTHOR,
        description=(
            "Implement a sequential numerical integrator using the "
            "rectangle method from a provided formula — the course "
            "baseline that later assignments parallelize.  Scaffolded "
            "with unit tests."
        ),
        cs13=(K.CN_NUM_INTEGRATION, K.SDF_FUNCS, K.SDF_CTRL,
              K.SDF_UNIT_TESTING),
        pdc12=(K.A_INTEGRATION,),
    ),
    Spec(
        "Parallel Numerical Integration with Pthreads", year=2018,
        level=ADV, languages=("C", "pthreads"), authors=_AUTHOR,
        description=(
            "Parallelize the rectangle-method integrator with threads: "
            "partial sums per thread, a guarded reduction, and a speedup "
            "study against the sequential baseline."
        ),
        cs13=(K.PD_SHMEM, K.PD_ATOMICITY, K.PD_SPEEDUP,
              K.CN_NUM_INTEGRATION),
        pdc12=(K.P_PTHREADS, K.P_TASKSPAWN, K.P_CRITICAL, K.A_INTEGRATION,
               K.A_REDUCTION, K.P_SPEEDUP),
    ),
    Spec(
        "Producer-Consumer Queue with Pthreads", year=2018, level=ADV,
        languages=("C", "pthreads"), authors=_AUTHOR,
        description=(
            "Build a thread-safe bounded queue with condition variables, "
            "demonstrate the data race in the unguarded version, and pass "
            "the provided unit tests under load."
        ),
        cs13=(K.PD_PRODCON, K.PD_RACES, K.OS_SYNC, K.SDF_UNIT_TESTING),
        pdc12=(K.P_PRODCON, K.P_CRITICAL, K.P_RACES, K.P_TASKS_THREADS),
    ),
    Spec(
        "Stencil Heat Propagation with OpenMP", year=2018, level=ADV,
        languages=("C", "OpenMP"), authors=_AUTHOR,
        description=(
            "Iterate a 2D heat stencil with OpenMP parallel loops, "
            "explore schedule clauses, and relate performance to data "
            "locality."
        ),
        cs13=(K.PD_LOOPS, K.PD_DATA_DECOMP, K.PD_LOCALITY, K.CN_NUM_STENCIL),
        pdc12=(K.P_OPENMP, K.P_PARLOOPS, K.A_STENCIL, K.P_DATAPAR,
               K.P_LOCALITY),
    ),
    Spec(
        "Task Graph Scheduling Simulator", year=2018, level=ADV,
        languages=("C++",), authors=_AUTHOR,
        description=(
            "Simulate list scheduling of a task DAG on p processors: "
            "compute makespan, compare against the work/span bounds, and "
            "report greedy-policy quality.  Scaffolded with unit tests."
        ),
        cs13=(K.PD_CPW, K.PD_SCHED, K.AL_GREEDY, K.AL_BIGO,
              K.SDF_UNIT_TESTING),
        pdc12=(K.A_TASKGRAPHS, K.A_WORKSPAN, K.A_MAKESPAN, K.A_LIST_SCHED,
               K.P_SCHEDMAP),
    ),
    Spec(
        "Parallel Merge Sort with OpenMP Tasks", year=2018, level=ADV,
        languages=("C", "OpenMP"), authors=_AUTHOR,
        description=(
            "Recursive merge sort parallelized with OpenMP task spawning: "
            "cutoff tuning, recursion depth versus task overhead, and a "
            "scaling study."
        ),
        cs13=(K.PD_TASK_DECOMP, K.PD_PATTERNS, K.AL_DNC, K.AL_SORT_NLOGN,
              K.SDF_RECURSION),
        pdc12=(K.P_TASKSPAWN, K.P_OPENMP, K.A_DNC, K.A_RECURSION,
               K.A_SORTING),
    ),
    Spec(
        "Vector Statistics with MPI Collectives", year=2018, level=ADV,
        languages=("C", "MPI"), authors=_AUTHOR,
        description=(
            "Scatter a large array across ranks, compute local statistics, "
            "and combine them with gather and reduction collectives.  "
            "Scaffolded with unit tests."
        ),
        cs13=(K.PD_MSG, K.PD_DATA_DECOMP, K.SDF_ARRAYS, K.SDF_UNIT_TESTING),
        pdc12=(K.P_MPI, K.P_SPMD, K.A_SCATTERGATHER, K.A_BCAST,
               K.A_REDUCTION),
    ),
    Spec(
        "Distributed Matrix Multiplication with MPI", year=2018, level=ADV,
        languages=("C", "MPI"), authors=_AUTHOR,
        description=(
            "Multiply block-distributed matrices across ranks: choose a "
            "data distribution, overlap communication where possible, and "
            "analyze communication cost and speedup."
        ),
        cs13=(K.PD_MATRIX_SORT, K.PD_MSG, K.PD_SPEEDUP, K.AL_BIGO,
              K.CN_PROC_DECOMP),
        pdc12=(K.P_MPI, K.P_DATADIST, K.A_MATRIX, K.P_LOADBAL, K.P_SPEEDUP),
    ),
    Spec(
        "MapReduce Word Count with MapReduce-MPI", year=2018, level=ADV,
        languages=("C++", "MPI"), authors=_AUTHOR,
        description=(
            "Count words over a distributed text corpus with the "
            "MapReduce-MPI library, mapping the map/shuffle/reduce phases "
            "onto message-passing primitives."
        ),
        cs13=(K.PD_CLOUD_FRAMEWORKS, K.PD_PATTERNS, K.PD_MSG,
              K.CN_PROC_PARALLEL),
        pdc12=(K.P_DISTMEM, K.P_MPI, K.A_REDUCTION),
    ),
)

check_unique_titles(SPECS)

_slides = [s for s in SPECS if s.kind is SLIDES]
_assignments = [s for s in SPECS if s.kind is not SLIDES]
assert len(_slides) == 12, f"expected 12 slide decks, found {len(_slides)}"
assert len(_assignments) == 9, f"expected 9 assignments, found {len(_assignments)}"
