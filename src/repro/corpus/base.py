"""Shared machinery for corpus definitions.

Each corpus module declares a list of :class:`Spec` records; ``load_into``
turns them into stored, classified materials.  The corpus data itself is
a simulation substitute for the paper's human-curated classification work
(DESIGN.md §2): the assignments are real (titles, venues, years) but the
descriptions and classifications were reconstructed from the paper's
Section IV distributional claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.classification import ClassificationSet
from repro.core.material import CourseLevel, Material, MaterialKind
from repro.core.repository import Repository

#: The paper's reported manual cost: "each item taking between 15-25
#: minutes to input and classify" (Section IV-A).
MANUAL_CLASSIFICATION_MINUTES = (15, 25)


@dataclass(frozen=True)
class Spec:
    """Declarative description of one corpus material."""

    title: str
    description: str
    kind: MaterialKind = MaterialKind.ASSIGNMENT
    year: int | None = None
    level: CourseLevel | None = None
    languages: tuple[str, ...] = ()
    datasets: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()
    authors: tuple[str, ...] = ()
    url: str = ""
    cs13: tuple[str, ...] = ()
    pdc12: tuple[str, ...] = ()

    def classification(self) -> ClassificationSet:
        cs = ClassificationSet()
        for key in self.cs13:
            cs.add("CS13", key)
        for key in self.pdc12:
            cs.add("PDC12", key)
        return cs

    def material(self, collection: str) -> Material:
        return Material(
            title=self.title,
            description=self.description,
            kind=self.kind,
            year=self.year,
            course_level=self.level,
            languages=self.languages,
            datasets=self.datasets,
            tags=self.tags,
            authors=self.authors,
            url=self.url,
            collection=collection,
        )


def load_into(
    repo: Repository, specs: Sequence[Spec], collection: str
) -> list[int]:
    """Insert all specs as classified materials; returns the new ids."""
    ids = []
    for spec in specs:
        stored = repo.add_material(spec.material(collection), spec.classification())
        assert stored.id is not None
        ids.append(stored.id)
    return ids


def check_unique_titles(specs: Iterable[Spec]) -> None:
    seen: set[str] = set()
    for spec in specs:
        if spec.title in seen:
            raise ValueError(f"duplicate corpus title {spec.title!r}")
        seen.add(spec.title)
