"""One-call seeding of a repository with the paper's prototype state.

"The system has been seeded using the Nifty assignments ... We have also
included all 11 Peachy Assignments.  And we have entered all of the
learning materials from the class ITCS 3145." (Section III-B.)
"""

from __future__ import annotations

from repro.core.repository import Repository
from repro.ontologies import load

from . import itcs3145, nifty, peachy
from .base import load_into


def seed_ontologies(repo: Repository) -> None:
    """Load CS13 and PDC12 into the repository."""
    repo.add_ontology(load("CS13"))
    repo.add_ontology(load("PDC12"))


def seed_all(repo: Repository | None = None) -> Repository:
    """Build (or extend) a repository with both ontologies and all three
    corpora; returns it.  Material ids are assigned in corpus order
    (Nifty, then Peachy, then ITCS 3145)."""
    repo = repo if repo is not None else Repository()
    seed_ontologies(repo)
    load_into(repo, nifty.SPECS, nifty.COLLECTION)
    load_into(repo, peachy.SPECS, peachy.COLLECTION)
    load_into(repo, itcs3145.SPECS, itcs3145.COLLECTION)
    return repo


def collection_ids(repo: Repository, collection: str) -> list[int]:
    """Material ids of one collection, in insertion order."""
    rows = repo.db.table("materials").find(collection=collection)
    return sorted(r["id"] for r in rows)
