"""The Nifty Assignments corpus (~65 assignments, 2003–2018).

"The Nifty assignments repository is a set of assignments that have been
collected since 1999 ... usually targeted at early courses (CS0, CS1,
CS2) ... We included all assignments from 2003 to 2018 and we excluded
assignments for which links were broken.  The authors ... entered about
65 Nifty assignments." (Sections II-A, III-B.)

The classifications below are reconstructed (DESIGN.md §2) to satisfy the
paper's reported distribution:

* no PDC12 entries and no CS13 Parallel-and-Distributed entries at all
  ("Clearly Nifty Assignments do not cover any PDC topics", IV-C);
* CS13 area ranking SDF > PL > AL > CN (IV-C);
* Object-Oriented Programming commonly touched (IV-C);
* exactly the six assignments the paper names — Hurricane Tracker,
  2048 in Python, Campus Shuttle, N-body Simulation, Image Editor, Uno —
  carry both "Arrays" and "Conditional and iterative control structures",
  the pair that forms the Figure 3 cluster (IV-D).
"""

from __future__ import annotations

from repro.core.material import CourseLevel, MaterialKind

from . import keys as K
from .base import Spec, check_unique_titles

COLLECTION = "nifty"

CS1 = CourseLevel.CS1
CS2 = CourseLevel.CS2
CS0 = CourseLevel.CS0

#: Titles of the six Figure 3 cluster members (named in Section IV-D).
CLUSTER_TITLES = (
    "Hurricane Tracker",
    "2048 in Python",
    "Campus Shuttle",
    "N-body Simulation",
    "Image Editor",
    "Uno",
)

SPECS: tuple[Spec, ...] = (
    # ----- the six cluster assignments (Arrays + control structures) -----
    Spec(
        "Hurricane Tracker", year=2011, level=CS1, languages=("Java",),
        datasets=("NOAA storm tracks",),
        description=(
            "Read historical hurricane track data from a file into parallel "
            "arrays of latitudes, longitudes and wind speeds, then loop over "
            "the samples to plot the storm path and classify its category "
            "at each step."
        ),
        cs13=(K.SDF_ARRAYS, K.SDF_CTRL, K.SDF_IO, K.CN_DATA_REAL, K.CN_VIZ),
    ),
    Spec(
        "2048 in Python", year=2015, level=CS1, languages=("Python",),
        description=(
            "Implement the sliding-tile game 2048 on a two-dimensional array: "
            "conditionals decide merges, nested loops shift tiles, and "
            "keyboard events drive the turn loop."
        ),
        cs13=(K.SDF_ARRAYS, K.SDF_CTRL, K.SDF_FUNCS, K.PL_GUI_EVENTS),
    ),
    Spec(
        "Campus Shuttle", year=2013, level=CS1, languages=("Java",),
        description=(
            "Simulate a campus shuttle line: arrays of stops and waiting "
            "counts evolve under a time-step loop with conditional boarding "
            "rules, and statistics are written to a report file."
        ),
        cs13=(K.SDF_ARRAYS, K.SDF_CTRL, K.SDF_IO, K.CN_SIM_TOOL),
    ),
    Spec(
        "N-body Simulation", year=2010, level=CS2, languages=("Java",),
        description=(
            "Simulate planetary motion: arrays of positions, velocities and "
            "masses updated each time step from pairwise gravitational "
            "forces, animated as the system evolves."
        ),
        cs13=(K.SDF_ARRAYS, K.SDF_CTRL, K.CN_CONTINUOUS, K.CN_MODELS,
              K.GV_ANIMATION),
    ),
    Spec(
        "Image Editor", year=2008, level=CS1, languages=("Java",),
        description=(
            "Load a photo into a two-dimensional pixel array and implement "
            "grayscale, negative, blur and flip by looping over rows and "
            "columns with per-pixel conditionals."
        ),
        cs13=(K.SDF_ARRAYS, K.SDF_CTRL, K.SDF_FUNCS, K.GV_RASTER, K.GV_MEDIA),
    ),
    Spec(
        "Uno", year=2010, level=CS1, languages=("Java",),
        description=(
            "Build the card game Uno: an array-backed hand of card objects, "
            "conditional legality checks in the play loop, and simple "
            "computer opponents."
        ),
        cs13=(K.SDF_ARRAYS, K.SDF_CTRL, K.PL_OO_CLASSES, K.PL_OO_INTERACT),
    ),
    # ----- games and OOP-heavy assignments ---------------------------------
    Spec(
        "Evil Hangman", year=2011, level=CS2, languages=("Java",),
        description=(
            "A hangman game that cheats: the computer keeps the largest "
            "dictionary word family consistent with the guesses so far, "
            "using maps from letter patterns to word lists."
        ),
        cs13=(K.SDF_STRINGS, K.SDF_CTRL, K.SDF_HASH_TABLES, K.AL_BRUTE,
              K.PL_OO_COLLECTIONS),
    ),
    Spec(
        "Random Writer", year=2003, level=CS2, languages=("C++",),
        description=(
            "Generate text in an author's style with an order-k Markov "
            "model: hash seed strings to their observed successors and walk "
            "the chain with weighted random choices."
        ),
        cs13=(K.SDF_STRINGS, K.SDF_HASH_TABLES, K.CN_RNG, K.AL_PATTERN),
    ),
    Spec(
        "Game of Life", year=2006, level=CS1, languages=("Java",),
        description=(
            "Conway's cellular automaton on a 2D grid of cells: compute the "
            "next generation from neighbor counts and explore gliders and "
            "oscillators."
        ),
        cs13=(K.SDF_ARRAYS, K.CN_CELLULAR, K.CN_MODELS, K.SDF_FUNCS,
              K.SDF_ABSTRACTION),
    ),
    Spec(
        "Boggle", year=2004, level=CS2, languages=("C++",),
        description=(
            "Play Boggle against the computer: recursive backtracking over "
            "the letter grid finds all dictionary words reachable along "
            "adjacent-cell paths."
        ),
        cs13=(K.SDF_STRINGS, K.AL_BACKTRACK, K.SDF_RECURSION, K.PL_OO_CLASSES),
    ),
    Spec(
        "Mastermind", year=2005, level=CS1, languages=("Python",),
        description=(
            "Guess the secret color code: generate random codes, loop over "
            "guesses computing exact and partial matches, and optionally "
            "let the computer solve by exhaustive elimination."
        ),
        cs13=(K.SDF_CTRL, K.SDF_FUNCS, K.CN_RNG, K.AL_BRUTE),
    ),
    Spec(
        "Tetris", year=2009, level=CS2, languages=("Java",),
        description=(
            "A playable Tetris: piece classes share an inheritance "
            "hierarchy, the board is a 2D array, and GUI key events rotate "
            "and drop pieces."
        ),
        cs13=(K.SDF_ARRAYS, K.PL_OO_CLASSES, K.PL_OO_INHERIT,
              K.PL_GUI_EVENTS, K.GV_PRIMITIVES),
    ),
    Spec(
        "Breakout", year=2012, level=CS1, languages=("Java",),
        description=(
            "The classic brick-breaking arcade game: an animation loop "
            "moves the ball, conditionals handle paddle and brick "
            "collisions, and mouse events steer the paddle."
        ),
        cs13=(K.SDF_CTRL, K.PL_GUI_EVENTS, K.PL_OO_CLASSES, K.GV_PRIMITIVES,
              K.GV_ANIMATION),
    ),
    Spec(
        "Darwin", year=2003, level=CS2, languages=("C++",),
        description=(
            "Creatures programmed in a tiny instruction language battle on "
            "a grid; species subclasses override behavior and the simulator "
            "interprets each creature's finite program."
        ),
        cs13=(K.PL_OO_CLASSES, K.PL_OO_POLY, K.PL_OO_INHERIT, K.AL_FSM),
    ),
    Spec(
        "Critters", year=2007, level=CS2, languages=("Java",),
        description=(
            "An ecosystem of animal classes (bears, lions, tigers) that "
            "each override eat/fight/move policies; the provided engine "
            "runs the agent world and scores species."
        ),
        cs13=(K.PL_OO_CLASSES, K.PL_OO_INHERIT, K.PL_OO_POLY, K.CN_AGENTS),
    ),
    Spec(
        "Blackjack", year=2006, level=CS1, languages=("Python",),
        description=(
            "Deal cards from a shuffled deck object and implement the "
            "hit/stand loop with dealer rules; track wins across rounds."
        ),
        cs13=(K.SDF_CTRL, K.CN_RNG, K.PL_OO_CLASSES, K.PL_OO_COLLECTIONS),
    ),
    Spec(
        "Connect Four", year=2011, level=CS2, languages=("Java",),
        description=(
            "Build Connect Four with a minimax computer opponent searching "
            "a few plies ahead over the column-major board array."
        ),
        cs13=(K.SDF_ARRAYS, K.IS_MINIMAX, K.PL_OO_CLASSES),
    ),
    Spec(
        "Ghosts!", year=2010, level=CS2, languages=("Java",),
        description=(
            "Program Pac-Man ghost behaviors: each ghost subclass chooses "
            "moves with a different chase heuristic, including "
            "shortest-path pursuit through the maze."
        ),
        cs13=(K.IS_HEURISTIC, K.AL_SHORTEST, K.PL_OO_POLY, K.PL_OO_INHERIT),
    ),
    Spec(
        "Flappy Bird Clone", year=2015, level=CS0, languages=("JavaScript",),
        description=(
            "Recreate Flappy Bird in the browser: an animation loop scrolls "
            "pipe obstacles, a click handler flaps, and collisions end the "
            "run."
        ),
        cs13=(K.SDF_CTRL, K.PL_GUI_EVENTS, K.GV_ANIMATION, K.PL_OO_CLASSES),
    ),
    Spec(
        "Text Adventure Game", year=2004, level=CS1, languages=("Python",),
        description=(
            "A small interactive fiction engine: room objects linked by "
            "exits, a parser loop over typed commands, and game state as a "
            "finite machine."
        ),
        cs13=(K.PL_OO_CLASSES, K.SDF_STRINGS, K.AL_FSM, K.SDF_IO),
    ),
    # ----- data structures & algorithms ------------------------------------
    Spec(
        "DNA Sequence Alignment", year=2008, level=CS2, languages=("Java",),
        datasets=("GenBank fragments",),
        description=(
            "Align two DNA strings with the Needleman-Wunsch dynamic "
            "program and report the minimal edit script."
        ),
        cs13=(K.AL_DP, K.SDF_STRINGS, K.CN_DATA_REAL, K.PL_OO_CLASSES),
    ),
    Spec(
        "Huffman Coding", year=2005, level=CS2, languages=("C++",),
        description=(
            "Compress files by building the Huffman tree with a greedy "
            "priority-queue merge and recursively emitting prefix codes."
        ),
        cs13=(K.AL_GREEDY, K.AL_BST, K.SDF_STACKS_QUEUES, K.SDF_RECURSION,
              K.PL_OO_CLASSES),
    ),
    Spec(
        "Seam Carving", year=2015, level=CS2, languages=("Java",),
        description=(
            "Content-aware image resizing: dynamic programming finds the "
            "minimum-energy pixel seam, which is removed column by column "
            "from the raster."
        ),
        cs13=(K.AL_DP, K.GV_RASTER, K.GV_MEDIA, K.SDF_ARRAYS),
    ),
    Spec(
        "Sudoku Solver", year=2009, level=CS2, languages=("Python",),
        description=(
            "Solve Sudoku with recursive backtracking over the 9x9 grid, "
            "framed explicitly as a constraint-satisfaction search."
        ),
        cs13=(K.AL_BACKTRACK, K.SDF_RECURSION, K.IS_CSP, K.SDF_ARRAYS),
    ),
    Spec(
        "Maze Solver", year=2006, level=CS2, languages=("Java",),
        description=(
            "Escape ASCII mazes using explicit stack (depth-first) and "
            "queue (breadth-first) searches, comparing the paths each "
            "strategy discovers."
        ),
        cs13=(K.AL_GRAPH_TRAV, K.SDF_STACKS_QUEUES, K.SDF_RECURSION,
              K.PL_OO_CLASSES),
    ),
    Spec(
        "Word Ladder", year=2009, level=CS2, languages=("C++",),
        description=(
            "Connect two words through a chain of one-letter changes: "
            "breadth-first search over the implicit word graph with a "
            "queue of partial ladders."
        ),
        cs13=(K.AL_GRAPH_TRAV, K.AL_GRAPH_REPR, K.SDF_STRINGS,
              K.SDF_STACKS_QUEUES, K.PL_OO_CLASSES),
    ),
    Spec(
        "Six Degrees of Kevin Bacon", year=2012, level=CS2, languages=("Java",),
        datasets=("IMDb actor-film graph",),
        description=(
            "Build the actor collaboration graph from a film dataset and "
            "answer shortest-path queries to Kevin Bacon with BFS."
        ),
        cs13=(K.AL_GRAPH_TRAV, K.AL_SHORTEST, K.AL_GRAPH_REPR, K.CN_DATA_REAL,
              K.DS_GRAPHS),
    ),
    Spec(
        "Anagram Solver", year=2007, level=CS1, languages=("Python",),
        description=(
            "Find all anagrams in a dictionary by mapping each word's "
            "sorted letter signature to its anagram class."
        ),
        cs13=(K.SDF_STRINGS, K.SDF_HASH_TABLES, K.AL_SORT_NLOGN),
    ),
    Spec(
        "Phone Book with Hashing", year=2010, level=CS2, languages=("C",),
        description=(
            "Implement a chained hash table from scratch to store contact "
            "records, and measure how load factor affects lookups."
        ),
        cs13=(K.SDF_HASH_TABLES, K.AL_HASHING, K.SDF_ADT, K.SDF_STRINGS),
    ),
    Spec(
        "Spell Checker", year=2011, level=CS2, languages=("C",),
        description=(
            "A dictionary-backed spell checker: hash the word list, stream "
            "a document, and suggest near-miss corrections by edit "
            "candidates."
        ),
        cs13=(K.SDF_HASH_TABLES, K.AL_HASHING, K.SDF_STRINGS, K.AL_SEARCH),
    ),
    Spec(
        "Autocomplete", year=2016, level=CS2, languages=("Java",),
        datasets=("city and query term weights",),
        description=(
            "Rank completions of a typed prefix: binary search the sorted "
            "term list for the prefix range, then return the heaviest "
            "matches."
        ),
        cs13=(K.AL_SEARCH, K.AL_SORT_NLOGN, K.SDF_STRINGS, K.AL_BST,
              K.PL_OO_CLASSES),
    ),
    Spec(
        "Sorting Detective", year=2004, level=CS2, languages=("Java",),
        description=(
            "Identify mystery sorting implementations from the outside: "
            "time them on crafted inputs and match observed behavior to "
            "quadratic and n-log-n algorithms."
        ),
        cs13=(K.AL_SORT_QUAD, K.AL_SORT_NLOGN, K.AL_EMPIRICAL, K.AL_CASES,
              K.AL_BIGO, K.PL_OO_CLASSES),
    ),
    Spec(
        "Big-O Mystery Functions", year=2013, level=CS2, languages=("Python",),
        description=(
            "Measure opaque library functions over growing inputs, plot "
            "the timings, and argue the asymptotic class of each."
        ),
        cs13=(K.AL_BIGO, K.AL_EMPIRICAL, K.AL_CASES, K.SDF_FUNCS),
    ),
    Spec(
        "Fibonacci and Memoization", year=2005, level=CS1, languages=("Python",),
        description=(
            "From exponential recursive Fibonacci to linear memoized and "
            "iterative versions, with a recurrence-based explanation of "
            "the blowup."
        ),
        cs13=(K.SDF_RECURSION, K.AL_DP, K.AL_RECURRENCES, K.SDF_FUNCS),
    ),
    Spec(
        "Eight Queens", year=2006, level=CS1, languages=("Java",),
        description=(
            "Place eight non-attacking queens by recursive backtracking and "
            "count all solutions of the classic puzzle."
        ),
        cs13=(K.AL_BACKTRACK, K.SDF_RECURSION, K.AL_BRUTE),
    ),
    Spec(
        "Road Trip!", year=2018, level=CS2, languages=("Java",),
        description=(
            "Plan a sightseeing route under a budget: compare a greedy "
            "heuristic with a dynamic program over stop subsets."
        ),
        cs13=(K.AL_DP, K.AL_GREEDY, K.AL_HEURISTICS, K.PL_OO_CLASSES),
    ),
    Spec(
        "TSP Art", year=2015, level=CS2, languages=("Python",),
        description=(
            "Draw continuous-line portraits by solving a traveling-"
            "salesperson tour over stippled image points with greedy and "
            "2-opt heuristics."
        ),
        cs13=(K.AL_HEURISTICS, K.AL_GREEDY, K.GV_PRIMITIVES),
    ),
    Spec(
        "8 Puzzle Solver", year=2014, level=CS2, languages=("Python",),
        description=(
            "Solve the sliding 8-puzzle with breadth-first and A* search, "
            "counting explored states under each heuristic."
        ),
        cs13=(K.IS_UNINFORMED, K.IS_HEURISTIC, K.AL_GRAPH_TRAV,
              K.SDF_STACKS_QUEUES),
    ),
    Spec(
        "Music Playlist Manager", year=2012, level=CS2, languages=("Java",),
        description=(
            "A doubly linked playlist supporting insert, skip, and shuffle "
            "behind a clean abstract-data-type interface."
        ),
        cs13=(K.SDF_LINKED_LISTS, K.SDF_ADT, K.PL_OO_CLASSES,
              K.PL_OO_COLLECTIONS),
    ),
    Spec(
        "Undo/Redo Text Buffer", year=2014, level=CS2, languages=("C++",),
        description=(
            "Implement editor undo/redo with two stacks over a linked "
            "character buffer, packaged as an ADT with invariants."
        ),
        cs13=(K.SDF_STACKS_QUEUES, K.SDF_LINKED_LISTS, K.SDF_ADT,
              K.PL_OO_CLASSES),
    ),
    Spec(
        "Expression Evaluator", year=2008, level=CS2, languages=("Java",),
        description=(
            "Evaluate infix arithmetic with the two-stack shunting "
            "algorithm, tokenizing the input string and honoring "
            "precedence."
        ),
        cs13=(K.SDF_STACKS_QUEUES, K.SDF_EXPR, K.SDF_STRINGS),
    ),
    # ----- simulations, data, and media ---------------------------------------
    Spec(
        "Grocery Store Simulation", year=2009, level=CS2, languages=("Java",),
        description=(
            "Discrete-event simulation of checkout lines: random customer "
            "arrivals queue up, and the run compares single-line and "
            "multi-line service times."
        ),
        cs13=(K.SDF_STACKS_QUEUES, K.CN_DISCRETE_EVENT, K.PL_OO_CLASSES,
              K.CN_RNG),
    ),
    Spec(
        "Elevator Simulator", year=2016, level=CS2, languages=("Java",),
        description=(
            "Simulate an elevator bank driven by a request queue; the "
            "controller is a small state machine whose policy students "
            "tune."
        ),
        cs13=(K.CN_DISCRETE_EVENT, K.PL_OO_CLASSES, K.AL_FSM, K.SDF_CTRL),
    ),
    Spec(
        "Schelling's Segregation Model", year=2014, level=CS1,
        languages=("Python",),
        description=(
            "Agent-based model of neighborhood segregation: unhappy agents "
            "relocate on a grid, and mild preferences produce strong "
            "segregation — a springboard for discussing social impact."
        ),
        cs13=(K.CN_AGENTS, K.CN_MODELS, K.SDF_ARRAYS, K.SP_SOCIAL),
    ),
    Spec(
        "Falling Sand", year=2017, level=CS0, languages=("JavaScript",),
        description=(
            "A particle sandbox where sand, water and walls interact via "
            "local cellular rules painted and stepped on a pixel canvas."
        ),
        cs13=(K.CN_CELLULAR, K.GV_RASTER, K.PL_GUI_EVENTS),
    ),
    Spec(
        "Baby Names", year=2006, level=CS1, languages=("Java",),
        datasets=("US Social Security baby names",),
        description=(
            "Parse a century of baby-name popularity data and graph a "
            "name's rank over time in a simple GUI."
        ),
        cs13=(K.CN_DATA_REAL, K.SDF_IO, K.SDF_STRINGS, K.CN_VIZ),
    ),
    Spec(
        "Earthquake Monitoring", year=2014, level=CS1, languages=("Python",),
        datasets=("USGS live earthquake feed",),
        description=(
            "Fetch the USGS earthquake feed over HTTP, filter events by "
            "magnitude in a loop, and map the strongest quakes."
        ),
        cs13=(K.CN_DATA_REAL, K.SDF_IO, K.NC_HTTP, K.CN_VIZ),
    ),
    Spec(
        "Twitter Sentiment Map", year=2013, level=CS1, languages=("Python",),
        datasets=("geotagged tweet sample",),
        description=(
            "Score tweets with a word-sentiment lexicon and color US "
            "states by average mood, introducing text classification on "
            "real social data."
        ),
        cs13=(K.CN_DATA_REAL, K.SDF_STRINGS, K.SDF_HASH_TABLES, K.IS_NB_KNN),
    ),
    Spec(
        "Movie Recommendations", year=2016, level=CS2, languages=("Python",),
        datasets=("MovieLens ratings",),
        description=(
            "Recommend films by nearest-neighbor similarity over user "
            "rating vectors and evaluate suggestions on held-out likes."
        ),
        cs13=(K.IS_NB_KNN, K.IS_ACCURACY, K.CN_DATA_REAL, K.SDF_HASH_TABLES),
    ),
    Spec(
        "Spam Filter", year=2010, level=CS2, languages=("Python",),
        datasets=("labeled email corpus",),
        description=(
            "Train a naive Bayes spam classifier on labeled email, then "
            "measure accuracy, false positives and false negatives on a "
            "test split."
        ),
        cs13=(K.IS_NB_KNN, K.IS_ACCURACY, K.SDF_STRINGS, K.SDF_HASH_TABLES),
    ),
    Spec(
        "Authorship Detective", year=2017, level=CS1, languages=("Python",),
        datasets=("Federalist Papers",),
        description=(
            "Attribute disputed Federalist Papers by comparing word-"
            "frequency signatures of candidate authors."
        ),
        cs13=(K.SDF_STRINGS, K.SDF_HASH_TABLES, K.IS_NB_KNN, K.CN_DATA_REAL),
    ),
    Spec(
        "Benford's Law", year=2018, level=CS1, languages=("Python",),
        datasets=("county populations and river lengths",),
        description=(
            "Tally leading digits across real datasets and compare the "
            "observed distribution against Benford's logarithmic law."
        ),
        cs13=(K.CN_DATA_REAL, K.DS_PROBABILITY, K.SDF_IO, K.SDF_EXPR),
    ),
    Spec(
        "Monty Hall Simulation", year=2008, level=CS0, languages=("Python",),
        description=(
            "Settle the famous paradox empirically: simulate thousands of "
            "switch/stay games and compare win rates with the analytic "
            "answer."
        ),
        cs13=(K.CN_RNG, K.DS_PROBABILITY, K.SDF_CTRL, K.SDF_FUNCS),
    ),
    Spec(
        "Estimating Pi", year=2011, level=CS1, languages=("Python",),
        description=(
            "Approximate pi two ways: random darts in the unit square and "
            "a midpoint-rule area sum, comparing convergence of the two "
            "estimates."
        ),
        cs13=(K.CN_RNG, K.CN_NUM_INTEGRATION, K.DS_PROBABILITY, K.SDF_CTRL),
    ),
    Spec(
        "Bouncing Balls Physics", year=2009, level=CS1, languages=("Java",),
        description=(
            "Animate elastic balls under gravity: velocity integration per "
            "frame, wall bounces, and object-per-ball design."
        ),
        cs13=(K.GV_ANIMATION, K.CN_CONTINUOUS, K.PL_OO_CLASSES,
              K.GV_PRIMITIVES),
    ),
    # ----- graphics and media ----------------------------------------------------
    Spec(
        "Recursive Graphics", year=2008, level=CS1, languages=("Java",),
        description=(
            "Draw Sierpinski triangles and recursive trees, connecting the "
            "drawing depth to the recurrence behind the picture."
        ),
        cs13=(K.SDF_RECURSION, K.GV_PRIMITIVES, K.SDF_FUNCS,
              K.AL_RECURRENCES),
    ),
    Spec(
        "Photo Mosaic", year=2014, level=CS2, languages=("Java",),
        description=(
            "Rebuild a target photo from a library of thumbnails by "
            "matching average tile color with a nearest-color search."
        ),
        cs13=(K.GV_RASTER, K.GV_COLOR, K.GV_MEDIA, K.AL_SEARCH),
    ),
    Spec(
        "Steganography", year=2018, level=CS2, languages=("Python",),
        description=(
            "Hide a message in an image's low-order bits and recover it, "
            "practicing bitwise expressions over pixel rasters."
        ),
        cs13=(K.GV_RASTER, K.GV_MEDIA, K.SDF_EXPR, K.SDF_FUNCS),
    ),
    Spec(
        "Picobot", year=2012, level=CS0, languages=("Picobot",),
        description=(
            "Program a wall-following robot with pure state-and-rule "
            "tables, meeting abstraction and finite-state thinking before "
            "any syntax."
        ),
        cs13=(K.AL_FSM, K.SDF_ABSTRACTION, K.SDF_CTRL),
    ),
    # ----- web / networking / information ----------------------------------------
    Spec(
        "Simple Web Server", year=2015, level=CS2, languages=("Python",),
        description=(
            "Serve static pages over a socket: parse GET requests, map "
            "paths to files, and speak just enough HTTP for a browser."
        ),
        cs13=(K.NC_SOCKETS, K.NC_HTTP, K.NC_CLIENTSERVER, K.SDF_STRINGS),
    ),
    Spec(
        "Personal Library Database", year=2011, level=CS2,
        languages=("Java",),
        description=(
            "Design relational tables for books, members and loans, and "
            "implement the checkout workflows against them."
        ),
        cs13=(K.IM_RELATIONAL, K.IM_CAPTURE, K.PL_OO_CLASSES, K.SDF_IO),
    ),
    # ----- GUI / HCI / SE flavored --------------------------------------------------
    Spec(
        "GUI Calculator", year=2010, level=CS1, languages=("Java",),
        description=(
            "A desktop calculator with button events and expression state, "
            "reviewed against basic usability heuristics."
        ),
        cs13=(K.PL_GUI_EVENTS, K.HCI_USABILITY, K.HCI_CONTEXTS, K.SDF_EXPR),
    ),
    Spec(
        "Unit-Test Kata: Bank Account", year=2018, level=CS1,
        languages=("Java",),
        description=(
            "Grow a bank-account class strictly test-first, practicing "
            "unit-test design, specifications and red-green refactoring."
        ),
        cs13=(K.SDF_UNIT_TESTING, K.SDF_CORRECTNESS, K.SE_TDD,
              K.SE_TEST_LEVELS, K.PL_OO_CLASSES),
    ),
    Spec(
        "Refactoring Gilded Rose", year=2017, level=CS2, languages=("Java",),
        description=(
            "Untangle a legacy pricing routine: add characterization unit "
            "tests, then refactor toward polymorphic item classes guided "
            "by design principles."
        ),
        cs13=(K.SDF_UNIT_TESTING, K.SE_DESIGN_PRINCIPLES, K.SE_PATTERNS,
              K.PL_OO_POLY, K.SDF_DEBUGGING),
    ),
    Spec(
        "Election Analysis", year=2016, level=CS1, languages=("Python",),
        datasets=("county-level election returns",),
        description=(
            "Aggregate county election returns, compute turnout summaries, "
            "and discuss how data presentation shapes civic conclusions."
        ),
        cs13=(K.CN_DATA_REAL, K.SP_SOCIAL, K.SDF_IO, K.SDF_CTRL),
    ),
)

# DS-area keys used above are defined late in keys.py; import-time check
# that the corpus is internally consistent.
check_unique_titles(SPECS)

assert len(SPECS) == 65, f"expected 65 Nifty specs, found {len(SPECS)}"
