"""repro — reproduction of "Classifying Pedagogical Material to Improve
Adoption of Parallel and Distributed Computing Topics" (IPDPSW 2019).

The public API re-exports the CAR-CS core; substrates live in the
subpackages :mod:`repro.db`, :mod:`repro.ontologies`, :mod:`repro.corpus`,
:mod:`repro.text`, :mod:`repro.web`, :mod:`repro.viz`, and
:mod:`repro.analysis`.

Quickstart::

    from repro import seeded_repository, compute_coverage

    repo = seeded_repository()
    cov = compute_coverage(repo, "PDC12", collection="itcs3145")
    for area, n in cov.area_ranking(repo.ontology("PDC12")):
        print(area.label, n)
"""

from .core import (  # noqa: F401
    BloomLevel,
    ClassificationItem,
    ClassificationSet,
    CourseLevel,
    CoverageReport,
    Material,
    MaterialKind,
    NodeKind,
    Ontology,
    Repository,
    Role,
    SearchEngine,
    SearchFilters,
    Tier,
    class_report,
    clusters,
    compute_coverage,
    find_gaps,
    isolated_materials,
    similarity_graph,
)

__version__ = "1.0.0"


def seeded_repository():
    """A repository loaded with both ontologies and all three corpora
    (Nifty, Peachy, ITCS 3145) — the paper's seeded prototype state."""
    from .corpus.seed import seed_all

    return seed_all()


__all__ = [
    "BloomLevel",
    "ClassificationItem",
    "ClassificationSet",
    "CourseLevel",
    "CoverageReport",
    "Material",
    "MaterialKind",
    "NodeKind",
    "Ontology",
    "Repository",
    "Role",
    "SearchEngine",
    "SearchFilters",
    "Tier",
    "class_report",
    "clusters",
    "compute_coverage",
    "find_gaps",
    "isolated_materials",
    "seeded_repository",
    "similarity_graph",
    "__version__",
]
