"""Workers: threads that lease, execute and finish queued jobs.

A :class:`Worker` loops ``lease -> handler -> complete/fail``; a
:class:`WorkerPool` runs N of them over one shared handler registry.
Handlers are plain callables ``(JobContext) -> result``; the context
carries the decoded payload and a :meth:`JobContext.heartbeat` hook
long-running handlers call between batches so their lease outlives the
visibility timeout.

Failure taxonomy:

* an ordinary exception fails the attempt *retryably* — the job goes
  back to the queue with exponential backoff until ``max_attempts``;
* :class:`FatalJobError` (or an unknown job kind) dead-letters
  immediately — retrying cannot help;
* :class:`~repro.jobs.queue.StaleLease` means another worker owns the
  job now (this worker stalled past its visibility timeout) — the
  result is dropped on the floor, which is safe because handlers are
  required to be idempotent per job.

Every run is wrapped in a ``job.run`` trace span and lands in the
``carcs_job_seconds`` histogram / ``carcs_jobs_total`` counters when a
metrics registry is attached.  With a :class:`~repro.obs.Tracer`
attached, ``job.run`` opens as the *root of its own trace segment*
using the trace context the enqueuing request persisted in the job row
— so the asynchronous leg of a classify request carries the request's
trace id and stitches under its enqueue span in the fleet-wide view.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable, Mapping

from repro.obs import MetricsRegistry, Tracer
from repro.obs import trace as _trace

from .queue import JobQueue, StaleLease


class FatalJobError(RuntimeError):
    """Raise from a handler to dead-letter the job without retries."""


class JobContext:
    """What a handler sees: the job row, its payload, and a heartbeat."""

    def __init__(self, queue: JobQueue, job: dict[str, Any],
                 worker_id: str) -> None:
        self.queue = queue
        self.job = job
        self.worker_id = worker_id

    @property
    def payload(self) -> dict[str, Any]:
        return self.job["payload"]

    def heartbeat(self) -> None:
        """Extend the lease; call between batches of a long job.
        Raises :class:`StaleLease` when the lease was lost — the
        handler should abort, another worker owns the job now."""
        self.queue.heartbeat(self.job["id"], self.worker_id)


Handler = Callable[[JobContext], Any]


class Worker(threading.Thread):
    """One lease-execute-finish loop on its own thread."""

    def __init__(
        self,
        queue: JobQueue,
        handlers: Mapping[str, Handler],
        *,
        worker_id: str,
        poll_interval: float = 0.05,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(name=f"carcs-worker-{worker_id}", daemon=True)
        self.queue = queue
        self.handlers = handlers
        self.worker_id = worker_id
        self.poll_interval = poll_interval
        self.metrics = metrics
        self.tracer = tracer
        self.jobs_run = 0
        self._stop_event = threading.Event()

    def _job_span(self, job: dict[str, Any]):
        """The ``job.run`` span: a root in the enqueuing request's trace
        when a tracer is attached (worker threads have no ambient trace
        to hang a child under), else a plain child span."""
        attrs = dict(
            kind=job["kind"], job=job["id"], attempt=job["attempts"],
            worker=self.worker_id,
        )
        if self.tracer is None:
            return _trace.span("job.run", **attrs)
        context = _trace.parse_traceparent(job.get("trace_context"))
        if context is not None:
            trace_id, parent_span_id = context
            attrs[_trace.REMOTE_PARENT_ATTR] = parent_span_id
        else:
            trace_id = None
        return self.tracer.trace("job.run", trace_id=trace_id, fresh=True,
                                 **attrs)

    def stop(self) -> None:
        self._stop_event.set()

    def run(self) -> None:
        while not self._stop_event.is_set():
            job = self.queue.lease(self.worker_id)
            if job is None:
                self._stop_event.wait(self.poll_interval)
                continue
            self.run_job(job)

    def run_job(self, job: dict[str, Any]) -> str:
        """Execute one leased job; returns the outcome label."""
        start = time.perf_counter()
        outcome = "done"
        with self._job_span(job) as span_:
            try:
                handler = self.handlers.get(job["kind"])
                if handler is None:
                    raise FatalJobError(f"no handler for kind {job['kind']!r}")
                result = handler(JobContext(self.queue, job, self.worker_id))
                self.queue.complete(job["id"], self.worker_id, result)
            except StaleLease:
                # Another worker owns the job now; idempotent handlers
                # make dropping this attempt safe.
                outcome = "stale"
            except FatalJobError as exc:
                outcome = "dead"
                span_.mark_error(f"FatalJobError: {exc}")
                self._fail(job, str(exc), retryable=False)
            except Exception as exc:  # noqa: BLE001 — the retry boundary
                outcome = "retry"
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                span_.mark_error(detail)
                self._fail(job, detail, retryable=True)
            span_.set(outcome=outcome)
        self.jobs_run += 1
        if self.metrics is not None:
            self.metrics.histogram(
                "carcs_job_seconds", kind=job["kind"],
            ).observe(time.perf_counter() - start)
            self.metrics.counter(
                "carcs_jobs_total", kind=job["kind"], outcome=outcome,
            ).inc()
        return outcome

    def _fail(self, job: dict[str, Any], error: str,
              *, retryable: bool) -> None:
        try:
            self.queue.fail(
                job["id"], self.worker_id, error, retryable=retryable
            )
        except StaleLease:
            pass


class WorkerPool:
    """N workers over one queue and handler registry."""

    def __init__(
        self,
        queue: JobQueue,
        handlers: Mapping[str, Handler],
        *,
        size: int = 2,
        poll_interval: float = 0.05,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        name: str = "pool",
    ) -> None:
        self.queue = queue
        self.workers = [
            Worker(
                queue, handlers,
                worker_id=f"{name}-{i}",
                poll_interval=poll_interval,
                metrics=metrics,
                tracer=tracer,
            )
            for i in range(size)
        ]

    def start(self) -> "WorkerPool":
        for worker in self.workers:
            worker.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        for worker in self.workers:
            worker.stop()
        for worker in self.workers:
            worker.join(timeout)

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until no job is queued or leased (or ``timeout``)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.queue.pending() == 0:
                return True
            time.sleep(0.01)
        return self.queue.pending() == 0


def run_pending(
    queue: JobQueue,
    handlers: Mapping[str, Handler],
    *,
    worker_id: str = "inline",
    max_jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> int:
    """Synchronously drain runnable jobs in the calling thread.

    The deterministic single-threaded form of a worker loop — tests,
    the CLI's ``carcs jobs --drain``, and benchmarks use it when thread
    scheduling would only add noise.  Returns the number of jobs run.
    """
    worker = Worker(queue, handlers, worker_id=worker_id, metrics=metrics,
                    tracer=tracer)
    run = 0
    while max_jobs is None or run < max_jobs:
        job = queue.lease(worker_id)
        if job is None:
            break
        worker.run_job(job)
        run += 1
    return run
