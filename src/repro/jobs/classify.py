"""The automatic classification service: the ``classify`` job handler.

The paper's central cost is human classification time (15-25 minutes
per material).  Following the machine-assist pipeline of the follow-up
work ("Automatic Classification of Pedagogical Materials against CS
Curriculum Guidelines"), this service trains the in-repo classifiers
(:mod:`repro.text.naive_bayes`, :mod:`repro.text.knn`) on the already-
classified corpus and writes **confidence-ranked pending suggestions**
for unclassified materials — never direct classifications.  A human
editor closes the loop through the review endpoints
(``/api/v2/suggestions/<id>/accept|reject``), exactly the editor-pool
model :mod:`repro.analysis.crowdsim` simulates.

Suggestion writes are idempotent per ``(material, ontology key)``
(:meth:`repro.core.repository.Repository.machine_suggest`), which is
what makes job retries and lease re-issues safe: a job that ran
halfway before its worker died re-runs from the top and only fills in
the missing rows.

The fitted model is memoized in the repository's analytics cache,
keyed on the classification-table versions — one training pass serves
every job until an accept/reject (or any classification edit)
invalidates it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.material import Material
from repro.core.repository import Repository
from repro.obs import trace as _trace
from repro.text.knn import KnnClassifier
from repro.text.naive_bayes import NaiveBayesClassifier
from repro.text.vectorize import TfidfVectorizer, count_matrix

from .worker import JobContext

#: Ontologies suggested against by default — the two the paper curates.
DEFAULT_ONTOLOGIES = ("CS13", "PDC12")

#: Tables whose mutation invalidates the fitted model.
_MODEL_TABLES = (
    "material_classifications", "ontology_entries", "materials",
    "material_tags",
)


@dataclass(frozen=True)
class Suggestion:
    """One confidence-ranked suggestion for a material."""

    key: str
    ontology: str
    confidence: float
    source: str  # "nb", "knn" or "nb+knn"


def material_text(material: Material) -> str:
    """The text the classifiers see — mirrors what a human reviewer
    reads first: title, description, tags and languages."""
    return " ".join((
        material.title,
        material.description,
        " ".join(material.tags),
        " ".join(material.languages),
    ))


def unclassified_material_ids(
    repo: Repository, *, collection: str | None = None
) -> list[int]:
    """Materials with no classification at all — the service's inbox."""
    keys = repo.classification_keys()
    ids = [mid for mid, ks in keys.items() if not ks]
    if collection is not None:
        wanted = {
            r["id"]
            for r in repo.db.table("materials").find(collection=collection)
        }
        ids = [mid for mid in ids if mid in wanted]
    return sorted(ids)


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


class _Model:
    """One fitted (vectorizer, NB, kNN) bundle over the classified corpus."""

    def __init__(self, repo: Repository, *, nb_alpha: float,
                 min_label_count: int, knn_k: int,
                 knn_threshold: float) -> None:
        keys = repo.classification_keys()
        self.key_ontology = {
            row["key"]: row["ontology"]
            for row in repo.db.table("ontology_entries")
        }
        self.train_ids = [mid for mid in sorted(keys) if keys[mid]]
        texts = [
            material_text(repo.get_material(mid)) for mid in self.train_ids
        ]
        labels = [sorted(keys[mid]) for mid in self.train_ids]
        self.vectorizer: TfidfVectorizer | None = None
        self.nb: NaiveBayesClassifier | None = None
        self.knn: KnnClassifier | None = None
        if not self.train_ids:
            return
        self.vectorizer = TfidfVectorizer(min_df=1)
        X = self.vectorizer.fit_transform(texts)
        try:
            counts = self._counts(texts)
            self.nb = NaiveBayesClassifier(
                alpha=nb_alpha, min_label_count=min_label_count,
            ).fit(counts, labels)
        except ValueError:
            # Too little evidence for any label — kNN alone still works.
            self.nb = None
        self.knn = KnnClassifier(k=knn_k, threshold=knn_threshold).fit(
            X, labels
        )

    def _counts(self, texts: Sequence[str]):
        assert self.vectorizer is not None
        assert self.vectorizer.vocabulary is not None
        docs = self.vectorizer._tokenize_all(texts)
        return count_matrix(docs, self.vectorizer.vocabulary)

    def suggest(
        self, texts: Sequence[str], *, ontologies: Iterable[str], top: int
    ) -> list[list[Suggestion]]:
        """Per text: merged NB + kNN suggestions, best first."""
        if self.vectorizer is None or not texts:
            return [[] for _ in texts]
        wanted = set(ontologies)
        merged: list[dict[str, Suggestion]] = [dict() for _ in texts]
        if self.nb is not None:
            counts = self._counts(texts)
            for i, row in enumerate(self.nb.suggest(counts, top=top * 3)):
                for s in row:
                    merged[i][s.label] = Suggestion(
                        key=s.label,
                        ontology=self.key_ontology.get(s.label, ""),
                        confidence=_sigmoid(s.log_odds),
                        source="nb",
                    )
        if self.knn is not None:
            X = self.vectorizer.transform(texts)
            for i, row in enumerate(self.knn.suggest(X)):
                for s in row:
                    prior = merged[i].get(s.label)
                    if prior is None:
                        merged[i][s.label] = Suggestion(
                            key=s.label,
                            ontology=self.key_ontology.get(s.label, ""),
                            confidence=s.score,
                            source="knn",
                        )
                    else:
                        merged[i][s.label] = Suggestion(
                            key=s.label,
                            ontology=prior.ontology,
                            confidence=max(prior.confidence, s.score),
                            source="nb+knn",
                        )
        out: list[list[Suggestion]] = []
        for bucket in merged:
            ranked = sorted(
                (
                    s for s in bucket.values()
                    if s.ontology in wanted
                ),
                key=lambda s: (-s.confidence, s.key),
            )
            out.append(ranked[:top])
        return out


class ClassificationService:
    """Train-once, suggest-many facade the ``classify`` handler uses."""

    def __init__(
        self,
        repo: Repository,
        *,
        top: int = 5,
        min_confidence: float = 0.1,
        nb_alpha: float = 1.0,
        min_label_count: int = 2,
        knn_k: int = 5,
        knn_threshold: float = 0.2,
        batch_size: int = 25,
    ) -> None:
        self.repo = repo
        self.top = top
        self.min_confidence = min_confidence
        self.nb_alpha = nb_alpha
        self.min_label_count = min_label_count
        self.knn_k = knn_k
        self.knn_threshold = knn_threshold
        self.batch_size = batch_size

    def model(self) -> _Model:
        """The fitted model, memoized until a classification changes."""
        return self.repo.cache.get_or_compute(
            "jobs.classify_model", (
                self.nb_alpha, self.min_label_count,
                self.knn_k, self.knn_threshold,
            ),
            _MODEL_TABLES,
            lambda: _Model(
                self.repo,
                nb_alpha=self.nb_alpha,
                min_label_count=self.min_label_count,
                knn_k=self.knn_k,
                knn_threshold=self.knn_threshold,
            ),
        )

    def suggest_for(
        self,
        material_ids: Sequence[int],
        *,
        ontologies: Iterable[str] = DEFAULT_ONTOLOGIES,
        top: int | None = None,
    ) -> dict[int, list[Suggestion]]:
        """Suggestions per material (no writes)."""
        top = self.top if top is None else top
        model = self.model()
        texts = [
            material_text(self.repo.get_material(mid))
            for mid in material_ids
        ]
        per_doc = model.suggest(texts, ontologies=ontologies, top=top)
        return {
            mid: [
                s for s in suggestions if s.confidence >= self.min_confidence
            ]
            for mid, suggestions in zip(material_ids, per_doc)
        }

    def classify_materials(
        self,
        material_ids: Sequence[int],
        *,
        ontologies: Iterable[str] = DEFAULT_ONTOLOGIES,
        top: int | None = None,
        heartbeat: Callable[[], None] | None = None,
    ) -> dict[str, Any]:
        """Write pending machine suggestions for ``material_ids``.

        Processes in batches, calling ``heartbeat`` between them so a
        worker's lease outlives a long run.  Idempotent: materials that
        already carry an equivalent suggestion (or classification) are
        skipped, so re-running after a crash only fills in the gaps.
        """
        ontologies = tuple(ontologies)
        written = skipped = 0
        with _trace.span(
            "job.classify", materials=len(material_ids),
        ) as span_:
            for start in range(0, len(material_ids), self.batch_size):
                batch = list(material_ids[start:start + self.batch_size])
                if heartbeat is not None and start > 0:
                    heartbeat()
                suggestions = self.suggest_for(
                    batch, ontologies=ontologies, top=top
                )
                for mid in batch:
                    for s in suggestions.get(mid, ()):
                        sid = self.repo.machine_suggest(
                            mid, s.key,
                            confidence=s.confidence, source=s.source,
                        )
                        if sid is None:
                            skipped += 1
                        else:
                            written += 1
            span_.set(written=written, skipped=skipped)
        return {
            "materials": len(material_ids),
            "ontologies": list(ontologies),
            "suggested": written,
            "skipped": skipped,
        }


def make_classify_handler(repo: Repository,
                          service: ClassificationService | None = None):
    """The ``classify`` job handler.

    Payload fields (all optional): ``material_ids`` (explicit targets),
    ``collection`` (limit the unclassified sweep), ``ontologies``,
    ``top``.  With no targets given, every unclassified material is
    swept.
    """
    svc = service if service is not None else ClassificationService(repo)

    def handler(ctx: JobContext) -> dict[str, Any]:
        payload = ctx.payload
        ids = payload.get("material_ids")
        if ids is None:
            ids = unclassified_material_ids(
                repo, collection=payload.get("collection")
            )
        ontologies = tuple(payload.get("ontologies") or DEFAULT_ONTOLOGIES)
        return svc.classify_materials(
            [int(i) for i in ids],
            ontologies=ontologies,
            top=payload.get("top"),
            heartbeat=ctx.heartbeat,
        )

    return handler


def default_handlers(repo: Repository) -> dict[str, Any]:
    """The standard handler registry a CAR-CS worker runs."""
    return {"classify": make_classify_handler(repo)}
