"""A durable job queue persisted through the relational engine.

Job state lives in a ``_jobs`` system table written via the normal
commit path, so it inherits every durability property the engine
already guarantees: each state transition is one WAL record, jobs
survive crashes and replay on :meth:`repro.db.Database.open`, and they
replicate to read replicas through the same frame stream as any other
table — no second persistence mechanism to keep honest.

Semantics follow the classic lease model:

* :meth:`JobQueue.enqueue` files a job (``queued``), optionally
  deduplicated by an idempotency key and bounded by ``max_queued``
  (the web layer turns :class:`QueueFull` into a 429).
* :meth:`JobQueue.lease` hands the oldest runnable job to a worker and
  starts its *visibility timeout*: a worker that dies silently simply
  stops heartbeating, and once the deadline passes the job is leased
  out again.  Each lease counts one attempt.
* :meth:`JobQueue.heartbeat` extends the deadline of a long-running
  job; :meth:`JobQueue.complete` / :meth:`JobQueue.fail` finish the
  attempt.  Retryable failures go back to ``queued`` with exponential
  backoff until ``max_attempts``; then the job parks in the ``dead``
  state for inspection.
* Every owner-asserting call fences on ``(job id, worker id)``: a
  zombie worker whose lease expired and was re-issued gets
  :class:`StaleLease` instead of clobbering the new owner's run.

The clock is injectable so tests drive visibility timeouts and backoff
deterministically.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

from repro.db import Column, Database, TableSchema
from repro.db import query as db_query
from repro.obs import trace as _trace

#: Name of the system table.  The leading underscore keeps it visually
#: apart from the CAR-CS data model; the search index ignores it (see
#: ``repro.core.search._IRRELEVANT_TABLES``).
JOBS_TABLE = "_jobs"

QUEUED = "queued"
LEASED = "leased"
DONE = "done"
DEAD = "dead"

STATES = (QUEUED, LEASED, DONE, DEAD)


class QueueFull(RuntimeError):
    """``enqueue`` refused: the backlog is at ``max_queued``."""


class StaleLease(RuntimeError):
    """The caller no longer owns the job (lease expired and was
    re-issued, or the job already finished)."""


def _jobs_schema() -> TableSchema:
    return TableSchema(
        JOBS_TABLE,
        columns=(
            Column("id", int),
            Column("kind", str),
            Column("payload", str, default="{}"),
            Column("status", str, default=QUEUED),
            Column("attempts", int, default=0),
            Column("max_attempts", int, default=3),
            Column("not_before", float, default=0.0),
            Column("lease_owner", str, nullable=True, default=None),
            Column("lease_deadline", float, nullable=True, default=None),
            Column("idempotency_key", str, nullable=True, default=None),
            # traceparent of the enqueuing request: the worker opens its
            # job.run root from it, so the async leg of a request shares
            # the request's trace id (see repro.obs.trace).
            Column("trace_context", str, nullable=True, default=None),
            Column("result", str, nullable=True, default=None),
            Column("error", str, default=""),
            Column("enqueued_at", float, default=0.0),
            Column("updated_at", float, default=0.0),
        ),
    )


class JobQueue:
    """Durable lease-based job queue over the ``_jobs`` system table.

    Parameters
    ----------
    db:
        The database the jobs live in (usually ``repo.db``).
    clock:
        Source of "now" (seconds).  Injectable for deterministic
        visibility-timeout and backoff tests.
    visibility_timeout:
        Seconds a leased job stays invisible before it is considered
        abandoned and re-queued (or dead-lettered past ``max_attempts``).
    base_backoff / backoff_factor / max_backoff:
        Exponential retry delay: ``min(max_backoff, base_backoff *
        backoff_factor ** (attempt - 1))``.
    max_queued:
        Backlog bound (queued + leased).  ``enqueue`` past it raises
        :class:`QueueFull`.
    create:
        Create the ``_jobs`` table if missing.  Pass ``False`` on read
        replicas: their state must come exclusively from the primary's
        frame stream, and the table appears once the primary ships it.
    """

    def __init__(
        self,
        db: Database,
        *,
        clock: Callable[[], float] = time.time,
        visibility_timeout: float = 30.0,
        base_backoff: float = 0.5,
        backoff_factor: float = 2.0,
        max_backoff: float = 60.0,
        max_queued: int = 10_000,
        create: bool = True,
    ) -> None:
        self.db = db
        self.clock = clock
        self.visibility_timeout = float(visibility_timeout)
        self.base_backoff = float(base_backoff)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff = float(max_backoff)
        self.max_queued = int(max_queued)
        if create and JOBS_TABLE not in db:
            db.create_table(_jobs_schema())
            db.table(JOBS_TABLE).create_index("status")
            db.table(JOBS_TABLE).create_index("idempotency_key")
            # Sorted: the lease scan is a range predicate
            # (``not_before <= now``) the planner turns into a bisect.
            db.table(JOBS_TABLE).create_sorted_index("not_before")

    # ------------------------------------------------------------- helpers

    @property
    def available(self) -> bool:
        """Whether the ``_jobs`` table exists (it may not yet on a
        replica that has not received the primary's DDL frame)."""
        return JOBS_TABLE in self.db

    def backoff(self, attempt: int) -> float:
        """Retry delay after the ``attempt``-th failed attempt."""
        return min(
            self.max_backoff,
            self.base_backoff * self.backoff_factor ** max(attempt - 1, 0),
        )

    @staticmethod
    def _decode(row: dict[str, Any]) -> dict[str, Any]:
        job = dict(row)
        job["payload"] = json.loads(row["payload"] or "{}")
        job["result"] = (
            json.loads(row["result"]) if row["result"] is not None else None
        )
        return job

    def _checked(self, job_id: int, worker_id: str) -> dict[str, Any]:
        row = self.db.table(JOBS_TABLE).get_or_none(job_id)
        if row is None:
            raise StaleLease(f"job {job_id} does not exist")
        if row["status"] != LEASED or row["lease_owner"] != worker_id:
            raise StaleLease(
                f"job {job_id} is {row['status']!r} owned by "
                f"{row['lease_owner']!r}, not leased to {worker_id!r}"
            )
        return row

    # ------------------------------------------------------------- enqueue

    def enqueue(
        self,
        kind: str,
        payload: dict[str, Any] | None = None,
        *,
        max_attempts: int = 3,
        idempotency_key: str | None = None,
        delay: float = 0.0,
    ) -> dict[str, Any]:
        """File a job; returns the (decoded) job row.

        With an ``idempotency_key``, re-enqueueing returns the existing
        job instead of filing a duplicate — callers may retry the call
        blindly after a timeout.

        The ambient trace context (if the caller runs inside a traced
        request) is persisted with the row, so the worker that later
        runs the job can open its ``job.run`` span in the *same* trace.
        """
        now = float(self.clock())
        table = self.db.table(JOBS_TABLE)
        extra: dict[str, Any] = {}
        if "trace_context" in table.schema.column_names():
            # Storage directories written before the column existed
            # replay their old schema on open; jobs there simply stay
            # unlinked instead of failing the insert.
            extra["trace_context"] = _trace.current_traceparent()
        with self.db.transaction():
            if idempotency_key is not None:
                existing = table.find_one(idempotency_key=idempotency_key)
                if existing is not None:
                    return self._decode(existing)
            backlog = table.count(status=QUEUED) + table.count(status=LEASED)
            if backlog >= self.max_queued:
                raise QueueFull(
                    f"job backlog at {backlog} >= max_queued="
                    f"{self.max_queued}"
                )
            row = self.db.insert(
                JOBS_TABLE,
                kind=kind,
                payload=json.dumps(payload or {}),
                max_attempts=int(max_attempts),
                not_before=now + float(delay),
                idempotency_key=idempotency_key,
                enqueued_at=now,
                updated_at=now,
                **extra,
            )
        return self._decode(row)

    # ------------------------------------------------------------ leasing

    def requeue_expired(self, now: float | None = None) -> int:
        """Return abandoned jobs (lease deadline passed) to the queue —
        or dead-letter them once out of attempts.  Returns how many
        jobs changed state."""
        now = float(self.clock()) if now is None else now
        moved = 0
        with self.db.transaction():
            # Planner-backed: the status equality probes the hash index;
            # the deadline check stays a residual predicate because an
            # expired lease may also have a NULL deadline.
            expired = db_query(self.db, JOBS_TABLE).filter(
                status=LEASED
            ).where(
                lambda r: r["lease_deadline"] is None
                or r["lease_deadline"] <= now
            )
            for row in expired:
                if row["attempts"] >= row["max_attempts"]:
                    self.db.update(
                        JOBS_TABLE, row["id"],
                        status=DEAD, lease_owner=None, lease_deadline=None,
                        error=(
                            f"lease expired after {row['attempts']} "
                            f"attempt(s)"
                        ),
                        updated_at=now,
                    )
                else:
                    self.db.update(
                        JOBS_TABLE, row["id"],
                        status=QUEUED, lease_owner=None, lease_deadline=None,
                        not_before=now + self.backoff(row["attempts"]),
                        updated_at=now,
                    )
                moved += 1
        return moved

    def lease(
        self, worker_id: str, *, visibility_timeout: float | None = None
    ) -> dict[str, Any] | None:
        """Lease the oldest runnable job to ``worker_id``; ``None`` when
        nothing is runnable.  The lease counts one attempt."""
        if not self.available:
            return None
        timeout = (
            self.visibility_timeout if visibility_timeout is None
            else float(visibility_timeout)
        )
        now = float(self.clock())
        with self.db.transaction():
            self.requeue_expired(now)
            # Planner-backed runnable scan: status probes the hash
            # index, ``not_before <= now`` is a sorted-index range, and
            # the oldest-job pick is an ordered first().
            row = db_query(self.db, JOBS_TABLE).filter(
                status=QUEUED
            ).where_range(
                "not_before", high=now, include_high=True
            ).order_by("id").first()
            if row is None:
                return None
            updated = self.db.update(
                JOBS_TABLE, row["id"],
                status=LEASED,
                lease_owner=worker_id,
                lease_deadline=now + timeout,
                attempts=row["attempts"] + 1,
                updated_at=now,
            )
        return self._decode(updated)

    def heartbeat(self, job_id: int, worker_id: str) -> float:
        """Extend the caller's lease; returns the new deadline.  Raises
        :class:`StaleLease` when the caller lost the job."""
        now = float(self.clock())
        with self.db.transaction():
            self._checked(job_id, worker_id)
            deadline = now + self.visibility_timeout
            self.db.update(
                JOBS_TABLE, job_id,
                lease_deadline=deadline, updated_at=now,
            )
        return deadline

    # ----------------------------------------------------------- finishing

    def complete(
        self, job_id: int, worker_id: str, result: Any = None
    ) -> dict[str, Any]:
        now = float(self.clock())
        with self.db.transaction():
            self._checked(job_id, worker_id)
            row = self.db.update(
                JOBS_TABLE, job_id,
                status=DONE, lease_owner=None, lease_deadline=None,
                result=json.dumps(result), error="", updated_at=now,
            )
        return self._decode(row)

    def fail(
        self, job_id: int, worker_id: str, error: str,
        *, retryable: bool = True,
    ) -> dict[str, Any]:
        """Finish the attempt unsuccessfully.  Retryable failures with
        attempts left re-queue with exponential backoff; everything
        else dead-letters."""
        now = float(self.clock())
        with self.db.transaction():
            row = self._checked(job_id, worker_id)
            if retryable and row["attempts"] < row["max_attempts"]:
                row = self.db.update(
                    JOBS_TABLE, job_id,
                    status=QUEUED, lease_owner=None, lease_deadline=None,
                    not_before=now + self.backoff(row["attempts"]),
                    error=error, updated_at=now,
                )
            else:
                row = self.db.update(
                    JOBS_TABLE, job_id,
                    status=DEAD, lease_owner=None, lease_deadline=None,
                    error=error, updated_at=now,
                )
        return self._decode(row)

    # ---------------------------------------------------------- inspection

    def get(self, job_id: int) -> dict[str, Any] | None:
        if not self.available:
            return None
        row = self.db.table(JOBS_TABLE).get_or_none(job_id)
        return self._decode(row) if row is not None else None

    def jobs(
        self, status: str | None = None, *, kind: str | None = None
    ) -> list[dict[str, Any]]:
        """All jobs (newest first), optionally filtered."""
        if not self.available:
            return []
        q = db_query(self.db, JOBS_TABLE)
        if status:
            q = q.filter(status=status)
        if kind is not None:
            q = q.filter(kind=kind)
        rows = q.order_by("id", descending=True).all()
        return [self._decode(r) for r in rows]

    def counts(self) -> dict[str, int]:
        """Backlog by state (always all four states, plus ``total``)."""
        table = self.db.table(JOBS_TABLE) if self.available else None
        out = {
            state: (table.count(status=state) if table is not None else 0)
            for state in STATES
        }
        out["total"] = sum(out.values())
        return out

    def pending(self) -> int:
        """Jobs not yet finished (the drain condition)."""
        counts = self.counts()
        return counts[QUEUED] + counts[LEASED]
