"""Durable background jobs for CAR-CS.

Job state lives in the ``_jobs`` system table of the relational
engine, so the queue inherits WAL durability, crash recovery and
replication without any persistence code of its own.  See
:mod:`repro.jobs.queue` for the lease/heartbeat/retry semantics,
:mod:`repro.jobs.worker` for the execution loop, and
:mod:`repro.jobs.classify` for the automatic classification service
built on top.
"""

from .classify import (
    DEFAULT_ONTOLOGIES,
    ClassificationService,
    Suggestion,
    default_handlers,
    make_classify_handler,
    material_text,
    unclassified_material_ids,
)
from .queue import (
    DEAD,
    DONE,
    JOBS_TABLE,
    LEASED,
    QUEUED,
    STATES,
    JobQueue,
    QueueFull,
    StaleLease,
)
from .worker import (
    FatalJobError,
    JobContext,
    Worker,
    WorkerPool,
    run_pending,
)

__all__ = [
    "JOBS_TABLE",
    "QUEUED",
    "LEASED",
    "DONE",
    "DEAD",
    "STATES",
    "JobQueue",
    "QueueFull",
    "StaleLease",
    "FatalJobError",
    "JobContext",
    "Worker",
    "WorkerPool",
    "run_pending",
    "ClassificationService",
    "Suggestion",
    "DEFAULT_ONTOLOGIES",
    "default_handlers",
    "make_classify_handler",
    "material_text",
    "unclassified_material_ids",
]
