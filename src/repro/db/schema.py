"""Column and table schema definitions for the relational engine.

A :class:`TableSchema` is a declarative description of a table: ordered
columns, a primary key, unique constraints, and foreign keys.  The engine
(:mod:`repro.db.table`) enforces these constraints on every write, which is
what lets the CAR-CS data model (materials, ontology entries, many-to-many
mapping tables) rely on referential integrity exactly as the paper's
PostgreSQL schema did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .errors import NotNullViolation, SchemaError

#: Sentinel for "no default value configured".
_NO_DEFAULT = object()


@dataclass(frozen=True)
class Column:
    """A single typed column.

    Parameters
    ----------
    name:
        Column name; must be unique within its table.
    type:
        Python type used for validation (``int``, ``str``, ``float``,
        ``bool``, ``tuple`` …).  Values must be instances of this type.
    nullable:
        Whether ``None`` is accepted.
    default:
        Value (or zero-argument callable producing a value) used when the
        column is omitted from an insert.
    """

    name: str
    type: type = object
    nullable: bool = False
    default: Any = _NO_DEFAULT

    def has_default(self) -> bool:
        return self.default is not _NO_DEFAULT

    def resolve_default(self) -> Any:
        value = self.default
        if callable(value):
            return value()
        return value

    def validate(self, value: Any) -> Any:
        """Check ``value`` against nullability and type; return it unchanged."""
        if value is None:
            if not self.nullable:
                raise NotNullViolation(
                    f"column {self.name!r} is not nullable"
                )
            return None
        if self.type is not object and not isinstance(value, self.type):
            # bool is an int subclass; keep them distinct so flags cannot
            # silently land in integer columns.
            if self.type is int and isinstance(value, bool):
                raise SchemaError(
                    f"column {self.name!r} expects int, got bool"
                )
            raise SchemaError(
                f"column {self.name!r} expects {self.type.__name__}, "
                f"got {type(value).__name__}: {value!r}"
            )
        if self.type is int and isinstance(value, bool):
            raise SchemaError(f"column {self.name!r} expects int, got bool")
        return value


@dataclass(frozen=True)
class ForeignKey:
    """Declarative foreign key: ``column`` references ``ref_table.ref_column``.

    ``on_delete`` is one of ``"restrict"`` (default; deleting a referenced
    row raises) or ``"cascade"`` (referencing rows are deleted too).
    """

    column: str
    ref_table: str
    ref_column: str = "id"
    on_delete: str = "restrict"

    def __post_init__(self) -> None:
        if self.on_delete not in ("restrict", "cascade"):
            raise SchemaError(
                f"on_delete must be 'restrict' or 'cascade', got {self.on_delete!r}"
            )


@dataclass
class TableSchema:
    """Full declarative schema for one table."""

    name: str
    columns: Sequence[Column]
    primary_key: str = "id"
    unique: Sequence[tuple[str, ...]] = field(default_factory=tuple)
    foreign_keys: Sequence[ForeignKey] = field(default_factory=tuple)
    auto_increment: bool = True

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for group in self.unique:
            for col in group:
                if col not in names:
                    raise SchemaError(
                        f"unique constraint references unknown column {col!r}"
                    )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise SchemaError(
                    f"foreign key references unknown column {fk.column!r}"
                )
        self._by_name = {c.name: c for c in self.columns}

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        return name in self._by_name


def autoid() -> Column:
    """Convenience: the conventional integer surrogate primary-key column."""
    return Column("id", int, nullable=False, default=_NO_DEFAULT)
