"""Immutable published snapshots — the MVCC read side of the engine.

Every committed write frame builds a new :class:`Snapshot` by
*path-copying*: only the tables touched by the frame get a new
:class:`TableSnapshot`, and a touched table copies only its bounded
**delta** (pk → row, with tombstones for deletes) over a shared base
mapping.  The database then publishes the snapshot with a single
attribute store — atomic under the interpreter — so readers pin the
current snapshot with **no lock at all** and keep reading a consistent
version while writers commit behind them.

The pin itself is a module-level :data:`~contextvars.ContextVar`
(:func:`current_pin`): ``Database.pinned()`` sets it for a scope, and
every pin-aware accessor (``Database.table`` / ``version`` /
``table_versions`` / ``stats``) consults it.  Threads holding the write
lock bypass the pin so writers and transactions always read their own
uncommitted state.

This module also owns the durable wire format shared by WAL checkpoint
files and :mod:`repro.core.persist` version-2 dumps:
:func:`database_to_dict` / :func:`restore_database` round-trip the full
engine state (schemas, rows, id sequences, version counters, secondary
indexes) through plain JSON-serializable dicts.
"""

from __future__ import annotations

from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from .errors import SchemaError
from .pager import PagedRows
from .schema import _NO_DEFAULT, Column, ForeignKey, TableSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Database
    from .table import Table

#: Marks a pk deleted in a snapshot delta without copying the base map.
_TOMBSTONE = object()

#: Once a delta outgrows ``max(_CONSOLIDATE_MIN, len(base) // 4)`` the
#: snapshot consolidates into a fresh base — keeping reads O(1) and the
#: publish cost amortized O(1) per mutation even under bulk seeding.
_CONSOLIDATE_MIN = 64

#: The ambient pinned snapshot (None = read live state).
_PIN: ContextVar["Snapshot | None"] = ContextVar(
    "carcs_pinned_snapshot", default=None
)


def current_pin() -> "Snapshot | None":
    """The snapshot pinned in this context, if any."""
    return _PIN.get()


class TableSnapshot:
    """A frozen, lock-free view of one table at one version.

    Mirrors the read API of :class:`repro.db.table.Table` (``get``,
    ``find``, ``count``, iteration, …) so repository analytics work
    unchanged against either.  Row dicts are shared with the live table
    (rows are never mutated in place — updates store a fresh dict), and
    every accessor hands out copies, preserving the caller-may-mutate
    contract of the live read API.
    """

    __slots__ = ("schema", "version", "_base", "_delta", "_indexed",
                 "_sorted_cols", "_lazy", "_lazy_sorted", "_size")

    def __init__(self, schema: TableSchema, version: int,
                 base: dict[Any, dict], delta: dict[Any, Any],
                 indexed: frozenset[str],
                 sorted_cols: frozenset[str] = frozenset()) -> None:
        self.schema = schema
        self.version = version
        self._base = base
        self._delta = delta
        self._indexed = indexed
        self._sorted_cols = sorted_cols
        # column -> {value: [pk, ...]}, built lazily on first indexed find.
        self._lazy: dict[str, dict[Any, list]] = {}
        # column -> SortedIndex, built lazily on first ordered access.
        self._lazy_sorted: dict[str, Any] = {}
        size = len(base)
        for pk, row in delta.items():
            if row is _TOMBSTONE:
                size -= pk in base
            else:
                size += pk not in base
        self._size = size

    # -- construction ------------------------------------------------------

    @classmethod
    def capture(cls, table: "Table") -> "TableSnapshot":
        """Full snapshot of a live table (open/DDL/consolidation path).

        A paged table freezes in O(overlay) — the immutable block tier
        is shared, not copied — so capturing a 10^6-row cold table costs
        nothing."""
        rows = table._rows
        if isinstance(rows, PagedRows):
            base: Any = rows.freeze()
        else:
            base = dict(rows)
        return cls(table.schema, table.version, base, {},
                   frozenset(table._indexes) | frozenset(table._lazy_hash),
                   frozenset(table._sorted) | frozenset(table._lazy_sorted))

    def advance(self, table: "Table",
                ops: Iterable[dict[str, Any]]) -> "TableSnapshot":
        """The next version: this snapshot plus one committed frame's ops."""
        delta = dict(self._delta)
        for op in ops:
            kind = op["o"]
            if kind == "insert" or kind == "update":
                delta[op["pk"]] = op["r"]
            elif kind == "delete":
                delta[op["pk"]] = _TOMBSTONE
        if len(delta) > max(_CONSOLIDATE_MIN, len(self._base) // 4):
            if isinstance(self._base, PagedRows):
                # Fold the delta into a fresh overlay copy — the block
                # tier is shared, never materialized.
                delta, base = {}, self._base.with_delta(delta, _TOMBSTONE)
            else:
                merged = dict(self._base)
                for pk, row in delta.items():
                    if row is _TOMBSTONE:
                        merged.pop(pk, None)
                    else:
                        merged[pk] = row
                delta, base = {}, merged
        else:
            base = self._base
        return TableSnapshot(
            self.schema, table.version, base, delta,
            frozenset(table._indexes) | frozenset(table._lazy_hash),
            frozenset(table._sorted) | frozenset(table._lazy_sorted))

    # -- introspection -----------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return self._size

    def __contains__(self, pk: Any) -> bool:
        return self._lookup(pk) is not None

    def has_index(self, column: str) -> bool:
        return column in self._indexed

    def has_sorted_index(self, column: str) -> bool:
        return column in self._sorted_cols

    def sorted_index(self, column: str):
        """Lazily-built :class:`repro.db.table.SortedIndex` over this
        snapshot's rows (same benign build race as :meth:`_index_for`)."""
        sindex = self._lazy_sorted.get(column)
        if sindex is None:
            from .table import SortedIndex

            sindex = SortedIndex()
            for pk, row in self._items():
                sindex.add(row[column], pk)
            self._lazy_sorted[column] = sindex
        return sindex

    def indexes(self) -> dict[str, str]:
        """Declared secondary indexes: column -> "hash" | "sorted" |
        "hash+sorted" (introspection for EXPLAIN and the docs)."""
        out = {c: "hash" for c in self._indexed}
        for c in self._sorted_cols:
            out[c] = "hash+sorted" if c in out else "sorted"
        return out

    def pks(self) -> list[Any]:
        return [pk for pk, _ in self._items()]

    # -- reads -------------------------------------------------------------

    def _lookup(self, pk: Any) -> dict[str, Any] | None:
        row = self._delta.get(pk, _NO_DEFAULT)
        if row is not _NO_DEFAULT:
            return None if row is _TOMBSTONE else row
        return self._base.get(pk)

    def _items(self) -> Iterator[tuple[Any, dict[str, Any]]]:
        base, delta = self._base, self._delta
        for pk, row in base.items():
            if pk in delta:
                row = delta[pk]
                if row is _TOMBSTONE:
                    continue
            yield pk, row
        for pk, row in delta.items():
            if pk not in base and row is not _TOMBSTONE:
                yield pk, row

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return (dict(row) for _, row in self._items())

    def get(self, pk: Any) -> dict[str, Any]:
        row = self._lookup(pk)
        if row is None:
            from .errors import RowNotFound

            raise RowNotFound(f"{self.name!r} has no row with pk {pk!r}")
        return dict(row)

    def get_or_none(self, pk: Any) -> dict[str, Any] | None:
        row = self._lookup(pk)
        return dict(row) if row is not None else None

    def _index_for(self, column: str) -> dict[Any, list]:
        # Benign build race: concurrent readers may build the same mapping;
        # the last assignment wins and both are correct (the snapshot is
        # immutable, so there is nothing to keep in sync afterwards).
        index = self._lazy.get(column)
        if index is None:
            index = {}
            for pk, row in self._items():
                index.setdefault(row[column], []).append(pk)
            self._lazy[column] = index
        return index

    # -- planner accessors (shared duck-type with Table) -------------------

    def eq_pks(self, column: str, value: Any) -> list[Any]:
        """Pks matching ``column == value`` via the lazy hash index (the
        column must be hash-indexed)."""
        return self._index_for(column).get(value, [])

    def eq_count(self, column: str, value: Any) -> int:
        return len(self._index_for(column).get(value, ()))

    def row(self, pk: Any) -> dict[str, Any] | None:
        """The raw stored row (no copy) — planner-internal."""
        return self._lookup(pk)

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Raw stored rows (no copies) — planner-internal."""
        return (row for _, row in self._items())

    def find(self, **equals: Any) -> list[dict[str, Any]]:
        if not equals:
            return [dict(row) for _, row in self._items()]
        for name in equals:
            self.schema.column(name)
        indexed = [c for c in equals if c in self._indexed]
        if indexed:
            seed = indexed[0]
            pks = self._index_for(seed).get(equals[seed], ())
            candidates = (self._lookup(pk) for pk in pks)
        else:
            candidates = (row for _, row in self._items())
        out = []
        for row in candidates:
            if row is not None and all(row[c] == v for c, v in equals.items()):
                out.append(dict(row))
        return out

    def find_one(self, **equals: Any) -> dict[str, Any] | None:
        rows = self.find(**equals)
        return rows[0] if rows else None

    def count(self, **equals: Any) -> int:
        if not equals:
            return self._size
        return len(self.find(**equals))

    def column_values(self, column: str) -> list[Any]:
        self.schema.column(column)
        return [row[column] for _, row in self._items()]


class Snapshot:
    """One published database version: db version + per-table snapshots."""

    __slots__ = ("db", "version", "tables")

    def __init__(self, db: "Database", version: int,
                 tables: dict[str, TableSnapshot]) -> None:
        self.db = db
        self.version = version
        self.tables = tables

    def table(self, name: str) -> TableSnapshot:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self.tables)

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def table_versions(self) -> dict[str, int]:
        return {name: t.version for name, t in sorted(self.tables.items())}

    def stats(self) -> dict[str, int]:
        return {name: len(t) for name, t in sorted(self.tables.items())}


# -- durable wire format ---------------------------------------------------
#
# Shared by WAL checkpoint files (db/wal.py) and format-2 persist dumps
# (core/persist.py).  Everything is plain JSON; schemas serialize by
# column-type *name*, so only JSON-representable column types survive a
# round-trip — which is every type the CAR-CS schema uses.

_TYPE_NAMES: dict[type, str] = {
    int: "int", str: "str", float: "float", bool: "bool", object: "object",
}
_TYPES_BY_NAME = {name: tp for tp, name in _TYPE_NAMES.items()}


def schema_to_dict(schema: TableSchema) -> dict[str, Any]:
    """JSON form of a :class:`TableSchema` (raises on non-durable parts)."""
    columns = []
    for col in schema.columns:
        type_name = _TYPE_NAMES.get(col.type)
        if type_name is None:
            raise ValueError(
                f"column {schema.name}.{col.name} has non-durable type "
                f"{col.type.__name__!r}"
            )
        entry: dict[str, Any] = {"name": col.name, "type": type_name}
        if col.nullable:
            entry["nullable"] = True
        if col.has_default():
            if callable(col.default):
                raise ValueError(
                    f"column {schema.name}.{col.name} has a callable "
                    "default; defaults must be constants to be durable"
                )
            entry["default"] = col.default
        columns.append(entry)
    return {
        "name": schema.name,
        "columns": columns,
        "primary_key": schema.primary_key,
        "unique": [list(group) for group in schema.unique],
        "foreign_keys": [
            {"column": fk.column, "ref_table": fk.ref_table,
             "ref_column": fk.ref_column, "on_delete": fk.on_delete}
            for fk in schema.foreign_keys
        ],
        "auto_increment": schema.auto_increment,
    }


def schema_from_dict(data: dict[str, Any]) -> TableSchema:
    columns = []
    for entry in data["columns"]:
        type_ = _TYPES_BY_NAME.get(entry["type"])
        if type_ is None:
            raise ValueError(f"unknown column type {entry['type']!r}")
        columns.append(Column(
            entry["name"], type_,
            nullable=entry.get("nullable", False),
            default=entry.get("default", _NO_DEFAULT),
        ))
    return TableSchema(
        name=data["name"],
        columns=tuple(columns),
        primary_key=data.get("primary_key", "id"),
        unique=tuple(tuple(g) for g in data.get("unique", ())),
        foreign_keys=tuple(
            ForeignKey(fk["column"], fk["ref_table"],
                       fk.get("ref_column", "id"),
                       fk.get("on_delete", "restrict"))
            for fk in data.get("foreign_keys", ())
        ),
        auto_increment=data.get("auto_increment", True),
    )


def database_to_dict(db: "Database") -> dict[str, Any]:
    """The whole engine state as one JSON-serializable dict.

    Takes the write lock (reentrant, so checkpointing from inside a
    commit is fine) so the captured state is one committed version.
    Tables serialize in creation order, which is FK-dependency order.
    """
    with db.lock.write():
        tables = []
        for table in db._tables.values():
            tables.append({
                "schema": schema_to_dict(table.schema),
                "rows": [dict(row) for row in table._rows.values()],
                "next_id": table._next_id,
                "version": table._version,
                "indexes": table.index_columns(),
                "sorted_indexes": table.sorted_index_columns(),
            })
        return {
            "format": 1,
            "name": db.name,
            "version": db._version,
            "tables": tables,
        }


def load_tables(db: "Database", data: dict[str, Any]) -> None:
    """Replace ``db``'s tables and version with the captured state.

    The low-level half of :func:`restore_database`, shared with
    ``Database.load_state`` (replica bootstrap / mid-stream checkpoint):
    rows, id sequences, per-table version counters and secondary indexes
    restore exactly.  Does **not** publish a snapshot — callers do.
    """
    from .table import Table

    if data.get("format") != 1:
        raise ValueError(
            f"unsupported database snapshot format {data.get('format')!r}"
        )
    tables: dict[str, Table] = {}
    for entry in data["tables"]:
        schema = schema_from_dict(entry["schema"])
        table = Table(schema)
        table._db = db
        pk_col = schema.primary_key
        for row in entry["rows"]:
            table._raw_put(row[pk_col], dict(row))
        table._next_id = entry.get("next_id", 1)
        table._version = entry.get("version", 0)
        for column in entry.get("indexes", ()):
            if column not in table._indexes:
                index: dict[Any, set] = {}
                for pk, row in table._rows.items():
                    index.setdefault(row[column], set()).add(pk)
                table._indexes[column] = index
        for column in entry.get("sorted_indexes", ()):
            if column not in table._sorted:
                from .table import SortedIndex

                sindex = SortedIndex()
                for pk, row in table._rows.items():
                    sindex.add(row[column], pk)
                table._sorted[column] = sindex
        tables[schema.name] = table
    db._tables = tables
    db._version = data.get("version", 0)
    db.name = data.get("name", db.name)


def restore_database(data: dict[str, Any], **db_kwargs: Any) -> "Database":
    """Rebuild a :class:`Database` from :func:`database_to_dict` output.

    Rows, id sequences and version counters restore exactly; the change
    journal starts empty (consumers fall back to full rebuilds), and no
    WAL is attached — callers wanting durability attach one afterwards.
    """
    from .engine import Database

    db = Database(data.get("name", "carcs"), **db_kwargs)
    load_tables(db, data)
    db._publish_full()
    return db
