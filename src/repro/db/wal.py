"""Write-ahead log: length-prefixed, checksummed commit frames.

Durability layer of the engine.  Every committed write frame appends one
record; a record is::

    [4 bytes little-endian payload length][4 bytes CRC-32][payload]

where the payload is the UTF-8 JSON of ``{"v": <end version>, "ops":
[...]}`` — the exact operation list the frame committed, in order
(cascade children before their parent, so replaying through the normal
FK-checked entry points always succeeds).  The file starts with an
8-byte magic/format header.

Crash safety is by construction: a torn final record (short header,
short payload, or CRC mismatch) marks the end of committed history —
:func:`read_wal` stops there and reports how many bytes were valid, and
``Database.open`` truncates the tail so the log is clean again.  Records
before a torn tail are never affected because records are appended,
never rewritten.

Fsync policy (``CARCS_WAL_SYNC`` or the ``sync`` argument):

* ``always`` — fsync after every append; survives power loss at single-
  commit granularity, slowest.
* ``batch`` (default) — fsync every ``batch_every`` appends and on
  checkpoint/close; an OS crash can lose the last few commits but the
  log never corrupts (the tail simply tears).
* ``off`` — never fsync (tests, bulk loads); an OS flush is still
  requested per append via ``flush()``.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any

from repro.obs import trace as _trace

MAGIC = b"CWAL\x01\x00\x00\x00"
_HEADER = struct.Struct("<II")  # payload length, crc32

ENV_WAL_SYNC = "CARCS_WAL_SYNC"
SYNC_MODES = ("always", "batch", "off")
DEFAULT_BATCH_EVERY = 64

#: Guard against absurd lengths in a torn/garbage length prefix: a
#: record claiming more than this is treated as torn, not allocated.
MAX_RECORD_BYTES = 256 * 1024 * 1024


def env_sync_mode() -> str:
    raw = os.environ.get(ENV_WAL_SYNC, "batch").strip().lower()
    return raw if raw in SYNC_MODES else "batch"


def encode_record(frame: dict[str, Any]) -> bytes:
    payload = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class WalReader:
    """Streaming decoder over one WAL file's intact frames.

    Iterating yields frames in append order, decoding **one frame at a
    time** — a multi-megabyte replay tail never holds all its decoded
    operation lists in memory at once (the raw bytes are one contiguous
    read; the decoded form is what dominates).  After iteration,
    :attr:`valid_bytes` is the offset up to which the file is valid
    (header included) and :attr:`torn` reports whether a torn/corrupt
    tail follows it.  A missing file reads as empty; a file with a
    foreign header raises on construction.
    """

    __slots__ = ("path", "valid_bytes", "torn", "_blob")

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.valid_bytes = len(MAGIC)
        self.torn = False
        blob = self.path.read_bytes() if self.path.exists() else b""
        if not blob:
            self._blob = b""
            return
        if len(blob) < len(MAGIC):
            if MAGIC.startswith(blob):
                # The torn record is the magic header itself: a crash
                # while the very first write (the header) was in flight.
                # The file carries zero committed history — report it as
                # a tear at offset zero so truncate_wal rewrites a clean
                # header.
                self.torn = True
                self._blob = b""
                return
            raise ValueError(f"{self.path} is not a CAR-CS WAL (bad magic)")
        if blob[: len(MAGIC)] != MAGIC:
            raise ValueError(f"{self.path} is not a CAR-CS WAL (bad magic)")
        self._blob = blob

    def __iter__(self):
        blob = self._blob
        offset = len(MAGIC)
        total = len(blob)
        while offset < total:
            if offset + _HEADER.size > total:
                self.torn = True
                return
            length, crc = _HEADER.unpack_from(blob, offset)
            start = offset + _HEADER.size
            end = start + length
            if length > MAX_RECORD_BYTES or end > total:
                self.torn = True
                return
            payload = blob[start:end]
            if zlib.crc32(payload) != crc:
                self.torn = True
                return
            try:
                frame = json.loads(payload.decode("utf-8"))
            except ValueError:
                # CRC collisions on garbage are astronomically unlikely,
                # but the recovery contract is "stop at the first bad
                # record".
                self.torn = True
                return
            offset = end
            self.valid_bytes = offset
            yield frame


def read_wal(path: str | Path) -> tuple[list[dict[str, Any]], int, bool]:
    """Decode every intact frame of a WAL file at once.

    Returns ``(frames, valid_bytes, torn)`` — the materialized form of
    :class:`WalReader` for callers that want the whole (small) log;
    replay paths over potentially large logs iterate the reader instead.
    """
    reader = WalReader(path)
    frames = list(reader)
    return frames, reader.valid_bytes, reader.torn


def truncate_wal(path: str | Path, valid_bytes: int) -> None:
    """Cut a torn tail off, leaving exactly the committed prefix.

    Only call after :func:`read_wal` validated the file (full magic, or a
    torn prefix of it).  When the tear is inside the magic header itself
    the file is *shorter* than the header — plain ``truncate`` would
    zero-extend it into garbage no future open could read — so the
    header is rewritten in place instead.
    """
    path = Path(path)
    with path.open("r+b") as fh:
        head = fh.read(len(MAGIC))
        if head != MAGIC:
            # Torn magic header (read_wal reported a tear at offset 0):
            # restore the full header; there is no committed history.
            fh.seek(0)
            fh.write(MAGIC)
            valid_bytes = len(MAGIC)
        fh.truncate(max(valid_bytes, len(MAGIC)))
        fh.flush()
        os.fsync(fh.fileno())


class WalWriter:
    """Appends commit frames to one WAL file under a chosen fsync policy."""

    def __init__(self, path: str | Path, *, sync: str | None = None,
                 batch_every: int = DEFAULT_BATCH_EVERY) -> None:
        self.path = Path(path)
        self.sync = sync if sync in SYNC_MODES else env_sync_mode()
        self.batch_every = max(1, batch_every)
        self.appends = 0
        self.fsyncs = 0
        self.bytes_written = 0
        self._unsynced = 0
        if not self.path.exists() or self.path.stat().st_size < len(MAGIC):
            # Missing, empty, or torn-mid-header (a crash during the
            # initial header write): (re)write the full header before
            # appending records after it.
            self.path.write_bytes(MAGIC)
        self._fh = self.path.open("ab")

    @property
    def size(self) -> int:
        """Bytes in the log file (header included)."""
        return self._fh.tell() if not self._fh.closed else self.path.stat().st_size

    def append(self, frame: dict[str, Any]) -> int:
        """Write one commit frame; returns its encoded size in bytes."""
        record = encode_record(frame)
        self._fh.write(record)
        self._fh.flush()
        self.appends += 1
        self.bytes_written += len(record)
        if self.sync == "always":
            self._fsync()
        elif self.sync == "batch":
            self._unsynced += 1
            if self._unsynced >= self.batch_every:
                self._fsync()
        return len(record)

    def _fsync(self) -> None:
        with _trace.span("wal.fsync", mode=self.sync):
            os.fsync(self._fh.fileno())
        self.fsyncs += 1
        self._unsynced = 0

    def flush(self) -> None:
        """Force everything to stable storage (checkpoint/close barrier)."""
        self._fh.flush()
        if self.sync != "off":
            self._fsync()

    def reset(self) -> None:
        """Drop all records (post-checkpoint): the file restarts at header."""
        self._fh.close()
        with self.path.open("wb") as fh:
            fh.write(MAGIC)
            fh.flush()
            os.fsync(fh.fileno())
        self._fh = self.path.open("ab")
        self._unsynced = 0

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def stats(self) -> dict[str, int]:
        return {
            "appends": self.appends,
            "fsyncs": self.fsyncs,
            "bytes_written": self.bytes_written,
            "size_bytes": self.size,
        }
