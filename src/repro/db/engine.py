"""The Database: table registry, FK enforcement, transactions, MVCC, WAL.

This is the drop-in substrate for the paper's PostgreSQL instance.  It is
deliberately small but honest: foreign keys are enforced on insert, update
and delete (with RESTRICT/CASCADE semantics), and transactions provide
all-or-nothing rollback — sufficient for the editorial workflows CAR-CS
describes (editors fixing classifications, rejecting submissions, bulk
seeding).

Rollback is implemented with an **undo journal**: ``_begin`` is O(1), each
mutation appends its inverse operation to the active frame, and rollback
replays the frame in reverse, so transaction cost is proportional to the
work done inside the transaction.

Concurrency follows PostgreSQL's reader/writer split (MVCC):

* **Writers serialize** on ``lock`` (a reentrant :class:`RWLock`; only its
  write side is used by the engine).  Every top-level entry point — DML,
  DDL, a whole ``transaction()`` scope — runs as one **write frame**: an
  implicit transaction that either commits atomically or rolls back.
* **Readers take no lock.**  Each committed frame path-copies the touched
  tables into a new immutable :class:`~repro.db.snapshot.Snapshot` and
  publishes it with a single attribute store.  ``pinned()`` pins the
  current snapshot for a scope; every pin-aware accessor (``table``,
  ``version``, ``table_versions``, ``stats``) then serves that one
  consistent version no matter what writers commit concurrently.

Durability is a **write-ahead log** (:mod:`repro.db.wal`): each committed
frame appends one checksummed record of its operations; ``checkpoint()``
compacts the log into a full snapshot file, and :meth:`Database.open`
restores snapshot + WAL tail, recovering cleanly from a torn final
record.

On top of the version counter sits a bounded **change journal**: every
mutation appends one :class:`Change` record, and rollback pops the
records of the aborted frame, so the retained journal always describes
exactly the committed history.  Incremental consumers — the search index
in :mod:`repro.core.search` — call :meth:`Database.changes_since` to
catch up in O(changed rows); when the bounded journal no longer reaches
back far enough it returns ``None`` and the consumer falls back to a
full rebuild.  The bound is configurable (``changelog_size=`` or the
``CARCS_CHANGELOG_SIZE`` environment variable).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from typing import Any, Callable, Iterator

from repro.obs import trace as _trace

from .errors import (
    ForeignKeyError,
    RecoveryError,
    SchemaError,
    TransactionError,
)
from .locks import RWLock
from .pager import (
    BlockCache,
    BlockStore,
    PagedRows,
    env_inline_rows,
    restore_blocked,
    storage_stats,
    write_blocked_checkpoint,
)
from .schema import Column, ForeignKey, TableSchema
from .snapshot import (
    _PIN,
    Snapshot,
    TableSnapshot,
    current_pin,
    database_to_dict,
    load_tables,
    restore_database,
    schema_to_dict,
)
from .table import Table
from .wal import WalReader, WalWriter, truncate_wal

#: Default bound of the change journal.  Large enough that a read-heavy
#: deployment's occasional writes always catch up incrementally; small
#: enough that bulk seeding cannot hold the whole history in memory.
#: Override per-database (``changelog_size=``) or process-wide via
#: ``CARCS_CHANGELOG_SIZE``.
CHANGELOG_SIZE = 1024
ENV_CHANGELOG_SIZE = "CARCS_CHANGELOG_SIZE"

#: Slow-operation threshold (milliseconds) — operations at or above it
#: land in the bounded slow-op log, with the active trace id when one
#: exists.  Override per-database via ``slow_op_ms`` or process-wide via
#: the environment.
ENV_DB_SLOW_MS = "CARCS_DB_SLOW_MS"
DEFAULT_SLOW_OP_MS = 50.0
SLOW_OP_LOG_SIZE = 256

#: Durable file names inside a database directory.
SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.log"

#: Auto-checkpoint once the WAL grows past this many bytes (override via
#: ``compact_bytes=`` on :meth:`Database.open`/``attach`` or the
#: environment).  Keeps replay time bounded without manual compaction.
ENV_WAL_COMPACT = "CARCS_WAL_COMPACT_BYTES"
DEFAULT_COMPACT_BYTES = 4 * 1024 * 1024


def env_slow_op_ms() -> float:
    try:
        return float(os.environ.get(ENV_DB_SLOW_MS, DEFAULT_SLOW_OP_MS))
    except ValueError:
        return DEFAULT_SLOW_OP_MS


def env_changelog_size() -> int:
    try:
        size = int(os.environ.get(ENV_CHANGELOG_SIZE, CHANGELOG_SIZE))
    except ValueError:
        return CHANGELOG_SIZE
    return size if size > 0 else CHANGELOG_SIZE


def env_compact_bytes() -> int:
    try:
        return int(os.environ.get(ENV_WAL_COMPACT, DEFAULT_COMPACT_BYTES))
    except ValueError:
        return DEFAULT_COMPACT_BYTES


@dataclass(frozen=True)
class Change:
    """One committed mutation, as retained by the change journal.

    ``version`` is the database-wide version the mutation produced (the
    journal is contiguous in this field), ``op`` is one of ``insert`` /
    ``update`` / ``delete`` / ``create_table`` / ``drop_table``, and
    ``row`` is a snapshot of the affected row — the *new* row for
    inserts and updates, the *removed* row for deletes, ``None`` for
    DDL.  The snapshot is what lets consumers of link-table deletes
    resolve which parent row was affected after the link is gone.
    """

    version: int
    table: str
    op: str
    pk: Any = None
    row: dict[str, Any] | None = None


class Database:
    """A named collection of tables with cross-table integrity.

    Concurrency: writers (DML, DDL, whole ``transaction()`` scopes) hold
    the exclusive write side of ``lock``; readers pin a published
    snapshot via :meth:`pinned` and take **no lock at all**.  The read
    side of :class:`RWLock` is kept for API compatibility but nothing in
    the engine acquires it anymore.
    """

    def __init__(self, name: str = "carcs", *,
                 changelog_size: int | None = None,
                 slow_op_ms: float | None = None) -> None:
        self.name = name
        self.lock = RWLock()
        # Slow-operation log: every traced entry point (DML, DDL,
        # transactions, journal reads) that takes >= slow_op_ms lands
        # here with the trace id that was active, so a slow request's
        # trace and the db-side record cross-reference each other.
        self.slow_op_ms = (
            slow_op_ms if slow_op_ms is not None else env_slow_op_ms()
        )
        self._slow_ops: deque[dict[str, Any]] = deque(maxlen=SLOW_OP_LOG_SIZE)
        self._tables: dict[str, Table] = {}
        self._tx_depth = 0
        # Stack of transaction frames; each frame is a list of undo
        # closures appended by Table mutations and DDL, replayed in
        # reverse on rollback.
        self._tx_journal: list[list[Callable[[], None]]] = []
        # Database-wide mutation counter: bumped once per committed
        # insert/update/delete on any table (and on DDL), rolled back with
        # aborted transactions.  The cheap freshness token for caches.
        self._version = 0
        # Bounded journal of Change records, newest on the right; evicts
        # oldest-first, so the retained suffix is always contiguous in
        # `version`.  Mutations inside an aborted transaction pop their
        # own records, keeping the journal committed-history-only.
        # Guarded by its own mutex (NOT the RWLock): lock-free readers
        # must never iterate the deque while a writer appends.
        self._changes: deque[Change] = deque(
            maxlen=changelog_size if changelog_size is not None
            else env_changelog_size()
        )
        self._changes_lock = Lock()
        self._changes_truncated = 0
        # Write-frame state (only touched under the write lock): the
        # operation list of the frame being committed, appended as one
        # WAL record and folded into the next published snapshot.
        self._frame_active = False
        self._frame_ops: list[dict[str, Any]] = []
        # MVCC read side: the currently published snapshot.  Replaced
        # wholesale on every commit (single attribute store = atomic
        # publish); readers pin it via pinned().
        self._snapshot = Snapshot(self, 0, {})
        # Durability (attached by Database.open()/attach()).
        self._dir: Path | None = None
        self._wal: WalWriter | None = None
        self._compact_bytes = env_compact_bytes()
        self._checkpoints = 0
        self._replaying = False
        self._recovery: dict[str, Any] | None = None
        # Commit listeners (replication shippers): called after every
        # published frame with its durable form ({"v": ..., "ops": [...]}),
        # under the write lock, in registration order.
        self._commit_listeners: list[Callable[[dict[str, Any]], None]] = []
        self._listener_errors = 0
        # Tiered storage (populated by a blocked restore or the first
        # blocked checkpoint): the open rows-file store and the shared
        # byte-budgeted block cache.
        self._pager: BlockStore | None = None
        self._block_cache: BlockCache | None = None

    # -- observability --------------------------------------------------------

    @contextmanager
    def _traced_op(self, op: str, table: str) -> Iterator[Any]:
        """Span + slow-op accounting around one database entry point.

        The span (``db.insert``, ``db.transaction``, ...) opens *before*
        lock acquisition so lock wait is attributed to the operation
        that suffered it; with no active trace the span is a no-op but
        the slow-op log still records outliers (trace_id ``None``).
        """
        # A request past its deadline aborts before doing db work (and
        # before queuing on the write lock) — the admission layer maps
        # the exception to a shed response.
        _trace.check_deadline(f"db.{op}")
        start = time.perf_counter()
        with _trace.span(f"db.{op}", table=table) as span_:
            try:
                yield span_
            finally:
                elapsed_ms = (time.perf_counter() - start) * 1e3
                if elapsed_ms >= self.slow_op_ms:
                    self._slow_ops.append({
                        "ts": time.time(),
                        "op": op,
                        "table": table,
                        "duration_ms": round(elapsed_ms, 3),
                        "trace_id": span_.trace_id if span_ else None,
                    })

    def slow_ops(self) -> list[dict[str, Any]]:
        """The retained slow-operation records, oldest first."""
        return list(self._slow_ops)

    # -- MVCC snapshots -------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """The currently published snapshot (atomic read, no lock)."""
        return self._snapshot

    def _pin(self) -> Snapshot | None:
        """The snapshot this context reads from, or ``None`` for live.

        Threads holding the write lock always read live state (a writer
        must see its own uncommitted work), so a pin set further up the
        stack is ignored for the duration of the write."""
        pin = current_pin()
        if pin is not None and pin.db is self and not self.lock.write_held:
            return pin
        return None

    @contextmanager
    def pinned(self) -> Iterator[Snapshot | None]:
        """Pin the current snapshot for the scope — the lock-free read
        path.  Everything inside the scope (``table()``, ``version``,
        analytics built on them) observes one consistent committed
        version, regardless of concurrent commits.  Nested pins reuse
        the outer pin; under the write lock the pin is a no-op (yields
        ``None``) so writers and transactions read their own state.
        """
        if self.lock.write_held:
            yield None
            return
        pin = current_pin()
        if pin is not None and pin.db is self:
            yield pin
            return
        snap = self._snapshot
        token = _PIN.set(snap)
        try:
            yield snap
        finally:
            _PIN.reset(token)

    def _publish(self, ops: list[dict[str, Any]]) -> None:
        """Build and publish the next snapshot from one committed frame.

        Path-copying: untouched tables share their TableSnapshot with
        the previous version; touched tables advance by (bounded) delta;
        DDL-touched tables are recaptured wholesale."""
        prev = self._snapshot
        touched: dict[str, list[dict[str, Any]]] = {}
        ddl: set[str] = set()
        for op in ops:
            name = op["t"]
            if op["o"] in ("create_table", "drop_table"):
                ddl.add(name)
            touched.setdefault(name, []).append(op)
        tables = dict(prev.tables)
        for name, table_ops in touched.items():
            live = self._tables.get(name)
            if live is None:
                tables.pop(name, None)
                continue
            previous = tables.get(name)
            if previous is None or name in ddl:
                tables[name] = TableSnapshot.capture(live)
            else:
                tables[name] = previous.advance(live, table_ops)
        self._snapshot = Snapshot(self, self._version, tables)

    def _publish_full(self) -> None:
        """Publish a from-scratch snapshot of every table (open/restore)."""
        self._snapshot = Snapshot(self, self._version, {
            name: TableSnapshot.capture(t) for name, t in self._tables.items()
        })

    # -- versions -------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter over all tables (DDL included).

        Pin-aware: inside :meth:`pinned` this is the pinned snapshot's
        version, so ETags and cache keys derived from it are consistent
        with the data the pin serves."""
        pin = self._pin()
        return pin.version if pin is not None else self._version

    def table_versions(self) -> dict[str, int]:
        """Per-table mutation counters, sorted by table name."""
        pin = self._pin()
        if pin is not None:
            return pin.table_versions()
        return {name: t.version for name, t in sorted(self._tables.items())}

    def _record(self, undo: Callable[[], None]) -> None:
        if self._tx_journal:
            self._tx_journal[-1].append(undo)

    def _log_change(self, table: str, op: str, pk: Any = None,
                    row: dict[str, Any] | None = None, *,
                    wal_extra: dict[str, Any] | None = None) -> None:
        """Append one :class:`Change` at the current version and collect
        the matching frame op for the WAL/snapshot publish.

        Inside a transaction the undo closure pops both again —
        identity-checked, so a record already evicted by the ``maxlen``
        bound is simply skipped (its successors were popped first, which
        keeps the retained suffix contiguous either way).
        """
        change = Change(self._version, table, op, pk, row)
        with self._changes_lock:
            if (self._changes.maxlen is not None
                    and len(self._changes) == self._changes.maxlen):
                self._changes_truncated += 1
            self._changes.append(change)
        frame_op: dict[str, Any] = {"t": table, "o": op, "pk": pk, "r": row}
        if wal_extra:
            frame_op.update(wal_extra)
        if self._frame_active:
            self._frame_ops.append(frame_op)

        def undo() -> None:
            with self._changes_lock:
                if self._changes and self._changes[-1] is change:
                    self._changes.pop()
            if self._frame_ops and self._frame_ops[-1] is frame_op:
                self._frame_ops.pop()

        self._record(undo)
        if not self._frame_active and not self._replaying:
            # Direct table mutation outside any engine entry point
            # (legacy tests drive Table.insert with a _db attached):
            # commit the single op immediately so snapshot and WAL
            # never drift from live state.
            self._commit_ops([frame_op])

    def _log_index(self, table: str, column: str, *,
                   kind: str = "hash") -> None:
        """Record a ``create_index`` in the frame/WAL (version-neutral).

        ``kind`` distinguishes sorted from hash indexes; hash frames
        omit the field so logs written before sorted indexes existed
        replay unchanged."""
        frame_op = {"t": table, "o": "create_index", "c": column}
        if kind != "hash":
            frame_op["k"] = kind
        if self._frame_active:
            self._frame_ops.append(frame_op)

            def undo() -> None:
                if self._frame_ops and self._frame_ops[-1] is frame_op:
                    self._frame_ops.pop()

            self._record(undo)
        elif not self._replaying:
            self._commit_ops([frame_op])

    def changes_since(self, version: int, *,
                      upto: int | None = None) -> list[Change] | None:
        """Committed changes with ``version < change.version <= upto``
        (``upto`` defaults to the current version), oldest first — or
        ``None`` when the bounded journal no longer reaches back that
        far (or ``version`` is from a rolled-back future), in which case
        the caller must fall back to a full recomputation.

        ``upto`` lets a reader pinned to a snapshot catch up *exactly*
        to that snapshot's version, ignoring any newer (possibly still
        uncommitted) journal suffix.
        """
        with self._traced_op("changes_since", "*") as span_:
            with self._changes_lock:
                target = self._version if upto is None else min(
                    upto, self._version
                )
                if version == target:
                    return []
                if version > target:
                    # Observed inside a transaction since aborted.
                    return None
                if not self._changes or self._changes[0].version > version + 1:
                    # Journal truncated past the requested point.
                    return None
                changes = [
                    c for c in self._changes if version < c.version <= target
                ]
                if span_:
                    span_.set(since=version, changes=len(changes))
                return changes

    def changelog_stats(self) -> dict[str, int]:
        """Bound, occupancy and eviction count of the change journal."""
        with self._changes_lock:
            return {
                "bound": self._changes.maxlen or 0,
                "entries": len(self._changes),
                "truncated": self._changes_truncated,
            }

    def _bump_ddl(self, table: str, op: str,
                  wal_extra: dict[str, Any] | None = None) -> None:
        prev = self._version
        self._version += 1
        self._record(lambda: setattr(self, "_version", prev))
        self._log_change(table, op, wal_extra=wal_extra)

    # -- write frames ---------------------------------------------------------

    @contextmanager
    def _write_frame(self) -> Iterator[None]:
        """One atomic commit unit around every top-level entry point.

        Acquires the write lock, opens an implicit transaction (so even
        autocommit ops that fail midway — e.g. a cascade delete hitting
        a RESTRICT — roll back instead of partially applying), and on
        success appends the collected ops as one WAL record and
        publishes the next snapshot.  Re-entered frames (DML inside a
        ``transaction()``) are no-ops: everything folds into the
        outermost frame and commits once.
        """
        with self.lock.write():
            if self._frame_active:
                yield
                return
            self._frame_active = True
            self._frame_ops = []
            committed = False
            self._begin()
            try:
                yield
            except BaseException:
                self._rollback()
                raise
            else:
                self._commit()
                committed = True
            finally:
                self._frame_active = False
                ops = self._frame_ops
                self._frame_ops = []
                if committed and ops:
                    self._commit_ops(ops)

    def _commit_ops(self, ops: list[dict[str, Any]]) -> None:
        if self._replaying:
            return
        frame: dict[str, Any] | None = None
        if self._wal is not None or self._commit_listeners:
            frame = {
                "v": self._version,
                "ops": [self._durable_op(op) for op in ops],
            }
        if self._wal is not None:
            assert frame is not None
            self._wal_append(frame)
        self._publish(ops)
        # Listeners run after the publish so a subscriber that turns
        # around and reads the database observes at least this frame's
        # version.  A listener failure must never poison the write path.
        for listener in list(self._commit_listeners):
            try:
                listener(frame)  # type: ignore[arg-type]
            except Exception:
                self._listener_errors += 1

    def add_commit_listener(
        self, listener: Callable[[dict[str, Any]], None],
    ) -> None:
        """Subscribe to committed frames (the replication shipping hook).

        The listener receives every committed frame in durable form
        (``{"v": <end version>, "ops": [...]}``), in commit order, while
        the write lock is still held — it must be fast and must not
        write back into this database.
        """
        self._commit_listeners.append(listener)

    def remove_commit_listener(
        self, listener: Callable[[dict[str, Any]], None],
    ) -> None:
        if listener in self._commit_listeners:
            self._commit_listeners.remove(listener)

    @staticmethod
    def _durable_op(op: dict[str, Any]) -> dict[str, Any]:
        out = {k: v for k, v in op.items() if v is not None}
        schema = out.get("s")
        if schema is not None and not isinstance(schema, dict):
            out["s"] = schema_to_dict(schema)
        return out

    def _wal_append(self, frame: dict[str, Any]) -> None:
        assert self._wal is not None
        with _trace.span("wal.append", ops=len(frame["ops"])):
            self._wal.append(frame)
        if self._compact_bytes and self._wal.size >= self._compact_bytes:
            self.checkpoint()

    # -- DDL ----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        with self._traced_op("create_table", schema.name), self._write_frame():
            return self._create_table(schema)

    def _create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.ref_table not in self._tables and fk.ref_table != schema.name:
                raise SchemaError(
                    f"foreign key in {schema.name!r} references unknown table "
                    f"{fk.ref_table!r} (create referenced tables first)"
                )
        table = Table(schema)
        table._db = self
        self._tables[schema.name] = table
        # Tables created inside an aborted transaction vanish on rollback.
        self._record(lambda: self._tables.pop(schema.name, None))
        # The schema object rides along unserialized; it is rendered to
        # its durable dict form only if/when a WAL is attached.
        self._bump_ddl(schema.name, "create_table", wal_extra={"s": schema})
        # Index FK columns automatically: reverse lookups (who references
        # this row?) dominate delete checks and join traversals.
        for fk in schema.foreign_keys:
            table.create_index(fk.column)
        return table

    def drop_table(self, name: str) -> None:
        with self._traced_op("drop_table", name), self._write_frame():
            self._drop_table(name)

    def _drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"no table {name!r}")
        for other in self._tables.values():
            if other.name == name:
                continue
            for fk in other.schema.foreign_keys:
                if fk.ref_table == name:
                    raise SchemaError(
                        f"cannot drop {name!r}: referenced by {other.name!r}"
                    )
        table = self._tables.pop(name)
        # A table dropped inside an aborted transaction comes back intact.
        self._record(lambda: self._tables.__setitem__(name, table))
        self._bump_ddl(name, "drop_table")

    def table(self, name: str) -> Table | TableSnapshot:
        """The live table — or, inside :meth:`pinned`, its snapshot.

        Both expose the same read API; only the live table accepts
        writes (write paths always run under the write lock, where the
        pin is bypassed)."""
        pin = self._pin()
        if pin is not None:
            return pin.table(name)
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def table_names(self) -> list[str]:
        pin = self._pin()
        return pin.table_names() if pin is not None else sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        pin = self._pin()
        return name in pin if pin is not None else name in self._tables

    # -- DML with FK enforcement ---------------------------------------------

    def _ref_exists(self, ref: Table, column: str, value: Any) -> bool:
        # FKs overwhelmingly target the primary key: O(1) containment
        # beats a table scan (the 10⁴-material seeding path).
        if column == ref.schema.primary_key:
            return value in ref._rows
        return ref.find_one(**{column: value}) is not None

    def _check_fks_outbound(self, table: Table, row: dict[str, Any]) -> None:
        for fk in table.schema.foreign_keys:
            value = row.get(fk.column)
            if value is None:
                continue
            ref = self._tables[fk.ref_table]
            if not self._ref_exists(ref, fk.ref_column, value):
                raise ForeignKeyError(
                    f"{table.name}.{fk.column}={value!r} references missing "
                    f"{fk.ref_table}.{fk.ref_column}"
                )

    def _live_table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def insert(self, table_name: str, **values: Any) -> dict[str, Any]:
        with self._traced_op("insert", table_name), self._write_frame():
            table = self._live_table(table_name)
            # Validate FKs against a completed candidate row before committing.
            candidate = table._complete_row(values)
            self._check_fks_outbound(table, candidate)
            return table.insert(**candidate)

    def update(self, table_name: str, pk: Any, **changes: Any) -> dict[str, Any]:
        with self._traced_op("update", table_name), self._write_frame():
            table = self._live_table(table_name)
            fk_cols = {fk.column: fk for fk in table.schema.foreign_keys}
            for name, value in changes.items():
                fk = fk_cols.get(name)
                if fk is not None and value is not None:
                    ref = self._tables[fk.ref_table]
                    if not self._ref_exists(ref, fk.ref_column, value):
                        raise ForeignKeyError(
                            f"{table_name}.{name}={value!r} references missing "
                            f"{fk.ref_table}.{fk.ref_column}"
                        )
            return table.update(pk, **changes)

    def delete(self, table_name: str, pk: Any) -> dict[str, Any]:
        """Delete honoring inbound foreign keys (restrict or cascade).

        Runs as one write frame: a cascade that hits a RESTRICT midway
        rolls the already-deleted children back instead of leaving a
        partial cascade behind."""
        with self._traced_op("delete", table_name), self._write_frame():
            return self._delete(table_name, pk)

    def _delete(self, table_name: str, pk: Any) -> dict[str, Any]:
        table = self._live_table(table_name)
        row = table.get(pk)
        for other in self._tables.values():
            for fk in other.schema.foreign_keys:
                if fk.ref_table != table_name:
                    continue
                ref_value = row[fk.ref_column]
                referencing = other.find(**{fk.column: ref_value})
                if not referencing:
                    continue
                if fk.on_delete == "restrict":
                    raise ForeignKeyError(
                        f"cannot delete {table_name} pk={pk!r}: referenced by "
                        f"{len(referencing)} row(s) of {other.name!r}"
                    )
                for r in referencing:
                    self._delete(other.name, r[other.schema.primary_key])
        return table.delete(pk)

    # -- transactions ---------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator["Database"]:
        """All-or-nothing scope; nested transactions roll back to their own
        begin point (savepoint semantics).

        The whole scope holds the write lock and commits as one frame:
        one WAL record, one published snapshot — concurrent readers see
        either the entire transaction or none of it."""
        with self._traced_op("transaction", "*"), self._write_frame():
            self._begin()
            try:
                yield self
            except BaseException:
                self._rollback()
                raise
            else:
                self._commit()

    def _begin(self) -> None:
        self._tx_journal.append([])
        self._tx_depth += 1

    def _commit(self) -> None:
        if self._tx_depth == 0:
            raise TransactionError("commit without begin")
        frame = self._tx_journal.pop()
        self._tx_depth -= 1
        if self._tx_journal:
            # Savepoint semantics: an outer rollback must still undo the
            # work committed by this inner transaction.
            self._tx_journal[-1].extend(frame)

    def _rollback(self) -> None:
        if self._tx_depth == 0:
            raise TransactionError("rollback without begin")
        frame = self._tx_journal.pop()
        self._tx_depth -= 1
        for undo in reversed(frame):
            undo()

    @property
    def in_transaction(self) -> bool:
        return self._tx_depth > 0

    # -- durability -----------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, *, name: str = "carcs",
             wal_sync: str | None = None,
             changelog_size: int | None = None,
             slow_op_ms: float | None = None,
             compact_bytes: int | None = None) -> "Database":
        """Open (or create) a durable database directory.

        Restores the newest checkpoint snapshot, replays the WAL tail
        through the normal FK-checked entry points, truncates a torn
        final record if one is found, and leaves the WAL attached so
        every further commit is logged.  :attr:`recovery_report`
        describes what happened.
        """
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        kwargs: dict[str, Any] = {
            "changelog_size": changelog_size, "slow_op_ms": slow_op_ms,
        }
        report: dict[str, Any] = {
            "snapshot_version": 0, "frames_replayed": 0, "ops_replayed": 0,
            "torn": False, "truncated_bytes": 0,
        }
        snap_path = directory / SNAPSHOT_FILE
        if snap_path.exists():
            data = json.loads(snap_path.read_text(encoding="utf-8"))
            if data.get("format") == 2:
                # Blocked checkpoint: restore the manifest only — rows
                # page in lazily through the block cache.
                db = restore_blocked(data, directory, **kwargs)
            else:
                db = restore_database(data, **kwargs)
            report["snapshot_version"] = db._version
        else:
            db = cls(name, **kwargs)
        wal_path = directory / WAL_FILE
        with _trace.span("wal.replay"):
            # Streaming replay: one frame is decoded, applied and
            # released at a time, so a large replay tail never holds all
            # its decoded operation lists in memory at once.
            reader = WalReader(wal_path)
            for frame in reader:
                if not db._should_replay(frame):
                    continue
                db._replay_frame(frame)
                report["frames_replayed"] += 1
                report["ops_replayed"] += len(frame["ops"])
            if reader.torn:
                report["torn"] = True
                # A tear inside the magic header leaves the file shorter
                # than the valid offset; clamp so the report never goes
                # negative.
                report["truncated_bytes"] = max(
                    0, wal_path.stat().st_size - reader.valid_bytes
                )
                truncate_wal(wal_path, reader.valid_bytes)
        db._dir = directory
        db._wal = WalWriter(wal_path, sync=wal_sync)
        if compact_bytes is not None:
            db._compact_bytes = compact_bytes
        db._publish_full()
        db._recovery = report
        return db

    def attach(self, path: str | Path, *, wal_sync: str | None = None,
               compact_bytes: int | None = None) -> Path:
        """Make an in-memory database durable: ``path`` becomes its
        directory, the current state is checkpointed there, and every
        further commit appends to the WAL.  Returns the snapshot path.
        Existing contents of ``path`` are replaced by this database's
        state."""
        with self.lock.write():
            if self._wal is not None:
                raise ValueError("database already has a WAL attached")
            directory = Path(path)
            directory.mkdir(parents=True, exist_ok=True)
            self._dir = directory
            self._wal = WalWriter(directory / WAL_FILE, sync=wal_sync)
            if compact_bytes is not None:
                self._compact_bytes = compact_bytes
            return self.checkpoint()

    def checkpoint(self) -> Path:
        """Compact the WAL: write a full snapshot file atomically (temp
        file + ``os.replace``), then reset the log.  Crash-safe at every
        step — a crash before the replace keeps the old snapshot + full
        WAL; after it, the new snapshot subsumes the (possibly not yet
        reset) log, whose leftover frames replay as no-ops."""
        if self._wal is None or self._dir is None:
            raise ValueError("database is not durable (no WAL attached)")
        # Deadline-immune: auto-compaction runs on whatever request
        # thread tripped the WAL threshold, and a client deadline
        # aborting between the WAL append and the snapshot publish would
        # leave the commit half-done.  Once a checkpoint starts it runs
        # to completion.
        with self.lock.write(), _trace.no_deadline():
            with _trace.span("db.checkpoint", version=self._version):
                if self._use_blocked_checkpoint():
                    # The superseded store (if any) stays open: pinned
                    # snapshots may still page from it; GC closes it.
                    target = write_blocked_checkpoint(self, self._dir)
                else:
                    data = database_to_dict(self)
                    target = self._dir / SNAPSHOT_FILE
                    tmp = self._dir / (SNAPSHOT_FILE + ".tmp")
                    with tmp.open("w", encoding="utf-8") as fh:
                        json.dump(data, fh, separators=(",", ":"))
                        fh.flush()
                        os.fsync(fh.fileno())
                    os.replace(tmp, target)
                self._wal.reset()
                self._checkpoints += 1
            return target

    def _use_blocked_checkpoint(self) -> bool:
        """Blocked (format-2) once any table is paged or the database
        outgrows the inline threshold; small databases keep the eager
        inline format so every historical durability property (and its
        test) holds byte-for-byte."""
        if any(isinstance(t._rows, PagedRows) for t in self._tables.values()):
            return True
        return sum(len(t._rows) for t in self._tables.values()) >= env_inline_rows()

    def close(self) -> None:
        """Flush and detach the WAL (safe to call on in-memory dbs)."""
        if self._wal is not None:
            self._wal.close()
        if self._pager is not None:
            self._pager.close()

    def _should_replay(self, frame: dict[str, Any]) -> bool:
        v = frame["v"]
        if v > self._version:
            return True
        if v == self._version:
            # Version-neutral frames (index DDL) at the checkpoint
            # boundary re-apply idempotently; anything versioned at or
            # below the snapshot version is already in the snapshot.
            return all(op["o"] == "create_index" for op in frame["ops"])
        return False

    def _apply_ops(self, ops: list[dict[str, Any]]) -> None:
        """Apply one frame's durable ops through the normal entry points
        (FK checks and version bumps replay identically because frames
        log operations in dependency order)."""
        from .snapshot import schema_from_dict

        for op in ops:
            kind = op["o"]
            name = op["t"]
            if kind == "insert":
                self.insert(name, **op["r"])
            elif kind == "update":
                pk_col = self._live_table(name).schema.primary_key
                self.update(name, op["pk"], **{
                    k: v for k, v in op["r"].items() if k != pk_col
                })
            elif kind == "delete":
                self.delete(name, op["pk"])
            elif kind == "create_table":
                self.create_table(schema_from_dict(op["s"]))
            elif kind == "drop_table":
                self.drop_table(name)
            elif kind == "create_index":
                if op.get("k") == "sorted":
                    self._live_table(name).create_sorted_index(op["c"])
                else:
                    self._live_table(name).create_index(op["c"])
            else:
                raise RecoveryError(f"unknown WAL op {kind!r}")

    def _replay_frame(self, frame: dict[str, Any]) -> None:
        """Re-apply one committed WAL frame during recovery (no snapshot
        publish, no WAL writes — ``open`` publishes once at the end)."""
        self._replaying = True
        try:
            self._apply_ops(frame["ops"])
        finally:
            self._replaying = False
        if self._version != frame["v"]:
            raise RecoveryError(
                f"replay diverged: version {self._version} after frame "
                f"committed at {frame['v']}"
            )

    # -- replication ----------------------------------------------------------

    def apply_frame(self, frame: dict[str, Any]) -> bool:
        """Apply one *shipped* WAL frame — the replica apply path.

        Unlike recovery replay this is a real commit: the frame's ops run
        as one transaction, publish one MVCC snapshot (concurrent readers
        see all of the frame or none of it), and append to this
        database's own WAL when one is attached.  Returns ``False`` —
        without touching anything — for a frame at or below the current
        version (overlap after a snapshot bootstrap is expected and
        idempotent).  Raises :class:`RecoveryError` on a version gap:
        the stream skipped frames and the caller must re-bootstrap.
        """
        target = frame["v"]
        with self._traced_op("apply_frame", "*") as span_:
            with self.lock.write():
                versioned = sum(
                    1 for op in frame["ops"] if op["o"] != "create_index"
                )
                # A frame ending at or below the current version was
                # already applied — except a *version-neutral* frame
                # (pure create_index, which never bumps the counter)
                # ending exactly here: that one may be new, and its ops
                # are idempotent, so it always (re)applies.
                if target < self._version or (
                    target == self._version and versioned
                ):
                    return False
                if self._version != target - versioned:
                    raise RecoveryError(
                        f"replication gap: frame ends at version {target} "
                        f"({versioned} ops) but database is at "
                        f"{self._version}"
                    )
                with self.transaction():
                    self._apply_ops(frame["ops"])
                if self._version != target:
                    raise RecoveryError(
                        f"replication apply diverged: version "
                        f"{self._version} after frame committed at {target}"
                    )
                if span_:
                    span_.set(version=target, ops=len(frame["ops"]))
                return True

    def load_state(self, data: dict[str, Any]) -> None:
        """Replace this database's entire state in place — the replica
        bootstrap / mid-stream checkpoint path.

        Tables, rows, id sequences and version counters adopt the
        captured state exactly (byte-equal ``database_to_dict``); the
        change journal resets (incremental consumers fall back to a full
        rebuild) and one full snapshot publishes atomically, so readers
        switch from the old state to the new in a single version step.

        A durable database checkpoints immediately after the load: its
        WAL frames will count from the loaded version, so the on-disk
        snapshot must be the replay base they apply to — otherwise a
        crash between the load and the next checkpoint would leave an
        unreplayable log.
        """
        with self._traced_op("load_state", "*"):
            with self.lock.write():
                if self._tx_depth:
                    raise TransactionError(
                        "cannot load a snapshot inside a transaction"
                    )
                load_tables(self, data)
                with self._changes_lock:
                    self._changes.clear()
                    self._changes_truncated = 0
                self._publish_full()
                if self._wal is not None:
                    self.checkpoint()

    @property
    def recovery_report(self) -> dict[str, Any] | None:
        """What :meth:`open` restored/replayed (``None`` if not opened)."""
        return dict(self._recovery) if self._recovery is not None else None

    def wal_stats(self) -> dict[str, int]:
        """Numeric WAL counters (empty when no WAL is attached)."""
        if self._wal is None:
            return {}
        out = self._wal.stats()
        out["checkpoints"] = self._checkpoints
        if self._recovery is not None:
            out["replayed_frames"] = self._recovery["frames_replayed"]
            out["recovered_truncated_bytes"] = self._recovery["truncated_bytes"]
        return out

    def storage_stats(self) -> dict[str, int]:
        """Tiered-storage counters: block-cache budget/occupancy/hit
        rates and per-tier overlay sizes (empty on a fully eager db)."""
        return storage_stats(self)

    # -- stats ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Row count per table (handy in reports and benchmarks).

        Pin-aware; mutation versions are reported separately by
        :meth:`table_versions` / :attr:`version` so the row-count
        mapping keeps its historical shape.
        """
        pin = self._pin()
        if pin is not None:
            return pin.stats()
        return {name: len(t) for name, t in sorted(self._tables.items())}
