"""The Database: table registry, foreign-key enforcement, transactions.

This is the drop-in substrate for the paper's PostgreSQL instance.  It is
deliberately small but honest: foreign keys are enforced on insert, update
and delete (with RESTRICT/CASCADE semantics), and transactions provide
all-or-nothing rollback — sufficient for the editorial workflows CAR-CS
describes (editors fixing classifications, rejecting submissions, bulk
seeding).

Rollback is implemented with an **undo journal** rather than the previous
copy-on-begin snapshots: ``_begin`` is O(1), each mutation appends its
inverse operation to the active frame, and rollback replays the frame in
reverse.  This makes transaction cost proportional to the work done inside
the transaction instead of the size of the whole database — the change
that lets bulk seeding of 10^4-material corpora stay linear.

The database also exposes a **monotonic version counter** (one bump per
committed mutation across all tables, restored on rollback) plus per-table
versions; the analytics cache and the HTTP ETag layer key on these.

On top of the version counter sits a bounded **change journal**: every
mutation appends one :class:`Change` record (version, table, op, pk, row
snapshot), and rollback pops the records of the aborted frame, so the
retained journal always describes exactly the committed history.
Incremental consumers — the search index in :mod:`repro.core.search` —
call :meth:`Database.changes_since` to catch up in O(changed rows)
instead of rebuilding from the whole database; when the bounded journal
no longer reaches back far enough, ``changes_since`` returns ``None``
and the consumer falls back to a full rebuild.
"""

from __future__ import annotations

import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.obs import trace as _trace

from .errors import (
    ForeignKeyError,
    SchemaError,
    TransactionError,
)
from .locks import RWLock
from .schema import Column, ForeignKey, TableSchema
from .table import Table

#: Default bound of the change journal.  Large enough that a read-heavy
#: deployment's occasional writes always catch up incrementally; small
#: enough that bulk seeding cannot hold the whole history in memory.
CHANGELOG_SIZE = 1024

#: Slow-operation threshold (milliseconds) — operations at or above it
#: land in the bounded slow-op log, with the active trace id when one
#: exists.  Override per-database via ``slow_op_ms`` or process-wide via
#: the environment.
ENV_DB_SLOW_MS = "CARCS_DB_SLOW_MS"
DEFAULT_SLOW_OP_MS = 50.0
SLOW_OP_LOG_SIZE = 256


def env_slow_op_ms() -> float:
    try:
        return float(os.environ.get(ENV_DB_SLOW_MS, DEFAULT_SLOW_OP_MS))
    except ValueError:
        return DEFAULT_SLOW_OP_MS


@dataclass(frozen=True)
class Change:
    """One committed mutation, as retained by the change journal.

    ``version`` is the database-wide version the mutation produced (the
    journal is contiguous in this field), ``op`` is one of ``insert`` /
    ``update`` / ``delete`` / ``create_table`` / ``drop_table``, and
    ``row`` is a snapshot of the affected row — the *new* row for
    inserts and updates, the *removed* row for deletes, ``None`` for
    DDL.  The snapshot is what lets consumers of link-table deletes
    resolve which parent row was affected after the link is gone.
    """

    version: int
    table: str
    op: str
    pk: Any = None
    row: dict[str, Any] | None = None


class Database:
    """A named collection of tables with cross-table integrity.

    Concurrency: ``lock`` is a reentrant reader-writer lock.  Every DML
    and DDL entry point below takes the write side (so does a whole
    ``transaction()`` scope); read paths — repository analytics, the web
    layer's GET dispatch — take the read side.  Many readers proceed
    together; writers are exclusive.
    """

    def __init__(self, name: str = "carcs", *,
                 changelog_size: int = CHANGELOG_SIZE,
                 slow_op_ms: float | None = None) -> None:
        self.name = name
        self.lock = RWLock()
        # Slow-operation log: every traced entry point (DML, DDL,
        # transactions, journal reads) that takes >= slow_op_ms lands
        # here with the trace id that was active, so a slow request's
        # trace and the db-side record cross-reference each other.
        self.slow_op_ms = (
            slow_op_ms if slow_op_ms is not None else env_slow_op_ms()
        )
        self._slow_ops: deque[dict[str, Any]] = deque(maxlen=SLOW_OP_LOG_SIZE)
        self._tables: dict[str, Table] = {}
        self._tx_depth = 0
        # Stack of transaction frames; each frame is a list of undo
        # closures appended by Table mutations and DDL, replayed in
        # reverse on rollback.
        self._tx_journal: list[list[Callable[[], None]]] = []
        # Database-wide mutation counter: bumped once per committed
        # insert/update/delete on any table (and on DDL), rolled back with
        # aborted transactions.  The cheap freshness token for caches.
        self._version = 0
        # Bounded journal of Change records, newest on the right; evicts
        # oldest-first, so the retained suffix is always contiguous in
        # `version`.  Mutations inside an aborted transaction pop their
        # own records, keeping the journal committed-history-only.
        self._changes: deque[Change] = deque(maxlen=changelog_size)

    # -- observability --------------------------------------------------------

    @contextmanager
    def _traced_op(self, op: str, table: str) -> Iterator[Any]:
        """Span + slow-op accounting around one database entry point.

        The span (``db.insert``, ``db.transaction``, ...) opens *before*
        lock acquisition so lock wait is attributed to the operation
        that suffered it; with no active trace the span is a no-op but
        the slow-op log still records outliers (trace_id ``None``).
        """
        start = time.perf_counter()
        with _trace.span(f"db.{op}", table=table) as span_:
            try:
                yield span_
            finally:
                elapsed_ms = (time.perf_counter() - start) * 1e3
                if elapsed_ms >= self.slow_op_ms:
                    self._slow_ops.append({
                        "ts": time.time(),
                        "op": op,
                        "table": table,
                        "duration_ms": round(elapsed_ms, 3),
                        "trace_id": span_.trace_id if span_ else None,
                    })

    def slow_ops(self) -> list[dict[str, Any]]:
        """The retained slow-operation records, oldest first."""
        return list(self._slow_ops)

    # -- versions -------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter over all tables (DDL included)."""
        return self._version

    def table_versions(self) -> dict[str, int]:
        """Per-table mutation counters, sorted by table name."""
        return {name: t.version for name, t in sorted(self._tables.items())}

    def _record(self, undo: Callable[[], None]) -> None:
        if self._tx_journal:
            self._tx_journal[-1].append(undo)

    def _log_change(self, table: str, op: str, pk: Any = None,
                    row: dict[str, Any] | None = None) -> None:
        """Append one :class:`Change` at the current version.

        Inside a transaction the undo closure pops the record again —
        identity-checked, so a record already evicted by the ``maxlen``
        bound is simply skipped (its successors were popped first, which
        keeps the retained suffix contiguous either way).
        """
        change = Change(self._version, table, op, pk, row)
        self._changes.append(change)

        def undo() -> None:
            if self._changes and self._changes[-1] is change:
                self._changes.pop()

        self._record(undo)

    def changes_since(self, version: int) -> list[Change] | None:
        """Committed changes with ``change.version > version``, oldest
        first — or ``None`` when the bounded journal no longer reaches
        back that far (or ``version`` is from a rolled-back future), in
        which case the caller must fall back to a full recomputation.
        """
        with self._traced_op("changes_since", "*") as span_:
            with self.lock.read():
                if version == self._version:
                    return []
                if version > self._version:
                    # Observed inside a transaction since aborted.
                    return None
                if not self._changes or self._changes[0].version > version + 1:
                    # Journal truncated past the requested point.
                    return None
                changes = [c for c in self._changes if c.version > version]
                if span_:
                    span_.set(since=version, changes=len(changes))
                return changes

    def _bump_ddl(self, table: str, op: str) -> None:
        prev = self._version
        self._version += 1
        self._record(lambda: setattr(self, "_version", prev))
        self._log_change(table, op)

    # -- DDL ----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        with self._traced_op("create_table", schema.name), self.lock.write():
            return self._create_table(schema)

    def _create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.ref_table not in self._tables and fk.ref_table != schema.name:
                raise SchemaError(
                    f"foreign key in {schema.name!r} references unknown table "
                    f"{fk.ref_table!r} (create referenced tables first)"
                )
        table = Table(schema)
        table._db = self
        self._tables[schema.name] = table
        # Tables created inside an aborted transaction vanish on rollback.
        self._record(lambda: self._tables.pop(schema.name, None))
        self._bump_ddl(schema.name, "create_table")
        # Index FK columns automatically: reverse lookups (who references
        # this row?) dominate delete checks and join traversals.
        for fk in schema.foreign_keys:
            table.create_index(fk.column)
        return table

    def drop_table(self, name: str) -> None:
        with self._traced_op("drop_table", name), self.lock.write():
            self._drop_table(name)

    def _drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"no table {name!r}")
        for other in self._tables.values():
            if other.name == name:
                continue
            for fk in other.schema.foreign_keys:
                if fk.ref_table == name:
                    raise SchemaError(
                        f"cannot drop {name!r}: referenced by {other.name!r}"
                    )
        table = self._tables.pop(name)
        # A table dropped inside an aborted transaction comes back intact.
        self._record(lambda: self._tables.__setitem__(name, table))
        self._bump_ddl(name, "drop_table")

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- DML with FK enforcement ---------------------------------------------

    def _ref_exists(self, ref: Table, column: str, value: Any) -> bool:
        # FKs overwhelmingly target the primary key: O(1) containment
        # beats a table scan (the 10⁴-material seeding path).
        if column == ref.schema.primary_key:
            return value in ref._rows
        return ref.find_one(**{column: value}) is not None

    def _check_fks_outbound(self, table: Table, row: dict[str, Any]) -> None:
        for fk in table.schema.foreign_keys:
            value = row.get(fk.column)
            if value is None:
                continue
            ref = self.table(fk.ref_table)
            if not self._ref_exists(ref, fk.ref_column, value):
                raise ForeignKeyError(
                    f"{table.name}.{fk.column}={value!r} references missing "
                    f"{fk.ref_table}.{fk.ref_column}"
                )

    def insert(self, table_name: str, **values: Any) -> dict[str, Any]:
        with self._traced_op("insert", table_name), self.lock.write():
            table = self.table(table_name)
            # Validate FKs against a completed candidate row before committing.
            candidate = table._complete_row(values)
            self._check_fks_outbound(table, candidate)
            return table.insert(**candidate)

    def update(self, table_name: str, pk: Any, **changes: Any) -> dict[str, Any]:
        with self._traced_op("update", table_name), self.lock.write():
            table = self.table(table_name)
            fk_cols = {fk.column: fk for fk in table.schema.foreign_keys}
            for name, value in changes.items():
                fk = fk_cols.get(name)
                if fk is not None and value is not None:
                    ref = self.table(fk.ref_table)
                    if not self._ref_exists(ref, fk.ref_column, value):
                        raise ForeignKeyError(
                            f"{table_name}.{name}={value!r} references missing "
                            f"{fk.ref_table}.{fk.ref_column}"
                        )
            return table.update(pk, **changes)

    def delete(self, table_name: str, pk: Any) -> dict[str, Any]:
        """Delete honoring inbound foreign keys (restrict or cascade)."""
        with self._traced_op("delete", table_name), self.lock.write():
            return self._delete(table_name, pk)

    def _delete(self, table_name: str, pk: Any) -> dict[str, Any]:
        table = self.table(table_name)
        row = table.get(pk)
        for other in self._tables.values():
            for fk in other.schema.foreign_keys:
                if fk.ref_table != table_name:
                    continue
                ref_value = row[fk.ref_column]
                referencing = other.find(**{fk.column: ref_value})
                if not referencing:
                    continue
                if fk.on_delete == "restrict":
                    raise ForeignKeyError(
                        f"cannot delete {table_name} pk={pk!r}: referenced by "
                        f"{len(referencing)} row(s) of {other.name!r}"
                    )
                for r in referencing:
                    self._delete(other.name, r[other.schema.primary_key])
        return table.delete(pk)

    # -- transactions ---------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator["Database"]:
        """All-or-nothing scope; nested transactions roll back to their own
        begin point (savepoint semantics).

        The whole scope holds the write lock: concurrent readers never see
        a half-applied transaction, and ``in_transaction``/version state
        stays single-writer."""
        with self._traced_op("transaction", "*"), self.lock.write():
            self._begin()
            try:
                yield self
            except BaseException:
                self._rollback()
                raise
            else:
                self._commit()

    def _begin(self) -> None:
        self._tx_journal.append([])
        self._tx_depth += 1

    def _commit(self) -> None:
        if self._tx_depth == 0:
            raise TransactionError("commit without begin")
        frame = self._tx_journal.pop()
        self._tx_depth -= 1
        if self._tx_journal:
            # Savepoint semantics: an outer rollback must still undo the
            # work committed by this inner transaction.
            self._tx_journal[-1].extend(frame)

    def _rollback(self) -> None:
        if self._tx_depth == 0:
            raise TransactionError("rollback without begin")
        frame = self._tx_journal.pop()
        self._tx_depth -= 1
        for undo in reversed(frame):
            undo()

    @property
    def in_transaction(self) -> bool:
        return self._tx_depth > 0

    # -- stats ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Row count per table (handy in reports and benchmarks).

        Mutation versions are reported separately by
        :meth:`table_versions` / :attr:`version` so the row-count mapping
        keeps its historical shape.
        """
        return {name: len(t) for name, t in sorted(self._tables.items())}
