"""The Database: table registry, foreign-key enforcement, transactions.

This is the drop-in substrate for the paper's PostgreSQL instance.  It is
deliberately small but honest: foreign keys are enforced on insert, update
and delete (with RESTRICT/CASCADE semantics), and transactions provide
all-or-nothing rollback via copy-on-begin snapshots — sufficient for the
editorial workflows CAR-CS describes (editors fixing classifications,
rejecting submissions, bulk seeding).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from .errors import (
    ForeignKeyError,
    SchemaError,
    TransactionError,
)
from .schema import Column, ForeignKey, TableSchema
from .table import Table


class Database:
    """A named collection of tables with cross-table integrity."""

    def __init__(self, name: str = "carcs") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._tx_depth = 0
        self._tx_snapshots: list[dict[str, dict[str, Any]]] = []

    # -- DDL ----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.ref_table not in self._tables and fk.ref_table != schema.name:
                raise SchemaError(
                    f"foreign key in {schema.name!r} references unknown table "
                    f"{fk.ref_table!r} (create referenced tables first)"
                )
        table = Table(schema)
        self._tables[schema.name] = table
        # Index FK columns automatically: reverse lookups (who references
        # this row?) dominate delete checks and join traversals.
        for fk in schema.foreign_keys:
            table.create_index(fk.column)
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"no table {name!r}")
        for other in self._tables.values():
            if other.name == name:
                continue
            for fk in other.schema.foreign_keys:
                if fk.ref_table == name:
                    raise SchemaError(
                        f"cannot drop {name!r}: referenced by {other.name!r}"
                    )
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- DML with FK enforcement ---------------------------------------------

    def _check_fks_outbound(self, table: Table, row: dict[str, Any]) -> None:
        for fk in table.schema.foreign_keys:
            value = row.get(fk.column)
            if value is None:
                continue
            ref = self.table(fk.ref_table)
            if ref.find_one(**{fk.ref_column: value}) is None:
                raise ForeignKeyError(
                    f"{table.name}.{fk.column}={value!r} references missing "
                    f"{fk.ref_table}.{fk.ref_column}"
                )

    def insert(self, table_name: str, **values: Any) -> dict[str, Any]:
        table = self.table(table_name)
        # Validate FKs against a completed candidate row before committing.
        candidate = table._complete_row(values)
        self._check_fks_outbound(table, candidate)
        return table.insert(**candidate)

    def update(self, table_name: str, pk: Any, **changes: Any) -> dict[str, Any]:
        table = self.table(table_name)
        fk_cols = {fk.column: fk for fk in table.schema.foreign_keys}
        for name, value in changes.items():
            fk = fk_cols.get(name)
            if fk is not None and value is not None:
                ref = self.table(fk.ref_table)
                if ref.find_one(**{fk.ref_column: value}) is None:
                    raise ForeignKeyError(
                        f"{table_name}.{name}={value!r} references missing "
                        f"{fk.ref_table}.{fk.ref_column}"
                    )
        return table.update(pk, **changes)

    def delete(self, table_name: str, pk: Any) -> dict[str, Any]:
        """Delete honoring inbound foreign keys (restrict or cascade)."""
        table = self.table(table_name)
        row = table.get(pk)
        for other in self._tables.values():
            for fk in other.schema.foreign_keys:
                if fk.ref_table != table_name:
                    continue
                ref_value = row[fk.ref_column]
                referencing = other.find(**{fk.column: ref_value})
                if not referencing:
                    continue
                if fk.on_delete == "restrict":
                    raise ForeignKeyError(
                        f"cannot delete {table_name} pk={pk!r}: referenced by "
                        f"{len(referencing)} row(s) of {other.name!r}"
                    )
                for r in referencing:
                    self.delete(other.name, r[other.schema.primary_key])
        return table.delete(pk)

    # -- transactions ---------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator["Database"]:
        """All-or-nothing scope; nested transactions roll back to their own
        begin point (savepoint semantics)."""
        self._begin()
        try:
            yield self
        except BaseException:
            self._rollback()
            raise
        else:
            self._commit()

    def _begin(self) -> None:
        self._tx_snapshots.append(
            {name: t._snapshot() for name, t in self._tables.items()}
        )
        self._tx_depth += 1

    def _commit(self) -> None:
        if self._tx_depth == 0:
            raise TransactionError("commit without begin")
        self._tx_depth -= 1
        self._tx_snapshots.pop()

    def _rollback(self) -> None:
        if self._tx_depth == 0:
            raise TransactionError("rollback without begin")
        snap = self._tx_snapshots.pop()
        self._tx_depth -= 1
        # Tables created inside the transaction vanish on rollback.
        self._tables = {name: self._tables[name] for name in snap}
        for name, table_snap in snap.items():
            self._tables[name]._restore(table_snap)

    @property
    def in_transaction(self) -> bool:
        return self._tx_depth > 0

    # -- stats ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Row count per table (handy in reports and benchmarks)."""
        return {name: len(t) for name, t in sorted(self._tables.items())}
