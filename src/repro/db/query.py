"""A small composable query builder over :class:`repro.db.table.Table`.

Provides the subset of SQL the CAR-CS service actually needs: equality,
range, prefix and membership filters, opaque predicates, ordering,
projection, limit/offset, inner joins through link tables, and group-by
aggregation.  Queries are lazy: nothing runs until :meth:`Query.all`,
:meth:`Query.first`, :meth:`Query.count` or iteration.

Execution is **planned**, not interpreted: the pipeline compiles through
:mod:`repro.db.plan` into a tree of plan nodes (index lookups, ordered
index scans, residual filters, elidable sorts, lazy slices, semi-joins)
chosen by a cost model over the engine's incrementally-maintained index
statistics.  :meth:`Query.explain` returns the chosen plan with
estimated vs. actual row counts, and every execution surfaces the same
plan summary on its ``db.query`` trace span.  The pre-planner semantics
are preserved by :meth:`Query._run_naive`, the reference interpreter the
planner property tests compare against.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from .engine import Database
from .errors import SchemaError
from .plan import (
    PlanNode,
    QuerySpec,
    RangeBound,
    SemiJoin,
    build_plan,
    sort_key,
)

Predicate = Callable[[dict[str, Any]], bool]


class Query:
    """Lazy pipeline of operations over one table's rows."""

    def __init__(self, db: Database, table_name: str) -> None:
        self._db = db
        self._table = table_name
        self._equals: dict[str, Any] = {}
        self._ranges: dict[str, RangeBound] = {}
        self._prefixes: dict[str, str] = {}
        self._ins: list[tuple[str, frozenset]] = []
        self._predicates: list[Predicate] = []
        self._order: tuple[str, bool] | None = None  # (column, descending)
        self._limit: int | None = None
        self._offset: int = 0
        self._projection: tuple[str, ...] | None = None

    # -- builders (each returns a new Query so partial pipelines can be reused)

    def _clone(self) -> "Query":
        q = Query(self._db, self._table)
        q._equals = dict(self._equals)
        q._ranges = dict(self._ranges)
        q._prefixes = dict(self._prefixes)
        q._ins = list(self._ins)
        q._predicates = list(self._predicates)
        q._order = self._order
        q._limit = self._limit
        q._offset = self._offset
        q._projection = self._projection
        return q

    def filter(self, **equals: Any) -> "Query":
        q = self._clone()
        q._equals.update(equals)
        return q

    def where(self, predicate: Predicate) -> "Query":
        q = self._clone()
        q._predicates.append(predicate)
        return q

    def where_in(self, column: str, values: Iterable[Any]) -> "Query":
        """Membership filter (``column IN values``) — structured, so the
        planner sees it instead of an opaque lambda."""
        q = self._clone()
        q._ins.append((column, frozenset(values)))
        return q

    def where_range(self, column: str, low: Any = None, high: Any = None,
                    *, include_low: bool = True,
                    include_high: bool = False) -> "Query":
        """Interval filter on ``column`` ([low, high) by default; either
        bound may be ``None`` = unbounded).  ``None`` values never match,
        mirroring SQL comparison semantics.  Served by a sorted-index
        range scan when one exists on the column."""
        q = self._clone()
        bound = RangeBound(low, high, include_low, include_high)
        prev = q._ranges.get(column)
        if prev is not None:
            # Intersect repeated ranges on the same column.
            low_b = prev if bound.low is None else (
                bound if prev.low is None
                else (prev if (prev.low, not prev.include_low)
                      >= (bound.low, not bound.include_low) else bound)
            )
            high_b = prev if bound.high is None else (
                bound if prev.high is None
                else (prev if (prev.high, prev.include_high)
                      <= (bound.high, bound.include_high) else bound)
            )
            bound = RangeBound(low_b.low, high_b.high,
                               low_b.include_low, high_b.include_high)
        q._ranges[column] = bound
        return q

    def where_prefix(self, column: str, prefix: str) -> "Query":
        """String-prefix filter (``column LIKE 'prefix%'``).  Served by a
        sorted-index prefix scan when one exists on the column."""
        q = self._clone()
        prev = q._prefixes.get(column)
        if prev is not None:
            if prev.startswith(prefix):
                prefix = prev  # the existing prefix is stricter
            elif not prefix.startswith(prev):
                # Disjoint prefixes can never both match.
                q._ins.append((column, frozenset()))
        q._prefixes[column] = prefix
        return q

    def order_by(self, column: str, descending: bool = False) -> "Query":
        q = self._clone()
        q._order = (column, descending)
        return q

    def limit(self, n: int) -> "Query":
        q = self._clone()
        q._limit = n
        return q

    def offset(self, n: int) -> "Query":
        q = self._clone()
        q._offset = n
        return q

    def select(self, *columns: str) -> "Query":
        q = self._clone()
        q._projection = columns
        return q

    # -- planning ------------------------------------------------------------

    def _source(self) -> Any:
        """The live table — or its snapshot, inside a pin."""
        return self._db.table(self._table)

    def _spec(self, source: Any) -> QuerySpec:
        """Validate structured columns and freeze the pipeline for the
        planner."""
        schema = source.schema
        for name in self._equals:
            schema.column(name)
        for name in self._ranges:
            schema.column(name)
        for name in self._prefixes:
            schema.column(name)
        for name, _ in self._ins:
            schema.column(name)
        if self._order is not None:
            schema.column(self._order[0])
        if self._projection is not None:
            for name in self._projection:
                schema.column(name)
        return QuerySpec(
            equals=dict(self._equals),
            ranges=dict(self._ranges),
            prefixes=dict(self._prefixes),
            ins=list(self._ins),
            predicates=list(self._predicates),
            order=self._order,
            limit=self._limit,
            offset=self._offset,
        )

    def plan(self) -> PlanNode:
        """The plan tree this query would execute (without running it)."""
        source = self._source()
        return build_plan(source, self._spec(source))

    def explain(self) -> dict[str, Any]:
        """Execute and report the chosen plan: a nested node tree with
        estimated vs. actual row counts, plus the compact ``summary``
        string that also lands on the ``db.query`` span's ``plan``
        attribute (the two always agree — they are the same object)."""
        source = self._source()
        node = build_plan(source, self._spec(source))
        with self._db._traced_op("query", self._table) as span_:
            returned = sum(1 for _ in node.rows())
            summary = node.summary()
            if span_:
                span_.set(plan=summary, est_rows=round(node.est_rows, 1),
                          rows=returned)
        return {
            "table": self._table,
            "summary": summary,
            "plan": node.describe(),
            "est_rows": round(node.est_rows, 1),
            "rows": returned,
        }

    # -- execution ---------------------------------------------------------

    def _project(self, rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
        if self._projection is None:
            return rows
        cols = self._projection
        return [{c: r[c] for c in cols} for r in rows]

    def _run(self) -> list[dict[str, Any]]:
        source = self._source()
        node = build_plan(source, self._spec(source))
        with self._db._traced_op("query", self._table) as span_:
            rows = [dict(r) for r in node.rows()]
            if span_:
                span_.set(plan=node.summary(),
                          est_rows=round(node.est_rows, 1), rows=len(rows))
        return self._project(rows)

    def _run_naive(self) -> list[dict[str, Any]]:
        """Reference interpreter: full scan, then every predicate, then
        the canonical sort, slice and projection — no planner involved.
        The planner property tests assert planned execution matches this
        row-for-row; benchmarks use it as the scan baseline."""
        source = self._source()
        spec = self._spec(source)
        rows = [dict(r) for r in source.iter_rows()]
        out = []
        for row in rows:
            if any(row[c] != v for c, v in spec.equals.items()):
                continue
            if any(not b.matches(row[c]) for c, b in spec.ranges.items()):
                continue
            if any(not (isinstance(row[c], str) and row[c].startswith(p))
                   for c, p in spec.prefixes.items()):
                continue
            if any(row[c] not in allowed for c, allowed in spec.ins):
                continue
            if any(not pred(row) for pred in spec.predicates):
                continue
            out.append(row)
        if spec.order is not None:
            column, desc = spec.order
            out.sort(key=sort_key(column, source.schema.primary_key),
                     reverse=desc)
        if spec.offset:
            out = out[spec.offset:]
        if spec.limit is not None:
            out = out[:spec.limit]
        return self._project(out)

    def all(self) -> list[dict[str, Any]]:
        return self._run()

    def first(self) -> dict[str, Any] | None:
        rows = self.limit(1)._run()
        return rows[0] if rows else None

    def count(self) -> int:
        """Row count without materializing rows.

        When the pipeline has no residual predicates the count comes
        straight from the maintained statistics (table size, hash bucket
        length, sorted-index bisect offsets); otherwise the planned
        iterator streams and counts without copying a single row dict.
        Limit/offset fold in arithmetically either way."""
        source = self._source()
        spec = self._spec(source)
        total = self._count_from_stats(source, spec)
        if total is None:
            inner = QuerySpec(
                equals=spec.equals, ranges=spec.ranges,
                prefixes=spec.prefixes, ins=spec.ins,
                predicates=spec.predicates, order=None,
                limit=None, offset=0,
            )
            node = build_plan(source, inner)
            with self._db._traced_op("query", self._table) as span_:
                total = sum(1 for _ in node.rows())
                if span_:
                    span_.set(plan=node.summary(), rows=total)
        total = max(0, total - spec.offset)
        if spec.limit is not None:
            total = min(total, spec.limit)
        return total

    @staticmethod
    def _count_from_stats(source: Any, spec: QuerySpec) -> int | None:
        """Exact pre-offset count from index cardinalities, or ``None``
        when residual predicates force a streaming count."""
        if spec.predicates or spec.ins:
            return None
        n_structured = len(spec.equals) + len(spec.ranges) + len(spec.prefixes)
        if n_structured == 0:
            return len(source)
        if n_structured > 1:
            return None
        if spec.equals:
            (column, value), = spec.equals.items()
            if column == source.schema.primary_key:
                return 1 if source.row(value) is not None else 0
            if source.has_index(column):
                return source.eq_count(column, value)
            if source.has_sorted_index(column):
                return source.sorted_index(column).eq_count(value)
            return None
        if spec.ranges:
            (column, bound), = spec.ranges.items()
            if source.has_sorted_index(column):
                lo, hi = source.sorted_index(column).range_bounds(
                    bound.low, bound.high,
                    include_low=bound.include_low,
                    include_high=bound.include_high,
                )
                return hi - lo
            return None
        (column, prefix), = spec.prefixes.items()
        if (source.has_sorted_index(column)
                and source.schema.column(column).type is str):
            lo, hi = source.sorted_index(column).prefix_bounds(prefix)
            return hi - lo
        return None

    def exists(self) -> bool:
        """True if any row matches — short-circuits on the first one."""
        source = self._source()
        spec = self._spec(source)
        spec.limit = 1 if spec.limit is None else min(spec.limit, 1)
        node = build_plan(source, spec)
        with self._db._traced_op("query", self._table) as span_:
            found = next(node.rows(), None) is not None
            if span_:
                span_.set(plan=node.summary(), rows=int(found))
        return found

    def values(self, column: str) -> list[Any]:
        source = self._source()
        source.schema.column(column)
        node = build_plan(source, self._spec(source))
        with self._db._traced_op("query", self._table) as span_:
            out = [r[column] for r in node.rows()]
            if span_:
                span_.set(plan=node.summary(), rows=len(out))
        return out

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._run())

    # -- joins & aggregation -------------------------------------------------

    def join_via(
        self,
        link_table: str,
        *,
        local_column: str,
        remote_column: str,
        remote_table: str,
    ) -> list[dict[str, Any]]:
        """Inner join: rows of ``remote_table`` linked to any row of this
        query's result through ``link_table``.

        ``link_table`` rows must carry ``local_column`` (FK to this table's
        pk) and ``remote_column`` (FK to the remote table's pk).  Results
        are deduplicated, ordered by remote primary key.  Executes as a
        :class:`~repro.db.plan.SemiJoin` node: the link side resolves by
        per-pk hash-index probes or one link scan, whichever the cost
        model picks — never by materializing this query's full rows.
        """
        source = self._source()
        link = self._db.table(link_table)
        remote = self._db.table(remote_table)
        local_plan = build_plan(source, self._spec(source))
        node = SemiJoin(local_plan, source.schema.primary_key, link,
                        local_column, remote_column, remote)
        with self._db._traced_op("query", self._table) as span_:
            rows = [dict(r) for r in node.rows()]
            if span_:
                span_.set(plan=node.summary(),
                          est_rows=round(node.est_rows, 1), rows=len(rows))
        return rows

    def group_count(self, column: str) -> dict[Any, int]:
        """``SELECT column, COUNT(*) GROUP BY column`` over this query —
        streams the planned iterator, no row copies."""
        source = self._source()
        source.schema.column(column)
        node = build_plan(source, self._spec(source))
        counts: dict[Any, int] = {}
        with self._db._traced_op("query", self._table) as span_:
            for row in node.rows():
                value = row[column]
                counts[value] = counts.get(value, 0) + 1
            if span_:
                span_.set(plan=node.summary(), groups=len(counts))
        return counts

    def aggregate(
        self, column: str, fn: Callable[[list[Any]], Any]
    ) -> Any:
        return fn(self.values(column))


def query(db: Database, table_name: str) -> Query:
    """Entry point: ``query(db, "materials").filter(...)...``"""
    if table_name not in db:
        raise SchemaError(f"no table {table_name!r}")
    return Query(db, table_name)
