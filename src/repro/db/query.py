"""A small composable query builder over :class:`repro.db.table.Table`.

Provides the subset of SQL the CAR-CS service actually needs: equality and
predicate filters, ordering, projection, limit/offset, inner joins through
link tables, and group-by aggregation.  Queries are lazy: nothing runs
until :meth:`Query.all`, :meth:`Query.first`, :meth:`Query.count` or
iteration.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from .engine import Database
from .errors import SchemaError


Predicate = Callable[[dict[str, Any]], bool]


class Query:
    """Lazy pipeline of operations over one table's rows."""

    def __init__(self, db: Database, table_name: str) -> None:
        self._db = db
        self._table = table_name
        self._equals: dict[str, Any] = {}
        self._predicates: list[Predicate] = []
        self._order: tuple[str, bool] | None = None  # (column, descending)
        self._limit: int | None = None
        self._offset: int = 0
        self._projection: tuple[str, ...] | None = None

    # -- builders (each returns a new Query so partial pipelines can be reused)

    def _clone(self) -> "Query":
        q = Query(self._db, self._table)
        q._equals = dict(self._equals)
        q._predicates = list(self._predicates)
        q._order = self._order
        q._limit = self._limit
        q._offset = self._offset
        q._projection = self._projection
        return q

    def filter(self, **equals: Any) -> "Query":
        q = self._clone()
        q._equals.update(equals)
        return q

    def where(self, predicate: Predicate) -> "Query":
        q = self._clone()
        q._predicates.append(predicate)
        return q

    def where_in(self, column: str, values: Iterable[Any]) -> "Query":
        allowed = set(values)
        return self.where(lambda row: row[column] in allowed)

    def order_by(self, column: str, descending: bool = False) -> "Query":
        q = self._clone()
        q._order = (column, descending)
        return q

    def limit(self, n: int) -> "Query":
        q = self._clone()
        q._limit = n
        return q

    def offset(self, n: int) -> "Query":
        q = self._clone()
        q._offset = n
        return q

    def select(self, *columns: str) -> "Query":
        q = self._clone()
        q._projection = columns
        return q

    # -- execution ---------------------------------------------------------

    def _run(self) -> list[dict[str, Any]]:
        table = self._db.table(self._table)
        rows = table.find(**self._equals)
        for pred in self._predicates:
            rows = [r for r in rows if pred(r)]
        if self._order is not None:
            column, desc = self._order
            # None sorts last regardless of direction, mirroring NULLS LAST.
            rows.sort(
                key=lambda r: (r[column] is None, r[column]),
                reverse=desc,
            )
        if self._offset:
            rows = rows[self._offset :]
        if self._limit is not None:
            rows = rows[: self._limit]
        if self._projection is not None:
            for name in self._projection:
                table.schema.column(name)
            rows = [{c: r[c] for c in self._projection} for r in rows]
        return rows

    def all(self) -> list[dict[str, Any]]:
        return self._run()

    def first(self) -> dict[str, Any] | None:
        rows = self.limit(1)._run()
        return rows[0] if rows else None

    def count(self) -> int:
        return len(self._run())

    def exists(self) -> bool:
        return self.first() is not None

    def values(self, column: str) -> list[Any]:
        return [r[column] for r in self.select(column)._run()]

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._run())

    # -- joins & aggregation -------------------------------------------------

    def join_via(
        self,
        link_table: str,
        *,
        local_column: str,
        remote_column: str,
        remote_table: str,
    ) -> list[dict[str, Any]]:
        """Inner join: rows of ``remote_table`` linked to any row of this
        query's result through ``link_table``.

        ``link_table`` rows must carry ``local_column`` (FK to this table's
        pk) and ``remote_column`` (FK to the remote table's pk).  Results
        are deduplicated, ordered by remote primary key.
        """
        local = self._db.table(self._table)
        link = self._db.table(link_table)
        remote = self._db.table(remote_table)
        local_pks = {r[local.schema.primary_key] for r in self._run()}
        remote_pks: set[Any] = set()
        for row in link:
            if row[local_column] in local_pks:
                remote_pks.add(row[remote_column])
        out = []
        for pk in sorted(remote_pks):
            row = remote.get_or_none(pk)
            if row is not None:
                out.append(row)
        return out

    def group_count(self, column: str) -> dict[Any, int]:
        """``SELECT column, COUNT(*) GROUP BY column`` over this query."""
        counts: dict[Any, int] = {}
        for row in self._run():
            counts[row[column]] = counts.get(row[column], 0) + 1
        return counts

    def aggregate(
        self, column: str, fn: Callable[[list[Any]], Any]
    ) -> Any:
        return fn([r[column] for r in self._run()])


def query(db: Database, table_name: str) -> Query:
    """Entry point: ``query(db, "materials").filter(...)...``"""
    if table_name not in db:
        raise SchemaError(f"no table {table_name!r}")
    return Query(db, table_name)
