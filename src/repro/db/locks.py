"""A reentrant reader-writer lock for the database and its caches.

The CAR-CS workload is read-heavy: many concurrent ``/coverage`` and
``/similarity`` GETs per mutation.  A plain mutex would serialize those
reads; this lock lets any number of readers proceed together while
writers (inserts, updates, deletes, whole transactions) get exclusive
access.

Semantics:

* **Reentrant** for both sides: a thread may nest ``read()`` inside
  ``read()``, ``write()`` inside ``write()``, and ``read()`` inside
  ``write()`` (holding the write lock implies read access).
* **No upgrades**: acquiring ``write()`` while holding only ``read()``
  raises ``RuntimeError`` — two upgraders would deadlock, so the attempt
  is rejected eagerly instead of hanging.
* **Writer preference**: once a writer is waiting, *new* reader threads
  queue behind it (threads already holding read access may still
  re-enter, which keeps reentrancy deadlock-free).  Under a constant
  stream of readers a writer still gets in.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Many concurrent readers xor one (reentrant) writer."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers: dict[int, int] = {}   # thread ident -> hold count
        self._writer: int | None = None      # ident of the writing thread
        self._writer_depth = 0
        self._writers_waiting = 0

    # -- read side --------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                # Reentrant entry (write access implies read access).
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me, 0)
            if count == 0:
                raise RuntimeError("release_read without acquire_read")
            if count == 1:
                del self._readers[me]
                self._cond.notify_all()
            else:
                self._readers[me] = count - 1

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side -------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock "
                    "(acquire write() first, read access is implied)"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a non-writing thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection ----------------------------------------------------

    @property
    def write_held(self) -> bool:
        """Is the *current thread* holding the write lock?"""
        return self._writer == threading.get_ident()

    @property
    def read_held(self) -> bool:
        """Does the current thread hold read access (directly or via write)?"""
        me = threading.get_ident()
        return me in self._readers or self._writer == me
