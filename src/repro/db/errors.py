"""Exception hierarchy for the in-process relational engine.

The CAR-CS prototype stored its data "modeled relationally ... in a
postgreSQL database" (paper, Section III-B).  This package replaces that
substrate with a small in-process relational engine; the exception names
mirror the DB-API 2.0 taxonomy so code written against it reads like code
written against a conventional driver.
"""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for all errors raised by :mod:`repro.db`."""


class SchemaError(DatabaseError):
    """A table or column definition is invalid or referenced incorrectly."""


class IntegrityError(DatabaseError):
    """A constraint (primary key, unique, not-null, foreign key) was violated."""


class ForeignKeyError(IntegrityError):
    """A foreign key points at a row that does not exist (or a delete would
    orphan referencing rows under RESTRICT semantics)."""


class UniqueViolation(IntegrityError):
    """An insert or update would duplicate a unique or primary key value."""


class NotNullViolation(IntegrityError):
    """A required (non-nullable) column received ``None``."""


class RowNotFound(DatabaseError):
    """A lookup by primary key matched no row."""


class TransactionError(DatabaseError):
    """Transaction misuse, e.g. commit without an open transaction."""


class RecoveryError(DatabaseError):
    """WAL replay produced a state inconsistent with the logged frames."""
