"""Cost-based query planning for :class:`repro.db.query.Query`.

A :class:`Query` no longer interprets its pipeline naively; it is
compiled here into a small tree of plan nodes:

==============  ============================================================
node            strategy
==============  ============================================================
``pk_lookup``   O(1) primary-key fetch when the pk is equality-bound
``index_eq``    hash- or sorted-index equality probe (exact bucket)
``index_range`` sorted-index range / prefix / full-order scan, ascending or
                descending, yielding rows *in index order*
``full_scan``   iterate every row (always available, always correct)
``filter``      residual predicates the access path did not consume
``sort``        explicit materializing sort (elided when the access path
                already yields the requested order)
``slice``       limit/offset, applied lazily so ordered scans stop early
``semi_join``   ``join_via`` without materializing either side: probe the
                link table's FK hash index per local pk, or scan the link
                once — whichever the cost model says is cheaper
==============  ============================================================

The cost model is deliberately small because its statistics are *exact*:
hash buckets and sorted-index bisect offsets are incrementally maintained
on every write, so cardinality estimates cost two bisects and never need
an ANALYZE pass.  Costs are in "rows touched"; an explicit sort charges
``n·(log2(n)+1)``.

Every node records ``est_rows`` (the planner's estimate) and, once run,
``actual_rows`` (how many rows it actually produced — maintained even
when a consumer stops early), which is what ``Query.explain()`` and the
``db.query`` trace-span ``plan`` attribute report.

Plan nodes execute against the planner duck-type shared by live
:class:`~repro.db.table.Table` and immutable
:class:`~repro.db.snapshot.TableSnapshot` (``iter_rows`` / ``row`` /
``eq_pks`` / ``eq_count`` / ``has_index`` / ``has_sorted_index`` /
``sorted_index``), so the same plan runs on live state, inside
transactions, and on pinned MVCC snapshots or replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import log2
from typing import Any, Callable, Iterator

from repro.obs import trace as _trace

#: Rows between ambient-deadline checks inside unbounded scans — coarse
#: enough to stay off the per-row profile, fine enough that a scan over
#: a cold paged table aborts within one block of the deadline passing.
_DEADLINE_STRIDE = 4096

#: Assumed fraction of rows surviving each residual predicate.  Only used
#: for display estimates — access-path choice uses exact cardinalities.
RESIDUAL_SELECTIVITY = 1 / 3

Predicate = Callable[[dict[str, Any]], bool]


@dataclass(frozen=True)
class RangeBound:
    """One ``where_range`` predicate: a (half-)open interval.

    ``None`` bounds are unbounded on that side; ``None`` column values
    never match (SQL comparison semantics)."""

    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = False

    def matches(self, value: Any) -> bool:
        if value is None:
            return False
        low, high = self.low, self.high
        if low is not None:
            if value < low or (not self.include_low and value == low):
                return False
        if high is not None:
            if value > high or (not self.include_high and value == high):
                return False
        return True

    def describe(self) -> str:
        lo = "[" if self.include_low else "("
        hi = "]" if self.include_high else ")"
        low = "-inf" if self.low is None else repr(self.low)
        high = "+inf" if self.high is None else repr(self.high)
        return f"{lo}{low}, {high}{hi}"


@dataclass
class QuerySpec:
    """The declarative part of a Query pipeline, as the planner sees it."""

    equals: dict[str, Any] = field(default_factory=dict)
    ranges: dict[str, RangeBound] = field(default_factory=dict)
    prefixes: dict[str, str] = field(default_factory=dict)
    ins: list[tuple[str, frozenset]] = field(default_factory=list)
    predicates: list[Predicate] = field(default_factory=list)
    order: tuple[str, bool] | None = None  # (column, descending)
    limit: int | None = None
    offset: int = 0


def sort_key(column: str, pk_col: str) -> Callable[[dict[str, Any]], tuple]:
    """The engine's canonical sort key for one column.

    ``None`` groups after every value ascending (NULLS LAST) and the pk
    breaks ties, so sorted results are fully deterministic and an index
    scan (which yields exactly this order) can replace the sort."""
    def key(row: dict[str, Any]) -> tuple:
        value = row[column]
        none = value is None
        return (none, 0 if none else value, row[pk_col])

    return key


# -- plan nodes -------------------------------------------------------------


class PlanNode:
    """Base node: lazily yields raw (uncopied) row dicts and counts them."""

    kind = "node"

    def __init__(self) -> None:
        self.est_rows: float = 0.0
        self.actual_rows: int | None = None

    def _produce(self) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def rows(self) -> Iterator[dict[str, Any]]:
        n = 0
        try:
            for row in self._produce():
                n += 1
                yield row
        finally:
            # Runs on exhaustion *and* on early close (GeneratorExit), so
            # actual_rows reflects rows produced even under limit pushdown.
            self.actual_rows = n

    # -- description -------------------------------------------------------

    def detail(self) -> str:
        return ""

    def children(self) -> list["PlanNode"]:
        return []

    def describe(self) -> dict[str, Any]:
        """JSON-friendly tree with estimated vs actual row counts."""
        out: dict[str, Any] = {
            "node": self.kind,
            "detail": self.detail(),
            "est_rows": round(self.est_rows, 1),
            "actual_rows": self.actual_rows,
        }
        kids = self.children()
        if kids:
            out["children"] = [c.describe() for c in kids]
        return out

    def summary(self) -> str:
        """Compact one-line form, root first — the trace-span ``plan``
        attribute (and what ``carcs explain`` prints up top)."""
        parts = []
        node: PlanNode | None = self
        while node is not None:
            detail = node.detail()
            parts.append(f"{node.kind}({detail})" if detail else node.kind)
            kids = node.children()
            node = kids[0] if kids else None
        return " <- ".join(parts)


class FullScan(PlanNode):
    kind = "full_scan"

    def __init__(self, source: Any) -> None:
        super().__init__()
        self.source = source
        self.est_rows = float(len(source))

    def _produce(self) -> Iterator[dict[str, Any]]:
        check = _trace.check_deadline
        countdown = _DEADLINE_STRIDE
        for row in self.source.iter_rows():
            countdown -= 1
            if not countdown:
                check("full_scan")
                countdown = _DEADLINE_STRIDE
            yield row

    def detail(self) -> str:
        return self.source.name


class PkLookup(PlanNode):
    kind = "pk_lookup"

    def __init__(self, source: Any, value: Any) -> None:
        super().__init__()
        self.source = source
        self.value = value
        self.est_rows = 1.0

    def _produce(self) -> Iterator[dict[str, Any]]:
        row = self.source.row(self.value)
        if row is not None:
            yield row

    def detail(self) -> str:
        pk = self.source.schema.primary_key
        return f"{self.source.name}.{pk}={self.value!r}"


class IndexEq(PlanNode):
    """Equality probe of a hash or sorted index; yields pks in pk order
    (deterministic regardless of hash-bucket iteration order)."""

    kind = "index_eq"

    def __init__(self, source: Any, column: str, value: Any,
                 index_kind: str) -> None:
        super().__init__()
        self.source = source
        self.column = column
        self.value = value
        self.index_kind = index_kind
        if index_kind == "hash":
            self.est_rows = float(source.eq_count(column, value))
        else:
            self.est_rows = float(
                source.sorted_index(column).eq_count(value)
            )

    def _produce(self) -> Iterator[dict[str, Any]]:
        source = self.source
        if self.index_kind == "hash":
            pks = sorted(source.eq_pks(self.column, self.value))
        else:
            pks = source.sorted_index(self.column).eq_pks(self.value)
        for pk in pks:
            row = source.row(pk)
            if row is not None:
                yield row

    def detail(self) -> str:
        return (f"{self.source.name}.{self.column}={self.value!r} "
                f"via {self.index_kind}")


class IndexRange(PlanNode):
    """Ordered scan of a sorted index: a range, a prefix, or the whole
    index (``order-only``), ascending or descending.  Output is in the
    canonical sort order of the column, so a matching ``order_by`` needs
    no explicit sort and limit/offset apply streaming."""

    kind = "index_range"

    def __init__(self, source: Any, column: str, *,
                 bounds: tuple[int, int], descending: bool = False,
                 with_nones: bool = False, label: str = "") -> None:
        super().__init__()
        self.source = source
        self.column = column
        self.bounds = bounds
        self.descending = descending
        self.with_nones = with_nones
        self.label = label
        sindex = source.sorted_index(column)
        lo, hi = bounds
        self.est_rows = float(
            (hi - lo) + (len(sindex.nones) if with_nones else 0)
        )

    def _produce(self) -> Iterator[dict[str, Any]]:
        source = self.source
        sindex = source.sorted_index(self.column)
        lo, hi = self.bounds
        check = _trace.check_deadline
        countdown = _DEADLINE_STRIDE
        for pk in sindex.scan(lo, hi, descending=self.descending,
                              with_nones=self.with_nones):
            countdown -= 1
            if not countdown:
                check("index_range")
                countdown = _DEADLINE_STRIDE
            row = source.row(pk)
            if row is not None:
                yield row

    def detail(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"{self.source.name}.{self.column} {self.label} {direction}"


class Filter(PlanNode):
    """Residual predicates the access path did not consume."""

    kind = "filter"

    def __init__(self, child: PlanNode, *, equals: dict[str, Any],
                 ranges: dict[str, RangeBound], prefixes: dict[str, str],
                 ins: list[tuple[str, frozenset]],
                 predicates: list[Predicate]) -> None:
        super().__init__()
        self.child = child
        self.equals = equals
        self.ranges = ranges
        self.prefixes = prefixes
        self.ins = ins
        self.predicates = predicates
        self.n_residual = (len(equals) + len(ranges) + len(prefixes)
                           + len(ins) + len(predicates))
        self.est_rows = child.est_rows * (
            RESIDUAL_SELECTIVITY ** self.n_residual
        )

    def _matches(self, row: dict[str, Any]) -> bool:
        for column, value in self.equals.items():
            if row[column] != value:
                return False
        for column, bound in self.ranges.items():
            if not bound.matches(row[column]):
                return False
        for column, prefix in self.prefixes.items():
            value = row[column]
            if not (isinstance(value, str) and value.startswith(prefix)):
                return False
        for column, allowed in self.ins:
            if row[column] not in allowed:
                return False
        for predicate in self.predicates:
            if not predicate(row):
                return False
        return True

    def _produce(self) -> Iterator[dict[str, Any]]:
        matches = self._matches
        for row in self.child.rows():
            if matches(row):
                yield row

    def detail(self) -> str:
        parts = []
        if self.equals:
            parts.append("eq=" + ",".join(sorted(self.equals)))
        if self.ranges:
            parts.append("range=" + ",".join(sorted(self.ranges)))
        if self.prefixes:
            parts.append("prefix=" + ",".join(sorted(self.prefixes)))
        if self.ins:
            parts.append("in=" + ",".join(sorted(c for c, _ in self.ins)))
        if self.predicates:
            parts.append(f"predicates={len(self.predicates)}")
        return " ".join(parts)

    def children(self) -> list[PlanNode]:
        return [self.child]


class Sort(PlanNode):
    """Materializing sort on the canonical key (value, NULLS LAST, pk
    tie-break); present only when no index already yields the order."""

    kind = "sort"

    def __init__(self, child: PlanNode, column: str, descending: bool,
                 pk_col: str) -> None:
        super().__init__()
        self.child = child
        self.column = column
        self.descending = descending
        self.pk_col = pk_col
        self.est_rows = child.est_rows

    def _produce(self) -> Iterator[dict[str, Any]]:
        rows = list(self.child.rows())
        rows.sort(key=sort_key(self.column, self.pk_col),
                  reverse=self.descending)
        return iter(rows)

    def detail(self) -> str:
        return f"{self.column} {'desc' if self.descending else 'asc'}"

    def children(self) -> list[PlanNode]:
        return [self.child]


class Slice(PlanNode):
    """Limit/offset.  Lazy: over an ordered (or unordered) stream it
    closes the child as soon as ``offset + limit`` rows have arrived."""

    kind = "slice"

    def __init__(self, child: PlanNode, offset: int,
                 limit: int | None) -> None:
        super().__init__()
        self.child = child
        self.offset = offset
        self.limit = limit
        available = max(0.0, child.est_rows - offset)
        self.est_rows = (available if limit is None
                         else min(float(limit), available))

    def _produce(self) -> Iterator[dict[str, Any]]:
        remaining = self.limit
        skip = self.offset
        for row in self.child.rows():
            if skip:
                skip -= 1
                continue
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            yield row
            if remaining == 0:
                return

    def detail(self) -> str:
        parts = []
        if self.offset:
            parts.append(f"offset={self.offset}")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        return " ".join(parts)

    def children(self) -> list[PlanNode]:
        return [self.child]


class SemiJoin(PlanNode):
    """``join_via`` without materializing either side.

    Collects the local side's pks from its (planned) subtree, resolves
    the link table by the cheaper of two strategies —

    * ``probe``: one hash-index probe of ``link.local_column`` per local
      pk (the FK columns of link tables are always hash-indexed), cost
      ~ |local| + |matches|;
    * ``scan``: one pass over the link table, cost ~ |link| —

    and yields each linked remote row exactly once, in remote-pk order.
    """

    kind = "semi_join"

    def __init__(self, local_plan: PlanNode, local_pk_col: str,
                 link_source: Any, local_column: str, remote_column: str,
                 remote_source: Any) -> None:
        super().__init__()
        self.local_plan = local_plan
        self.local_pk_col = local_pk_col
        self.link_source = link_source
        self.local_column = local_column
        self.remote_column = remote_column
        self.remote_source = remote_source
        probe_cost = local_plan.est_rows
        scan_cost = float(len(link_source))
        if link_source.has_index(local_column) and probe_cost <= scan_cost:
            self.strategy = "probe"
            self.est_rows = min(probe_cost, float(len(remote_source)))
        else:
            self.strategy = "scan"
            self.est_rows = min(scan_cost, float(len(remote_source)))

    def _produce(self) -> Iterator[dict[str, Any]]:
        pk_col = self.local_pk_col
        local_pks = {row[pk_col] for row in self.local_plan.rows()}
        remote_pks: set[Any] = set()
        if self.strategy == "probe":
            link = self.link_source
            column = self.remote_column
            for pk in local_pks:
                for link_pk in link.eq_pks(self.local_column, pk):
                    link_row = link.row(link_pk)
                    if link_row is not None:
                        remote_pks.add(link_row[column])
        else:
            for link_row in self.link_source.iter_rows():
                if link_row[self.local_column] in local_pks:
                    remote_pks.add(link_row[self.remote_column])
        remote = self.remote_source
        for pk in sorted(remote_pks):
            row = remote.row(pk)
            if row is not None:
                yield row

    def detail(self) -> str:
        return (f"{self.link_source.name}.{self.local_column}->"
                f"{self.remote_column} {self.strategy}")

    def children(self) -> list[PlanNode]:
        return [self.local_plan]


# -- the planner ------------------------------------------------------------


def _sort_cost(n: float) -> float:
    return n * (log2(n) + 1.0) if n > 1 else n


def build_plan(source: Any, spec: QuerySpec) -> PlanNode:
    """Compile one table pipeline into its cheapest plan tree.

    Enumerates every index-backed access path whose cardinality the
    maintained statistics answer exactly, charges an explicit sort to
    paths that do not already yield the requested order, and keeps the
    winner.  ``source`` is a live :class:`Table` or a
    :class:`TableSnapshot` — both expose the planner duck-type."""
    pk_col = source.schema.primary_key
    order = spec.order
    table_rows = float(len(source))

    # Each candidate: (cost, access_factory, consumed, satisfies_order).
    # `consumed` names the predicate the access path fully answers, so
    # the residual filter skips re-checking it.
    candidates: list[tuple[float, Callable[[], PlanNode],
                           tuple[str, str] | None, bool]] = []

    candidates.append((table_rows, lambda: FullScan(source), None, False))

    for column, value in spec.equals.items():
        if column == pk_col:
            candidates.append((
                1.0,
                lambda v=value: PkLookup(source, v),
                ("eq", column), False,
            ))
        if source.has_index(column):
            cost = float(source.eq_count(column, value))
            candidates.append((
                cost,
                lambda c=column, v=value: IndexEq(source, c, v, "hash"),
                ("eq", column), False,
            ))
        if source.has_sorted_index(column):
            cost = float(source.sorted_index(column).eq_count(value))
            candidates.append((
                cost,
                lambda c=column, v=value: IndexEq(source, c, v, "sorted"),
                ("eq", column), False,
            ))

    for column, bound in spec.ranges.items():
        if not source.has_sorted_index(column):
            continue
        sindex = source.sorted_index(column)
        bounds = sindex.range_bounds(
            bound.low, bound.high,
            include_low=bound.include_low,
            include_high=bound.include_high,
        )
        cost = float(bounds[1] - bounds[0])
        descending = bool(order and order[0] == column and order[1])
        satisfies = bool(order and order[0] == column)
        candidates.append((
            cost,
            lambda c=column, b=bounds, d=descending, lbl=bound.describe():
                IndexRange(source, c, bounds=b, descending=d, label=lbl),
            ("range", column), satisfies,
        ))

    for column, prefix in spec.prefixes.items():
        if not source.has_sorted_index(column):
            continue
        if source.schema.column(column).type is not str:
            continue
        sindex = source.sorted_index(column)
        bounds = sindex.prefix_bounds(prefix)
        cost = float(bounds[1] - bounds[0])
        descending = bool(order and order[0] == column and order[1])
        satisfies = bool(order and order[0] == column)
        candidates.append((
            cost,
            lambda c=column, b=bounds, d=descending, p=prefix:
                IndexRange(source, c, bounds=b, descending=d,
                           label=f"prefix={p!r}"),
            ("prefix", column), satisfies,
        ))

    if order is not None and source.has_sorted_index(order[0]):
        # Order-only scan: touches every row but elides the sort and
        # lets limit/offset stop it early.
        column, descending = order
        sindex = source.sorted_index(column)
        candidates.append((
            table_rows,
            lambda c=column, s=sindex, d=descending:
                IndexRange(source, c, bounds=(0, len(s.entries)),
                           descending=d, with_nones=True,
                           label="order-only"),
            None, True,
        ))

    n_predicates = (len(spec.equals) + len(spec.ranges)
                    + len(spec.prefixes) + len(spec.ins)
                    + len(spec.predicates))

    best = None
    best_total = None
    for cost, factory, consumed, satisfies in candidates:
        residuals = n_predicates - (1 if consumed else 0)
        surviving = cost * (RESIDUAL_SELECTIVITY ** residuals)
        total = cost
        if order is not None and not satisfies:
            total += _sort_cost(surviving)
        elif spec.limit is not None and not residuals:
            # Streaming path with no residual filtering: limit pushdown
            # means only offset+limit rows are touched.
            total = min(total, float(spec.offset + spec.limit))
        if best_total is None or total < best_total:
            best = (factory, consumed, satisfies)
            best_total = total

    assert best is not None
    factory, consumed, satisfies = best
    node = factory()

    equals = dict(spec.equals)
    ranges = dict(spec.ranges)
    prefixes = dict(spec.prefixes)
    if consumed is not None:
        kind, column = consumed
        if kind == "eq":
            equals.pop(column, None)
        elif kind == "range":
            ranges.pop(column, None)
        elif kind == "prefix":
            prefixes.pop(column, None)
    if isinstance(node, PkLookup):
        # The lookup returns the row with that pk; the pk equality needs
        # no re-check.
        equals.pop(pk_col, None)

    if equals or ranges or prefixes or spec.ins or spec.predicates:
        node = Filter(node, equals=equals, ranges=ranges,
                      prefixes=prefixes, ins=list(spec.ins),
                      predicates=list(spec.predicates))

    if order is not None and not satisfies:
        node = Sort(node, order[0], order[1], pk_col)

    if spec.offset or spec.limit is not None:
        node = Slice(node, spec.offset, spec.limit)

    return node


def render_plan(tree: dict[str, Any], indent: int = 0) -> str:
    """Human-readable rendering of :meth:`PlanNode.describe` output —
    one node per line, children indented, est vs actual row counts."""
    pad = "  " * indent
    detail = tree.get("detail") or ""
    actual = tree.get("actual_rows")
    actual_s = "?" if actual is None else str(actual)
    line = (f"{pad}{tree['node']}"
            + (f" {detail}" if detail else "")
            + f"  (est={tree['est_rows']:g} actual={actual_s})")
    lines = [line]
    for child in tree.get("children", ()):
        lines.append(render_plan(child, indent + 1))
    return "\n".join(lines)
