"""Row storage with constraint enforcement and secondary indexes.

Rows are stored as immutable-by-convention dicts keyed by primary key.
Two kinds of secondary index are maintained incrementally on every
write:

* **hash indexes** (``value -> set of pks``) keep equality lookups O(1)
  for the hot paths in CAR-CS (all the many-to-many join traversals
  behind coverage and similarity computations);
* **sorted indexes** (:class:`SortedIndex`, a bisect-maintained
  ``(value, pk)`` list) additionally support range and prefix scans and
  yield rows *in order*, which lets the query planner
  (:mod:`repro.db.plan`) answer ``where_range``/``where_prefix``
  predicates without a full scan and elide explicit sorts.

Both kinds double as the planner's cardinality statistics: bucket sizes
and bisect offsets are exact, incrementally-maintained row-count
estimates, so the cost model never needs a separate ANALYZE pass.

Every table carries a **mutation version**: a monotonic counter bumped on
each successful insert/update/delete.  The analytics cache
(:mod:`repro.core.cache`) keys memoized results on these versions, so a
result is reusable exactly as long as the tables it was derived from are
untouched.  Each mutation additionally appends a :class:`repro.db.Change`
record to the database's bounded change journal, which delta consumers
(the incremental search index) replay to avoid full rebuilds.  Inside a :meth:`repro.db.engine.Database.transaction`, each
mutation also records an **undo closure** in the transaction journal;
rollback replays the closures in reverse, restoring rows, unique and
secondary indexes, the id sequence and the version counters to their
pre-transaction state in O(ops) rather than O(table size).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from operator import itemgetter
from typing import Any, Callable, Iterable, Iterator

from .errors import (
    IntegrityError,
    RowNotFound,
    SchemaError,
    UniqueViolation,
)
from .pager import PagedRows
from .schema import Column, TableSchema

_VALUE = itemgetter(0)


class SortedIndex:
    """A bisect-maintained ordered index over one column.

    Non-``None`` values live in ``entries`` as ``(value, pk)`` tuples
    kept sorted (ties ordered by pk); ``None`` values live in ``nones``
    sorted by pk.  That layout mirrors the engine's canonical sort
    order — value ascending, ``None`` last, pk as the tie-break — so a
    scan over the index *is* the sorted result and the planner can
    elide explicit sorts.

    Every probe (:meth:`eq_count`, :meth:`range_bounds`) is an exact
    cardinality answered by two bisects, which is what the cost model
    in :mod:`repro.db.plan` uses as its row estimates.
    """

    __slots__ = ("entries", "nones")

    def __init__(self) -> None:
        self.entries: list[tuple[Any, Any]] = []
        self.nones: list[Any] = []

    def __len__(self) -> int:
        return len(self.entries) + len(self.nones)

    def add(self, value: Any, pk: Any) -> None:
        if value is None:
            insort(self.nones, pk)
        else:
            insort(self.entries, (value, pk))

    def remove(self, value: Any, pk: Any) -> None:
        if value is None:
            i = bisect_left(self.nones, pk)
            if i < len(self.nones) and self.nones[i] == pk:
                del self.nones[i]
        else:
            i = bisect_left(self.entries, (value, pk))
            if i < len(self.entries) and self.entries[i] == (value, pk):
                del self.entries[i]

    # -- probes (exact, O(log n)) -----------------------------------------

    def eq_pks(self, value: Any) -> list[Any]:
        """Pks whose column equals ``value``, in pk order."""
        if value is None:
            return list(self.nones)
        lo = bisect_left(self.entries, value, key=_VALUE)
        hi = bisect_right(self.entries, value, key=_VALUE)
        return [pk for _, pk in self.entries[lo:hi]]

    def eq_count(self, value: Any) -> int:
        if value is None:
            return len(self.nones)
        lo = bisect_left(self.entries, value, key=_VALUE)
        return bisect_right(self.entries, value, key=_VALUE) - lo

    def range_bounds(
        self, low: Any, high: Any,
        include_low: bool = True, include_high: bool = False,
    ) -> tuple[int, int]:
        """Slice bounds of ``entries`` matching the (half-)open range.
        ``None`` bounds are unbounded on that side; ``None`` values
        never match a range (SQL semantics)."""
        if low is None:
            lo = 0
        elif include_low:
            lo = bisect_left(self.entries, low, key=_VALUE)
        else:
            lo = bisect_right(self.entries, low, key=_VALUE)
        if high is None:
            hi = len(self.entries)
        elif include_high:
            hi = bisect_right(self.entries, high, key=_VALUE)
        else:
            hi = bisect_left(self.entries, high, key=_VALUE)
        return lo, max(lo, hi)

    def prefix_bounds(self, prefix: str) -> tuple[int, int]:
        """Slice bounds of entries whose string value starts with
        ``prefix`` (the empty prefix matches every non-``None`` value)."""
        if not prefix:
            return 0, len(self.entries)
        lo = bisect_left(self.entries, prefix, key=_VALUE)
        hi = bisect_left(self.entries, prefix + "\U0010ffff", key=_VALUE)
        return lo, max(lo, hi)

    def scan(self, lo: int, hi: int, *, descending: bool = False,
             with_nones: bool = False) -> Iterator[Any]:
        """Pks of ``entries[lo:hi]`` in index order.  ``with_nones``
        appends the ``None``-valued pks where the canonical sort puts
        them: last ascending, first descending."""
        if descending:
            if with_nones:
                yield from reversed(self.nones)
            for i in range(hi - 1, lo - 1, -1):
                yield self.entries[i][1]
        else:
            for i in range(lo, hi):
                yield self.entries[i][1]
            if with_nones:
                yield from self.nones


class Table:
    """One table: schema + rows + indexes + mutation version.

    Not constructed directly in application code — use
    :meth:`repro.db.engine.Database.create_table`.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[Any, dict[str, Any]] = {}
        self._next_id = 1
        # unique indexes: constraint columns -> {key tuple: pk}
        self._unique: dict[tuple[str, ...], dict[tuple, Any]] = {
            tuple(group): {} for group in schema.unique
        }
        # secondary hash indexes: column -> {value: set(pk)}
        self._indexes: dict[str, dict[Any, set]] = {}
        # sorted secondary indexes: column -> SortedIndex
        self._sorted: dict[str, SortedIndex] = {}
        # Declared-but-unbuilt indexes (tiered restore): contents build
        # on first probe with a single streaming scan, then maintain
        # incrementally like any built index.
        self._lazy_hash: set[str] = set()
        self._lazy_sorted: set[str] = set()
        # Unique-constraint maps likewise defer on a tiered restore
        # until the first write needs them.
        self._unique_built = True
        # Monotonic mutation counter (rolled back with aborted transactions).
        self._version = 0
        # Owning database, set by Database.create_table; enables transaction
        # journaling and the database-wide version counter.
        self._db: Any = None

    # -- introspection ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def version(self) -> int:
        """Mutation counter: bumped once per committed insert/update/delete."""
        return self._version

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return self.iter_rows()

    def __contains__(self, pk: Any) -> bool:
        return pk in self._rows

    def pks(self) -> list[Any]:
        return list(self._rows.keys())

    # -- indexes ----------------------------------------------------------

    def create_index(self, column: str) -> None:
        """Build (idempotently) a hash index on ``column``."""
        if column in self._indexes or column in self._lazy_hash:
            return
        self.schema.column(column)  # validates existence
        index: dict[Any, set] = {}
        for pk, row in self._rows.items():
            index.setdefault(row[column], set()).add(pk)
        self._indexes[column] = index
        # DDL is transactional (as in PostgreSQL): an index created inside
        # an aborted transaction vanishes.
        self._journal(lambda: self._indexes.pop(column, None))
        # Version-neutral, but durable: the WAL/snapshot layer must know
        # about the index so recovered databases rebuild it.
        if self._db is not None:
            self._db._log_index(self.name, column)

    def create_sorted_index(self, column: str) -> None:
        """Build (idempotently) a sorted index on ``column``.

        Sorted indexes answer range/prefix predicates and yield rows in
        the canonical sort order (value ascending, ``None`` last, pk
        tie-break) — the query planner uses them for
        ``where_range``/``where_prefix`` scans and to elide sorts.
        Like hash indexes they are transactional DDL, journaled through
        the WAL and rebuilt on recovery and replica apply.
        """
        if column in self._sorted or column in self._lazy_sorted:
            return
        self.schema.column(column)  # validates existence
        index = SortedIndex()
        for pk, row in self._rows.items():
            index.add(row[column], pk)
        self._sorted[column] = index
        self._journal(lambda: self._sorted.pop(column, None))
        if self._db is not None:
            self._db._log_index(self.name, column, kind="sorted")

    def has_index(self, column: str) -> bool:
        return column in self._indexes or column in self._lazy_hash

    def has_sorted_index(self, column: str) -> bool:
        return column in self._sorted or column in self._lazy_sorted

    def _hash_index(self, column: str) -> dict[Any, set]:
        """The hash index on ``column``, building a lazily-declared one
        on first probe (one streaming scan through the block cache)."""
        index = self._indexes.get(column)
        if index is None:
            self._lazy_hash.discard(column)
            index = {}
            for pk, row in self._rows.items():
                index.setdefault(row[column], set()).add(pk)
            self._indexes[column] = index
        return index

    def sorted_index(self, column: str) -> SortedIndex:
        sindex = self._sorted.get(column)
        if sindex is None and column in self._lazy_sorted:
            self._lazy_sorted.discard(column)
            sindex = SortedIndex()
            for pk, row in self._rows.items():
                sindex.add(row[column], pk)
            self._sorted[column] = sindex
        if sindex is None:
            raise KeyError(column)
        return sindex

    def _ensure_unique(self) -> None:
        """Materialize deferred unique-constraint maps before a write."""
        if self._unique_built:
            return
        self._unique_built = True
        for group in self._unique:
            rebuilt: dict[tuple, Any] = {}
            for pk, row in self._rows.items():
                rebuilt[self._unique_key(group, row)] = pk
            self._unique[group] = rebuilt

    def index_columns(self) -> list[str]:
        """Declared hash-indexed columns (built or lazy), sorted."""
        return sorted(set(self._indexes) | self._lazy_hash)

    def sorted_index_columns(self) -> list[str]:
        """Declared sorted-indexed columns (built or lazy), sorted."""
        return sorted(set(self._sorted) | self._lazy_sorted)

    def indexes(self) -> dict[str, str]:
        """Declared secondary indexes: column -> "hash" | "sorted" |
        "hash+sorted" (introspection for EXPLAIN and the docs)."""
        out = {c: "hash" for c in self.index_columns()}
        for c in self.sorted_index_columns():
            out[c] = "hash+sorted" if c in out else "sorted"
        return out

    # -- planner accessors (shared duck-type with TableSnapshot) -----------

    def eq_pks(self, column: str, value: Any) -> Iterable[Any]:
        """Pks matching ``column == value`` via the hash index (the
        column must be hash-indexed)."""
        return self._hash_index(column).get(value, ())

    def eq_count(self, column: str, value: Any) -> int:
        return len(self._hash_index(column).get(value, ()))

    def row(self, pk: Any) -> dict[str, Any] | None:
        """The raw stored row (no copy) — planner-internal."""
        return self._rows.get(pk)

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Raw stored rows (no copies) — planner-internal.

        Eager tables snapshot the dict's values so callers may mutate
        mid-iteration; paged tables stream block-by-block from a frozen
        overlay copy (materializing would defeat the tier)."""
        rows = self._rows
        if isinstance(rows, PagedRows):
            return rows.freeze().values()
        return iter(list(rows.values()))

    # -- transaction journal ----------------------------------------------

    def _journal(self, undo: Callable[[], None]) -> None:
        """Record ``undo`` in the active transaction frame, if any."""
        db = self._db
        if db is not None and db._tx_journal:
            db._tx_journal[-1].append(undo)

    def _record_mutation(self, undo_data: Callable[[], None], *,
                         op: str, pk: Any, row: dict[str, Any]) -> None:
        """Bump version counters, log the change, journal the inverse.

        ``row`` is snapshotted into the database change journal (new row
        for insert/update, removed row for delete) so incremental
        consumers can resolve what the mutation touched after the fact.
        """
        prev_version = self._version
        self._version += 1
        db = self._db
        if db is None:
            return
        prev_db_version = db._version
        db._version += 1
        db._log_change(self.name, op, pk, dict(row))
        if db._tx_journal:
            def undo() -> None:
                undo_data()
                self._version = prev_version
                db._version = prev_db_version

            db._tx_journal[-1].append(undo)

    # -- raw storage ops (no checks, no journaling; used by undo) ----------

    def _raw_remove(self, pk: Any, row: dict[str, Any]) -> None:
        """Drop ``pk`` from rows, unique and secondary indexes."""
        del self._rows[pk]
        for group, index in self._unique.items():
            index.pop(self._unique_key(group, row), None)
        for column, index2 in self._indexes.items():
            bucket = index2.get(row[column])
            if bucket is not None:
                bucket.discard(pk)
                if not bucket:
                    del index2[row[column]]
        for column, sindex in self._sorted.items():
            sindex.remove(row[column], pk)

    def _raw_put(self, pk: Any, row: dict[str, Any]) -> None:
        """Re-add ``row`` under ``pk`` to rows, unique and secondary indexes."""
        self._rows[pk] = row
        for group, index in self._unique.items():
            index[self._unique_key(group, row)] = pk
        for column, index2 in self._indexes.items():
            index2.setdefault(row[column], set()).add(pk)
        for column, sindex in self._sorted.items():
            sindex.add(row[column], pk)

    # -- writes -----------------------------------------------------------

    def _complete_row(self, values: dict[str, Any]) -> dict[str, Any]:
        row: dict[str, Any] = {}
        unknown = set(values) - set(self.schema.column_names())
        if unknown:
            raise SchemaError(
                f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
            )
        for col in self.schema.columns:
            if col.name in values:
                row[col.name] = col.validate(values[col.name])
            elif col.name == self.schema.primary_key and self.schema.auto_increment:
                row[col.name] = self._next_id
            elif col.has_default():
                row[col.name] = col.validate(col.resolve_default())
            else:
                row[col.name] = col.validate(None)
        return row

    def _unique_key(self, group: tuple[str, ...], row: dict[str, Any]) -> tuple:
        return tuple(row[c] for c in group)

    def insert(self, **values: Any) -> dict[str, Any]:
        """Insert a row; returns the stored row dict (with assigned pk)."""
        row = self._complete_row(values)
        self._ensure_unique()
        pk = row[self.schema.primary_key]
        if pk in self._rows:
            raise UniqueViolation(
                f"duplicate primary key {pk!r} in table {self.name!r}"
            )
        for group, index in self._unique.items():
            key = self._unique_key(group, row)
            if key in index:
                raise UniqueViolation(
                    f"unique constraint {group} violated in {self.name!r}: {key!r}"
                )
        # All checks passed: commit to storage and indexes.
        prev_next_id = self._next_id
        self._raw_put(pk, row)
        if isinstance(pk, int) and pk >= self._next_id:
            self._next_id = pk + 1

        def undo() -> None:
            self._raw_remove(pk, row)
            self._next_id = prev_next_id

        self._record_mutation(undo, op="insert", pk=pk, row=row)
        return dict(row)

    def update(self, pk: Any, **changes: Any) -> dict[str, Any]:
        """Update columns of the row with primary key ``pk``."""
        if pk not in self._rows:
            raise RowNotFound(f"{self.name!r} has no row with pk {pk!r}")
        if self.schema.primary_key in changes:
            raise IntegrityError("primary key columns cannot be updated")
        self._ensure_unique()
        old = self._rows[pk]
        new = dict(old)
        for name, value in changes.items():
            col = self.schema.column(name)
            new[name] = col.validate(value)
        for group, index in self._unique.items():
            key = self._unique_key(group, new)
            holder = index.get(key)
            if holder is not None and holder != pk:
                raise UniqueViolation(
                    f"unique constraint {group} violated in {self.name!r}: {key!r}"
                )
        for group, index in self._unique.items():
            del index[self._unique_key(group, old)]
            index[self._unique_key(group, new)] = pk
        for column, index2 in self._indexes.items():
            if old[column] != new[column]:
                index2[old[column]].discard(pk)
                if not index2[old[column]]:
                    del index2[old[column]]
                index2.setdefault(new[column], set()).add(pk)
        for column, sindex in self._sorted.items():
            if old[column] != new[column]:
                sindex.remove(old[column], pk)
                sindex.add(new[column], pk)
        self._rows[pk] = new

        def undo() -> None:
            self._raw_remove(pk, new)
            self._raw_put(pk, old)

        self._record_mutation(undo, op="update", pk=pk, row=new)
        return dict(new)

    def delete(self, pk: Any) -> dict[str, Any]:
        """Remove and return the row with primary key ``pk``."""
        if pk not in self._rows:
            raise RowNotFound(f"{self.name!r} has no row with pk {pk!r}")
        row = self._rows[pk]
        self._raw_remove(pk, row)
        # Journal a private copy: the popped dict is handed to the caller,
        # who may mutate it before a rollback replays the undo.
        saved = dict(row)
        self._record_mutation(
            lambda: self._raw_put(pk, saved), op="delete", pk=pk, row=saved,
        )
        return row

    # -- reads ------------------------------------------------------------

    def get(self, pk: Any) -> dict[str, Any]:
        try:
            return dict(self._rows[pk])
        except KeyError:
            raise RowNotFound(f"{self.name!r} has no row with pk {pk!r}") from None

    def get_or_none(self, pk: Any) -> dict[str, Any] | None:
        row = self._rows.get(pk)
        return dict(row) if row is not None else None

    def find(self, **equals: Any) -> list[dict[str, Any]]:
        """All rows matching the conjunction of column=value equalities.

        Uses a hash index for the most selective indexed column when one
        exists, then filters the remainder.
        """
        if not equals:
            return [dict(r) for r in self._rows.values()]
        for name in equals:
            self.schema.column(name)
        indexed = [c for c in equals if self.has_index(c)]
        if indexed:
            # Seed from the smallest index bucket (building any
            # lazily-declared index on first probe).
            seed_col = min(
                indexed,
                key=lambda c: len(self._hash_index(c).get(equals[c], ())),
            )
            pks: Iterable[Any] = self._hash_index(seed_col).get(
                equals[seed_col], set()
            )
            candidates = (self._rows[pk] for pk in pks)
        elif any(self.has_sorted_index(c) for c in equals):
            seed_col = min(
                (c for c in equals if self.has_sorted_index(c)),
                key=lambda c: self.sorted_index(c).eq_count(equals[c]),
            )
            pks = self.sorted_index(seed_col).eq_pks(equals[seed_col])
            candidates = (self._rows[pk] for pk in pks)
        else:
            candidates = iter(self._rows.values())
        out = []
        for row in candidates:
            if all(row[c] == v for c, v in equals.items()):
                out.append(dict(row))
        return out

    def find_one(self, **equals: Any) -> dict[str, Any] | None:
        rows = self.find(**equals)
        return rows[0] if rows else None

    def count(self, **equals: Any) -> int:
        if not equals:
            return len(self._rows)
        return len(self.find(**equals))

    def column_values(self, column: str) -> list[Any]:
        self.schema.column(column)
        return [row[column] for row in self._rows.values()]
