"""In-process relational engine — the storage substrate for CAR-CS.

Replaces the paper's Django + PostgreSQL stack with a dependency-free
relational store: typed schemas, primary/unique/foreign-key constraints,
hash indexes, many-to-many link tables, lazy queries, transactions,
MVCC snapshot reads (:meth:`Database.pinned`) and write-ahead-log
durability (:meth:`Database.open` / ``checkpoint``).
"""

from .engine import Change, Database
from .errors import (
    DatabaseError,
    ForeignKeyError,
    IntegrityError,
    NotNullViolation,
    RecoveryError,
    RowNotFound,
    SchemaError,
    TransactionError,
    UniqueViolation,
)
from .locks import RWLock
from .plan import PlanNode, QuerySpec, RangeBound, build_plan, render_plan
from .query import Query, query
from .relations import ManyToMany
from .schema import Column, ForeignKey, TableSchema
from .snapshot import (
    Snapshot,
    TableSnapshot,
    current_pin,
    database_to_dict,
    restore_database,
)
from .pager import BlockCache, BlockFileWriter, PagedRows
from .table import SortedIndex, Table
from .wal import WalReader, WalWriter, read_wal, truncate_wal

__all__ = [
    "BlockCache",
    "BlockFileWriter",
    "Change",
    "Column",
    "Database",
    "DatabaseError",
    "ForeignKey",
    "ForeignKeyError",
    "IntegrityError",
    "ManyToMany",
    "NotNullViolation",
    "PagedRows",
    "PlanNode",
    "Query",
    "QuerySpec",
    "RWLock",
    "RangeBound",
    "RecoveryError",
    "RowNotFound",
    "SchemaError",
    "Snapshot",
    "SortedIndex",
    "Table",
    "TableSchema",
    "TableSnapshot",
    "TransactionError",
    "UniqueViolation",
    "WalReader",
    "WalWriter",
    "build_plan",
    "current_pin",
    "database_to_dict",
    "query",
    "read_wal",
    "render_plan",
    "restore_database",
    "truncate_wal",
]
