"""In-process relational engine — the storage substrate for CAR-CS.

Replaces the paper's Django + PostgreSQL stack with a dependency-free
relational store: typed schemas, primary/unique/foreign-key constraints,
hash indexes, many-to-many link tables, lazy queries, and transactions.
"""

from .engine import Change, Database
from .errors import (
    DatabaseError,
    ForeignKeyError,
    IntegrityError,
    NotNullViolation,
    RowNotFound,
    SchemaError,
    TransactionError,
    UniqueViolation,
)
from .locks import RWLock
from .query import Query, query
from .relations import ManyToMany
from .schema import Column, ForeignKey, TableSchema
from .table import Table

__all__ = [
    "Change",
    "Column",
    "Database",
    "DatabaseError",
    "ForeignKey",
    "ForeignKeyError",
    "IntegrityError",
    "ManyToMany",
    "NotNullViolation",
    "Query",
    "RWLock",
    "RowNotFound",
    "SchemaError",
    "Table",
    "TableSchema",
    "TransactionError",
    "UniqueViolation",
    "query",
]
