"""Tiered storage: blocked checkpoints and lazy row page-in.

The eager storage model (format-1 ``snapshot.json``) materializes every
row of every table at :meth:`repro.db.engine.Database.open` — fine for
the hand-curated seed, hopeless at the 10^6-material scale the ROADMAP
demands.  This module is the cold tier that fixes it:

* A **blocked checkpoint** (format 2) splits the durable state into a
  small JSON *manifest* (``snapshot.json``: schemas, version counters,
  index declarations, and a per-table *block directory*) plus a sibling
  *rows file* (``rows-<version>.dat``) holding the actual rows as
  independently-readable, CRC-checked JSON blocks sorted by primary
  key.  The manifest is a few kilobytes no matter how large the corpus
  is, so ``Database.open`` returns in O(tables), not O(rows).

* A :class:`PagedRows` mapping stands in for a table's in-memory row
  dict.  Point reads bisect the block directory and page in exactly one
  block; scans stream blocks through a shared :class:`BlockCache` whose
  resident bytes are bounded by a ``CARCS_CACHE_BYTES`` budget (LRU
  eviction, hit/miss/eviction counters).  Writes land in a small
  *overlay* (plus a tombstone set for deletes) exactly like the MVCC
  delta model one layer up — the block tier is immutable between
  checkpoints, which is what makes lock-free readers safe.

* Checkpointing a paged database **streams**: rows flow block-by-block
  from the old tier (merged with the overlay in pk order) into the new
  rows file, so compaction never materializes the table either.  After
  the manifest is atomically replaced the live tables re-point at the
  fresh tier and drop their overlays.

Crash safety mirrors the WAL's by-construction story: the rows file is
written to a temp name, fsynced and renamed *before* the manifest that
references it is atomically replaced, and stale rows files are only
unlinked after the new manifest is durable.  A crash at any point
leaves a manifest whose rows file exists and verifies.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from bisect import bisect_right
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from .errors import RecoveryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Database

#: Block-cache budget in bytes (cost model: the *encoded* size of each
#: resident block, which tracks decoded size closely for JSON rows).
ENV_CACHE_BYTES = "CARCS_CACHE_BYTES"
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024

#: Rows per block in a freshly written blocked checkpoint.
ENV_BLOCK_ROWS = "CARCS_BLOCK_ROWS"
DEFAULT_BLOCK_ROWS = 2048

#: Databases with at most this many total rows keep checkpointing in
#: the eager inline format (format 1) — the tiered machinery only pays
#: for itself on large corpora, and small databases staying format-1
#: keeps every existing durability test byte-for-byte meaningful.
ENV_INLINE_ROWS = "CARCS_SNAPSHOT_INLINE_ROWS"
DEFAULT_INLINE_ROWS = 10_000

#: Prefix of rows files inside a database directory.
ROWS_PREFIX = "rows-"


def env_cache_bytes() -> int:
    try:
        budget = int(os.environ.get(ENV_CACHE_BYTES, DEFAULT_CACHE_BYTES))
    except ValueError:
        return DEFAULT_CACHE_BYTES
    return budget if budget > 0 else DEFAULT_CACHE_BYTES


def env_block_rows() -> int:
    try:
        rows = int(os.environ.get(ENV_BLOCK_ROWS, DEFAULT_BLOCK_ROWS))
    except ValueError:
        return DEFAULT_BLOCK_ROWS
    return rows if rows > 0 else DEFAULT_BLOCK_ROWS


def env_inline_rows() -> int:
    try:
        return int(os.environ.get(ENV_INLINE_ROWS, DEFAULT_INLINE_ROWS))
    except ValueError:
        return DEFAULT_INLINE_ROWS


class BlockCache:
    """Byte-budgeted LRU over decoded row blocks, shared database-wide.

    Keys are ``(tier generation, table, block index)`` so re-pointing a
    table at a freshly checkpointed tier can never alias a stale block.
    All accounting is under one lock; the critical sections are tiny
    (dict moves), so lock-free readers paging concurrently contend only
    for nanoseconds, not for I/O.
    """

    def __init__(self, budget_bytes: int | None = None) -> None:
        self.budget = budget_bytes if budget_bytes else env_cache_bytes()
        self._lock = threading.Lock()
        self._blocks: OrderedDict[tuple, tuple[dict, int]] = OrderedDict()
        self.resident_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.loaded_bytes = 0

    def get(self, key: tuple) -> dict | None:
        with self._lock:
            entry = self._blocks.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._blocks.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: tuple, block: dict, cost: int) -> None:
        with self._lock:
            old = self._blocks.pop(key, None)
            if old is not None:
                self.resident_bytes -= old[1]
            self._blocks[key] = (block, cost)
            self.resident_bytes += cost
            self.loaded_bytes += cost
            while self.resident_bytes > self.budget and len(self._blocks) > 1:
                _, (_, evicted_cost) = self._blocks.popitem(last=False)
                self.resident_bytes -= evicted_cost
                self.evictions += 1

    def drop_generation(self, generation: int) -> None:
        """Free every block of a superseded tier immediately."""
        with self._lock:
            stale = [k for k in self._blocks if k[0] == generation]
            for key in stale:
                _, cost = self._blocks.pop(key)
                self.resident_bytes -= cost

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "budget_bytes": self.budget,
                "resident_bytes": self.resident_bytes,
                "resident_blocks": len(self._blocks),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "loaded_bytes": self.loaded_bytes,
            }


class BlockStore:
    """One open rows file: reads, CRC-checks and caches blocks.

    Unlinking the file while the store is open is safe on POSIX (the
    open descriptor keeps the data readable), which is what lets a
    checkpoint retire the old tier while pinned snapshots still read
    from it.
    """

    _generations = 0
    _gen_lock = threading.Lock()

    def __init__(self, path: str | Path, cache: BlockCache) -> None:
        self.path = Path(path)
        self.cache = cache
        self._fh = self.path.open("rb")
        self._lock = threading.Lock()
        with BlockStore._gen_lock:
            BlockStore._generations += 1
            self.generation = BlockStore._generations

    def read_block(self, table: str, index: int,
                   meta: dict[str, Any], pk_col: str) -> dict[Any, dict]:
        """The decoded ``pk -> row`` mapping of one block (cache-aware).

        A past-deadline request aborts here instead of paying for cold
        I/O it can no longer use (see :mod:`repro.obs.trace`).
        """
        key = (self.generation, table, index)
        block = self.cache.get(key)
        if block is not None:
            return block
        from repro.obs import trace as _trace

        _trace.check_deadline(f"page-in {table}[{index}]")
        with self._lock:
            self._fh.seek(meta["o"])
            payload = self._fh.read(meta["l"])
        if len(payload) != meta["l"] or zlib.crc32(payload) != meta["c"]:
            raise RecoveryError(
                f"rows file {self.path.name}: block {index} of table "
                f"{table!r} is corrupt (crc mismatch)"
            )
        rows = json.loads(payload.decode("utf-8"))
        block = {row[pk_col]: row for row in rows}
        self.cache.put(key, block, meta["l"])
        return block

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass


class PagedRows:
    """A dict-shaped row mapping over an immutable block tier + overlay.

    Duck-types the parts of the ``dict`` protocol the engine uses
    (``[]``, ``get``, ``in``, ``len``, iteration, ``keys`` / ``values``
    / ``items``) so :class:`repro.db.table.Table` and
    :class:`repro.db.snapshot.TableSnapshot` operate on it unchanged.
    Mutations never touch the tier: inserts/updates land in ``_overlay``,
    deletes in ``_tombstones``; iteration merges the two.  ``freeze()``
    is the O(overlay) path-copy that MVCC snapshot capture uses.
    """

    __slots__ = ("name", "pk_col", "blocks", "store", "_lows",
                 "_overlay", "_tombstones", "_new", "_count")

    def __init__(self, name: str, pk_col: str,
                 blocks: list[dict[str, Any]], store: BlockStore,
                 overlay: dict | None = None,
                 tombstones: set | None = None,
                 new: set | None = None,
                 count: int | None = None) -> None:
        self.name = name
        self.pk_col = pk_col
        self.blocks = blocks
        self.store = store
        self._lows = [b["lo"] for b in blocks]
        self._overlay = overlay if overlay is not None else {}
        self._tombstones = tombstones if tombstones is not None else set()
        # Overlay pks known absent from the block tier (lets iteration
        # append genuinely new rows without probing blocks per key).
        self._new = new if new is not None else set()
        if count is None:
            count = sum(b["n"] for b in blocks)
        self._count = count

    # -- block tier --------------------------------------------------------

    def _block(self, index: int) -> dict[Any, dict]:
        return self.store.read_block(
            self.name, index, self.blocks[index], self.pk_col
        )

    def _base_get(self, pk: Any) -> dict | None:
        if not self.blocks:
            return None
        try:
            index = bisect_right(self._lows, pk) - 1
        except TypeError:
            # A pk of a foreign type (str probe against an int-keyed
            # tier) can never be present.
            return None
        if index < 0:
            return None
        meta = self.blocks[index]
        if pk > meta["hi"]:
            return None
        return self._block(index).get(pk)

    # -- mapping protocol --------------------------------------------------

    def __getitem__(self, pk: Any) -> dict:
        row = self._overlay.get(pk)
        if row is not None:
            return row
        if pk in self._tombstones:
            raise KeyError(pk)
        row = self._base_get(pk)
        if row is None:
            raise KeyError(pk)
        return row

    def get(self, pk: Any, default: Any = None) -> Any:
        try:
            return self[pk]
        except KeyError:
            return default

    def __contains__(self, pk: Any) -> bool:
        return self.get(pk) is not None

    def __len__(self) -> int:
        return self._count

    def __setitem__(self, pk: Any, row: dict) -> None:
        if pk in self._overlay:
            self._overlay[pk] = row
            return
        if pk in self._tombstones:
            # Re-insert over a deleted tier row.
            self._tombstones.discard(pk)
            self._overlay[pk] = row
            self._count += 1
            return
        in_base = self._base_get(pk) is not None
        self._overlay[pk] = row
        if not in_base:
            self._new.add(pk)
            self._count += 1

    def __delitem__(self, pk: Any) -> None:
        if pk in self._overlay:
            del self._overlay[pk]
            if pk in self._new:
                self._new.discard(pk)
            else:
                self._tombstones.add(pk)
            self._count -= 1
            return
        if pk not in self._tombstones and self._base_get(pk) is not None:
            self._tombstones.add(pk)
            self._count -= 1
            return
        raise KeyError(pk)

    def items(self) -> Iterator[tuple[Any, dict]]:
        overlay, tombstones = self._overlay, self._tombstones
        for index in range(len(self.blocks)):
            for pk, row in self._block(index).items():
                if pk in tombstones:
                    continue
                ov = overlay.get(pk)
                yield pk, (ov if ov is not None else row)
        for pk in list(overlay):
            if pk in self._new:
                yield pk, overlay[pk]

    def keys(self) -> Iterator[Any]:
        return (pk for pk, _ in self.items())

    def values(self) -> Iterator[dict]:
        return (row for _, row in self.items())

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def iter_sorted_items(self) -> Iterator[tuple[Any, dict]]:
        """Merged (pk, row) stream in ascending pk order — the
        streaming checkpoint writer's input.  Blocks are pk-sorted and
        disjoint by construction; the overlay's genuinely-new pks are
        merged in, and updated pks replace their tier row in place."""
        overlay, tombstones = self._overlay, self._tombstones
        pending = iter(sorted(self._new))
        nxt = next(pending, _DONE)
        for index in range(len(self.blocks)):
            for pk, row in self._block(index).items():
                while nxt is not _DONE and nxt < pk:
                    yield nxt, overlay[nxt]
                    nxt = next(pending, _DONE)
                if pk in tombstones:
                    continue
                ov = overlay.get(pk)
                yield pk, (ov if ov is not None else row)
        while nxt is not _DONE:
            yield nxt, overlay[nxt]
            nxt = next(pending, _DONE)

    # -- snapshot support --------------------------------------------------

    def freeze(self) -> "PagedRows":
        """An O(overlay) immutable-by-convention copy sharing the tier."""
        return PagedRows(
            self.name, self.pk_col, self.blocks, self.store,
            dict(self._overlay), set(self._tombstones), set(self._new),
            self._count,
        )

    def with_delta(self, delta: dict[Any, Any], tombstone: Any) -> "PagedRows":
        """A new frozen view with one MVCC delta folded in (snapshot
        consolidation: never materializes the tier)."""
        merged = self.freeze()
        for pk, row in delta.items():
            if row is tombstone:
                try:
                    del merged[pk]
                except KeyError:
                    pass
            else:
                merged[pk] = row
        return merged

    @property
    def overlay_rows(self) -> int:
        return len(self._overlay)

    @property
    def tombstone_rows(self) -> int:
        return len(self._tombstones)


_DONE = object()


# -- blocked checkpoint writer ----------------------------------------------


class BlockFileWriter:
    """Streams tables into a rows file + manifest (the format-2 writer).

    Shared by :meth:`Database.checkpoint` (compacting a live engine) and
    the scale-corpus synthesizer in :mod:`repro.corpus.generator`
    (writing 10^6 materials straight to the cold tier without ever
    holding them in memory).
    """

    def __init__(self, directory: str | Path, *, version: int,
                 name: str = "carcs", block_rows: int | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.version = version
        self.name = name
        self.block_rows = block_rows if block_rows else env_block_rows()
        self.rows_name = f"{ROWS_PREFIX}{version}.dat"
        self._tmp = self.directory / (self.rows_name + ".tmp")
        self._fh = self._tmp.open("wb")
        self._offset = 0
        self._tables: list[dict[str, Any]] = []

    def add_table(
        self,
        schema_dict: dict[str, Any],
        sorted_items: Iterable[tuple[Any, dict]],
        *,
        next_id: int | None = None,
        version: int | None = None,
        indexes: Iterable[str] = (),
        sorted_indexes: Iterable[str] = (),
    ) -> int:
        """Write one table's rows (ascending pk) as blocks; returns the
        number of rows written.

        ``next_id``/``version`` default from the streamed row count
        (``total + 1`` / ``total``) — the right values for a synthesized
        table whose size is only known once its generator is drained.
        """
        blocks: list[dict[str, Any]] = []
        chunk: list[dict] = []
        lo = hi = None
        total = 0

        def flush() -> None:
            nonlocal chunk, lo, hi
            if not chunk:
                return
            payload = json.dumps(
                chunk, separators=(",", ":")
            ).encode("utf-8")
            self._fh.write(payload)
            blocks.append({
                "o": self._offset, "l": len(payload),
                "c": zlib.crc32(payload), "n": len(chunk),
                "lo": lo, "hi": hi,
            })
            self._offset += len(payload)
            chunk = []
            lo = hi = None

        for pk, row in sorted_items:
            if lo is None:
                lo = pk
            hi = pk
            chunk.append(row)
            total += 1
            if len(chunk) >= self.block_rows:
                flush()
        flush()
        self._tables.append({
            "schema": schema_dict,
            "next_id": total + 1 if next_id is None else next_id,
            "version": total if version is None else version,
            "indexes": sorted(indexes),
            "sorted_indexes": sorted(sorted_indexes),
            "rows": total,
            "blocks": blocks,
        })
        return total

    def finish(self) -> dict[str, Any]:
        """Fsync + rename the rows file, atomically replace the manifest,
        then unlink superseded rows files.  Returns the manifest dict."""
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        rows_path = self.directory / self.rows_name
        os.replace(self._tmp, rows_path)
        manifest = {
            "format": 2,
            "name": self.name,
            "version": self.version,
            "rows_file": self.rows_name,
            "tables": self._tables,
        }
        target = self.directory / "snapshot.json"
        tmp = self.directory / "snapshot.json.tmp"
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(manifest, fh, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        for stale in self.directory.glob(f"{ROWS_PREFIX}*.dat"):
            if stale.name != self.rows_name:
                try:
                    stale.unlink()
                except OSError:  # pragma: no cover - platform quirk
                    pass
        return manifest

    def abort(self) -> None:
        """Discard the partially written rows file (error paths)."""
        try:
            self._fh.close()
        finally:
            if self._tmp.exists():
                self._tmp.unlink()


def write_blocked_checkpoint(db: "Database", directory: str | Path,
                             *, block_rows: int | None = None) -> Path:
    """Stream the whole engine state into a format-2 checkpoint.

    Must run under the database's write lock (the engine's
    ``checkpoint`` holds it).  Tables serialize in creation order (the
    FK-dependency order recovery replays in); each table's rows stream
    in pk order via :meth:`PagedRows.iter_sorted_items` when paged, or a
    sort of the in-memory dict otherwise.
    """
    from .snapshot import schema_to_dict

    writer = BlockFileWriter(
        directory, version=db._version, name=db.name, block_rows=block_rows,
    )
    try:
        for table in db._tables.values():
            rows = table._rows
            if isinstance(rows, PagedRows):
                items: Iterable[tuple[Any, dict]] = rows.iter_sorted_items()
            else:
                items = sorted(rows.items())
            writer.add_table(
                schema_to_dict(table.schema), items,
                next_id=table._next_id, version=table._version,
                indexes=table.index_columns(),
                sorted_indexes=table.sorted_index_columns(),
            )
        manifest = writer.finish()
    except BaseException:
        writer.abort()
        raise
    _repoint_tables(db, manifest, Path(directory))
    return Path(directory) / "snapshot.json"


def _repoint_tables(db: "Database", manifest: dict[str, Any],
                    directory: Path) -> None:
    """Re-base every live table on the tier just written.

    Overlays fold into the new blocks, so the in-memory footprint of a
    long-running writer resets at each checkpoint.  Snapshots pinned by
    concurrent readers keep the old store alive (and readable, even
    unlinked) until they are garbage collected.
    """
    cache = db._block_cache
    if cache is None:
        cache = db._block_cache = BlockCache()
    old_store = db._pager
    store = BlockStore(directory / manifest["rows_file"], cache)
    for entry in manifest["tables"]:
        table = db._tables.get(entry["schema"]["name"])
        if table is None:  # pragma: no cover - tables never vanish here
            continue
        table._rows = PagedRows(
            table.name, table.schema.primary_key, entry["blocks"], store,
        )
    db._pager = store
    if old_store is not None:
        cache.drop_generation(old_store.generation)


# -- blocked checkpoint reader ----------------------------------------------


def restore_blocked(data: dict[str, Any], directory: str | Path,
                    **db_kwargs: Any) -> "Database":
    """Rebuild a :class:`Database` whose tables page in lazily.

    The inverse of :func:`write_blocked_checkpoint`: tables come up with
    their block directories only — no rows, no index contents.  Declared
    hash/sorted indexes and unique constraint maps build on first use
    (a single streaming scan through the block cache), so a database
    that is opened and queried narrowly never pays for what it does not
    touch.
    """
    from .engine import Database
    from .snapshot import schema_from_dict
    from .table import Table

    if data.get("format") != 2:
        raise ValueError(
            f"unsupported blocked snapshot format {data.get('format')!r}"
        )
    directory = Path(directory)
    rows_path = directory / data["rows_file"]
    if not rows_path.exists():
        raise RecoveryError(
            f"manifest references missing rows file {data['rows_file']!r}"
        )
    db = Database(data.get("name", "carcs"), **db_kwargs)
    cache = BlockCache()
    store = BlockStore(rows_path, cache)
    tables = {}
    for entry in data["tables"]:
        schema = schema_from_dict(entry["schema"])
        table = Table(schema)
        table._db = db
        table._rows = PagedRows(
            schema.name, schema.primary_key, entry["blocks"], store,
        )
        table._next_id = entry.get("next_id", 1)
        table._version = entry.get("version", 0)
        table._lazy_hash.update(entry.get("indexes", ()))
        table._lazy_sorted.update(entry.get("sorted_indexes", ()))
        # Unique maps rebuild on the first write to the table.
        table._unique_built = not schema.unique
        tables[schema.name] = table
    db._tables = tables
    db._version = data.get("version", 0)
    db.name = data.get("name", db.name)
    db._block_cache = cache
    db._pager = store
    return db


def storage_stats(db: "Database") -> dict[str, int]:
    """Tier + cache counters (empty mapping on a fully eager database)."""
    if db._block_cache is None:
        return {}
    out = {f"block_cache_{k}": v for k, v in db._block_cache.stats().items()}
    overlay = tombstones = blocks = 0
    for table in db._tables.values():
        rows = table._rows
        if isinstance(rows, PagedRows):
            overlay += rows.overlay_rows
            tombstones += rows.tombstone_rows
            blocks += len(rows.blocks)
    out["tier_blocks"] = blocks
    out["tier_overlay_rows"] = overlay
    out["tier_tombstone_rows"] = tombstones
    return out
