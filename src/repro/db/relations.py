"""Many-to-many relations over link tables.

The CAR-CS schema associates "tags, items in the classification, dataset
used, and authors ... with an assignment using a many-to-many relationship"
(paper, Section III-B).  :class:`ManyToMany` wraps the link-table idiom:
it creates the table with composite uniqueness, cascading deletes from both
endpoints, and indexed traversal in both directions.
"""

from __future__ import annotations

from typing import Any

from .engine import Database
from .errors import UniqueViolation
from .schema import Column, ForeignKey, TableSchema


class ManyToMany:
    """A bidirectional many-to-many relation between two tables.

    Example::

        links = ManyToMany(db, "material_tags", "materials", "tags")
        links.add(material_id, tag_id)
        links.right_of(material_id)   # -> [tag_id, ...]
        links.left_of(tag_id)         # -> [material_id, ...]
    """

    def __init__(
        self,
        db: Database,
        name: str,
        left_table: str,
        right_table: str,
        *,
        left_column: str | None = None,
        right_column: str | None = None,
        extra_columns: tuple[Column, ...] = (),
    ) -> None:
        self.db = db
        self.name = name
        self.left_column = left_column or f"{left_table}_id"
        self.right_column = right_column or f"{right_table}_id"
        schema = TableSchema(
            name=name,
            columns=(
                Column("id", int),
                Column(self.left_column, int),
                Column(self.right_column, int),
                *extra_columns,
            ),
            unique=((self.left_column, self.right_column),),
            foreign_keys=(
                ForeignKey(self.left_column, left_table, on_delete="cascade"),
                ForeignKey(self.right_column, right_table, on_delete="cascade"),
            ),
        )
        # Reattaching to a restored/recovered database finds the link
        # table already present; creating is the fresh-schema path.
        table = db._tables.get(name)
        if table is None:
            table = db.create_table(schema)
        table.create_index(self.left_column)
        table.create_index(self.right_column)

    @property
    def table(self):
        """The link table — pin-aware, so reads inside a pinned snapshot
        scope resolve against that snapshot, not live state."""
        return self.db.table(self.name)

    # -- writes ---------------------------------------------------------------

    def add(self, left_id: int, right_id: int, **extra: Any) -> dict[str, Any]:
        """Link the pair; idempotent (re-adding returns the existing link)."""
        try:
            return self.db.insert(
                self.name,
                **{self.left_column: left_id, self.right_column: right_id},
                **extra,
            )
        except UniqueViolation:
            existing = self.table.find_one(
                **{self.left_column: left_id, self.right_column: right_id}
            )
            assert existing is not None
            return existing

    def remove(self, left_id: int, right_id: int) -> bool:
        """Unlink the pair; returns whether a link existed."""
        row = self.table.find_one(
            **{self.left_column: left_id, self.right_column: right_id}
        )
        if row is None:
            return False
        self.db.delete(self.name, row["id"])
        return True

    def clear_left(self, left_id: int) -> int:
        """Remove every link of ``left_id``; returns how many were removed."""
        rows = self.table.find(**{self.left_column: left_id})
        for row in rows:
            self.db.delete(self.name, row["id"])
        return len(rows)

    # -- reads ------------------------------------------------------------------

    def has(self, left_id: int, right_id: int) -> bool:
        return (
            self.table.find_one(
                **{self.left_column: left_id, self.right_column: right_id}
            )
            is not None
        )

    def right_of(self, left_id: int) -> list[int]:
        return [
            row[self.right_column]
            for row in self.table.find(**{self.left_column: left_id})
        ]

    def left_of(self, right_id: int) -> list[int]:
        return [
            row[self.left_column]
            for row in self.table.find(**{self.right_column: right_id})
        ]

    def links_of(self, left_id: int) -> list[dict[str, Any]]:
        """Full link rows (including extra columns) for ``left_id``."""
        return self.table.find(**{self.left_column: left_id})

    def pairs(self) -> list[tuple[int, int]]:
        return [
            (row[self.left_column], row[self.right_column]) for row in self.table
        ]

    def __len__(self) -> int:
        return len(self.table)
