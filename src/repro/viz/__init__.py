"""Figure rendering substrate (replaces the prototype's D3 front end)."""

from . import graph_render, tree_render
from .color import group_color, intensity_char, intensity_color

__all__ = [
    "graph_render",
    "group_color",
    "intensity_char",
    "intensity_color",
    "tree_render",
]
