"""Headless model of the Figure 1b classification tree widget.

"The mapping of a material to a classification ontology is done using a
tree list ... Nodes of the tree can be selected to indicate that the
particular topic is covered by the material.  The mappings that are
selected can be viewed at the bottom of the material description.
Entries can be searched for by entering a word or phrase that becomes
highlighted in the classification." (Section IV-A.)

This is that widget as a pure state machine — expansion, selection, and
search-highlight state over an :class:`~repro.core.ontology.Ontology` —
with a text renderer for terminals and tests.  A GUI front end would
subscribe to it; the curation examples drive it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classification import ClassificationSet
from repro.core.ontology import NodeKind, Ontology


@dataclass
class VisibleRow:
    key: str
    label: str
    depth: int
    expanded: bool
    expandable: bool
    selected: bool
    highlighted: bool


class TreeListWidget:
    """Expand/collapse + select + search state over one ontology."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self._expanded: set[str] = {ontology.root.key}
        self._selected: set[str] = set()
        self._highlighted: set[str] = set()
        self._search_phrase = ""

    # -- expansion ---------------------------------------------------------

    def expand(self, key: str) -> None:
        self.ontology.node(key)  # raises on unknown key
        self._expanded.add(key)

    def collapse(self, key: str) -> None:
        if key == self.ontology.root.key:
            raise ValueError("the root row cannot be collapsed")
        self._expanded.discard(key)

    def toggle(self, key: str) -> bool:
        """Flip expansion; returns the new state."""
        if key in self._expanded:
            self.collapse(key)
            return False
        self.expand(key)
        return True

    def is_expanded(self, key: str) -> bool:
        return key in self._expanded

    def expand_to(self, key: str) -> None:
        """Expand every ancestor so ``key`` becomes visible."""
        for ancestor in self.ontology.ancestors(key):
            self._expanded.add(ancestor.key)

    def collapse_all(self) -> None:
        self._expanded = {self.ontology.root.key}

    # -- selection ----------------------------------------------------------

    def select(self, key: str) -> None:
        node = self.ontology.node(key)
        if node.kind is NodeKind.ROOT:
            raise ValueError("the root is not a classification entry")
        self._selected.add(key)

    def deselect(self, key: str) -> None:
        self._selected.discard(key)

    def toggle_selection(self, key: str) -> bool:
        if key in self._selected:
            self.deselect(key)
            return False
        self.select(key)
        return True

    def is_selected(self, key: str) -> bool:
        return key in self._selected

    def selection(self) -> frozenset[str]:
        return frozenset(self._selected)

    def load_classification(self, cs: ClassificationSet) -> None:
        """Initialize selection from a stored classification (editing an
        existing material) and reveal the selected entries."""
        self._selected = {
            str(item.key)
            for item in cs.items()
            if item.ontology == self.ontology.name
        }
        for key in self._selected:
            self.expand_to(key)

    def to_classification(self) -> ClassificationSet:
        """The widget's current selection as a ClassificationSet — "the
        mappings that are selected" shown under the material."""
        cs = ClassificationSet()
        for key in sorted(self._selected):
            cs.add(self.ontology.name, key)
        return cs

    # -- search ----------------------------------------------------------------

    def search(self, phrase: str) -> int:
        """Highlight entries matching ``phrase`` and expand paths to them;
        returns the number of hits.  Empty phrase clears the highlight."""
        self._search_phrase = phrase.strip()
        self._highlighted = set()
        if not self._search_phrase:
            return 0
        for node in self.ontology.search(self._search_phrase):
            self._highlighted.add(node.key)
            self.expand_to(node.key)
        return len(self._highlighted)

    def highlighted(self) -> frozenset[str]:
        return frozenset(self._highlighted)

    # -- view --------------------------------------------------------------------

    def visible_rows(self) -> list[VisibleRow]:
        """The rows a renderer would draw: children of expanded nodes only,
        in tree order, root excluded."""
        rows: list[VisibleRow] = []

        def walk(key: str, depth: int) -> None:
            node = self.ontology.node(key)
            for child_key in node.children:
                child = self.ontology.node(child_key)
                rows.append(
                    VisibleRow(
                        key=child.key,
                        label=child.label,
                        depth=depth,
                        expanded=child.key in self._expanded,
                        expandable=bool(child.children),
                        selected=child.key in self._selected,
                        highlighted=child.key in self._highlighted,
                    )
                )
                if child.key in self._expanded:
                    walk(child.key, depth + 1)

        walk(self.ontology.root.key, 0)
        return rows

    def render_text(self, *, width: int = 78) -> str:
        """Terminal rendering: [x] selected, > collapsed, v expanded,
        * search highlight."""
        lines = []
        for row in self.visible_rows():
            arrow = (" " if not row.expandable
                     else ("v" if row.expanded else ">"))
            box = "[x]" if row.selected else "[ ]"
            mark = "*" if row.highlighted else " "
            indent = "  " * row.depth
            label = row.label
            budget = width - len(indent) - 8
            if len(label) > budget > 4:
                label = label[: budget - 1] + "…"
            lines.append(f"{indent}{arrow} {box}{mark}{label}")
        return "\n".join(lines)
