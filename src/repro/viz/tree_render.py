"""Coverage-tree rendering (the Figure 2 panels) as text and SVG.

The paper's prototype draws each classification "as a tree where the root
is the name of the ontology.  First level nodes are tagged with the 2 or
3 letter code ... color intensity of the node is proportional to the
number of material that matches that entry" (Figure 2 caption).  The SVG
renderer lays the pruned coverage tree out radially (a tidy-tree variant
of D3's layout); the text renderer produces the same structure for
terminals and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.core.coverage import CoverageNode

from .color import intensity_char, intensity_color


def _max_count(root: CoverageNode) -> int:
    best = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node.depth >= 1:
            best = max(best, node.count)
        stack.extend(node.children)
    return best


def render_text(
    root: CoverageNode, *, max_depth: int | None = 3, width: int = 72
) -> str:
    """Indented text tree with shade glyphs proportional to counts."""
    top = _max_count(root)
    lines = [f"{root.label}  ({root.count} materials)"]

    def walk(node: CoverageNode) -> None:
        if max_depth is not None and node.depth > max_depth:
            return
        indent = "  " * node.depth
        glyph = intensity_char(node.count, top)
        tag = f"[{node.code}] " if node.code else ""
        label = node.label
        budget = width - len(indent) - len(tag) - 8
        if len(label) > budget > 4:
            label = label[: budget - 1] + "…"
        lines.append(f"{indent}{glyph} {tag}{label} ({node.count})")
        for child in node.children:
            walk(child)

    for child in root.children:
        walk(child)
    return "\n".join(lines)


def _assign_angles(root: CoverageNode) -> dict[int, tuple[float, float]]:
    """Leaf-weighted angular spans per node id, for the radial layout."""
    spans: dict[int, tuple[float, float]] = {}

    def leaf_count(node: CoverageNode) -> int:
        if not node.children:
            return 1
        return sum(leaf_count(c) for c in node.children)

    def assign(node: CoverageNode, start: float, end: float) -> None:
        spans[id(node)] = (start, end)
        if not node.children:
            return
        total = sum(leaf_count(c) for c in node.children)
        cursor = start
        for child in node.children:
            fraction = leaf_count(child) / total
            child_end = cursor + (end - start) * fraction
            assign(child, cursor, child_end)
            cursor = child_end

    assign(root, 0.0, 2.0 * math.pi)
    return spans


def render_svg(
    root: CoverageNode,
    *,
    size: int = 720,
    ring: float = 80.0,
    title: str | None = None,
) -> str:
    """Radial tidy-tree SVG of a pruned coverage tree.

    Nodes are circles colored by the Figure 2 intensity ramp; first-level
    nodes carry their area code as a label.
    """
    top = _max_count(root)
    spans = _assign_angles(root)
    cx = cy = size / 2.0

    def position(node: CoverageNode) -> tuple[float, float]:
        start, end = spans[id(node)]
        angle = (start + end) / 2.0
        radius = node.depth * ring
        return (cx + radius * math.cos(angle), cy + radius * math.sin(angle))

    edges: list[str] = []
    circles: list[str] = []
    labels: list[str] = []

    def walk(node: CoverageNode, parent_xy: tuple[float, float] | None) -> None:
        xy = position(node)
        if parent_xy is not None:
            edges.append(
                f'<line x1="{parent_xy[0]:.1f}" y1="{parent_xy[1]:.1f}" '
                f'x2="{xy[0]:.1f}" y2="{xy[1]:.1f}" '
                f'stroke="#cccccc" stroke-width="1"/>'
            )
        fill = intensity_color(node.depth, node.count, top)
        r = max(3.0, 14.0 - 3.0 * node.depth)
        stroke = "#888888" if fill == "none" else "#444444"
        escaped = (
            node.label.replace("&", "&amp;").replace("<", "&lt;")
            .replace('"', "&quot;")
        )
        circles.append(
            f'<circle cx="{xy[0]:.1f}" cy="{xy[1]:.1f}" r="{r:.1f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="0.8">'
            f"<title>{escaped} ({node.count})</title></circle>"
        )
        if node.depth == 1 and node.code:
            labels.append(
                f'<text x="{xy[0]:.1f}" y="{xy[1] - 16:.1f}" '
                f'font-size="11" text-anchor="middle" '
                f'font-family="sans-serif">{node.code}</text>'
            )
        for child in node.children:
            walk(child, xy)

    walk(root, None)

    header = ""
    if title:
        escaped_title = title.replace("&", "&amp;").replace("<", "&lt;")
        header = (
            f'<text x="{cx:.1f}" y="18" font-size="14" text-anchor="middle" '
            f'font-family="sans-serif">{escaped_title}</text>'
        )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">'
        f"{header}{''.join(edges)}{''.join(circles)}{''.join(labels)}</svg>"
    )


def iter_nodes(root: CoverageNode) -> Iterator[CoverageNode]:
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)
