"""Force-directed graph rendering (the Figure 3 panel).

A from-scratch Fruchterman–Reingold layout, fully vectorised with NumPy
(the all-pairs repulsion is one broadcasted distance computation per
iteration, per the HPC guide's vectorization rule), plus an SVG emitter
matching the paper's encoding: blue circles for Nifty, red for Peachy,
edges between materials sharing enough classification items.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from .color import group_color


def fruchterman_reingold(
    graph: nx.Graph,
    *,
    iterations: int = 150,
    size: float = 1.0,
    seed: int = 7,
) -> dict[object, tuple[float, float]]:
    """Compute a 2D force-directed layout.

    Returns ``node -> (x, y)`` with coordinates in ``[0, size]``.
    Deterministic for a given seed.  Isolated nodes drift to the border
    ring rather than overlapping the connected core.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n == 0:
        return {}
    index = {node: i for i, node in enumerate(nodes)}
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0.0, size, size=(n, 2))

    k = size * math.sqrt(1.0 / n)  # ideal pairwise distance
    # Adjacency as an (n, n) boolean matrix for vectorised attraction.
    adj = np.zeros((n, n), dtype=bool)
    for u, v in graph.edges():
        i, j = index[u], index[v]
        adj[i, j] = adj[j, i] = True

    temperature = size / 10.0
    cooling = temperature / (iterations + 1)

    for _ in range(iterations):
        delta = pos[:, None, :] - pos[None, :, :]          # (n, n, 2)
        dist = np.linalg.norm(delta, axis=-1)              # (n, n)
        np.fill_diagonal(dist, np.inf)
        dist = np.maximum(dist, 1e-9)
        # Repulsion: k^2 / d, for every pair.
        repulse = (k * k) / dist                           # (n, n)
        disp = np.einsum("ijk,ij->ik", delta / dist[:, :, None], repulse)
        # Attraction: d^2 / k along edges only.
        attract = np.where(adj, dist * dist / k, 0.0)
        disp -= np.einsum("ijk,ij->ik", delta / dist[:, :, None], attract)
        # Limit displacement to the current temperature and step.
        length = np.linalg.norm(disp, axis=1, keepdims=True)
        length = np.maximum(length, 1e-9)
        pos += disp / length * np.minimum(length, temperature)
        np.clip(pos, 0.0, size, out=pos)
        temperature = max(temperature - cooling, 1e-4)

    return {node: (float(pos[i, 0]), float(pos[i, 1])) for node, i in index.items()}


def render_svg(
    graph: nx.Graph,
    *,
    size: int = 720,
    node_radius: float = 6.0,
    layout: dict | None = None,
    title: str | None = None,
) -> str:
    """Figure 3 style SVG: group-colored circles joined by shared-item
    edges, with titles as hover tooltips."""
    pos = layout if layout is not None else fruchterman_reingold(graph)
    margin = 4 * node_radius
    scale = size - 2 * margin

    def xy(node) -> tuple[float, float]:
        x, y = pos[node]
        return (margin + x * scale, margin + y * scale)

    parts: list[str] = []
    for u, v, data in graph.edges(data=True):
        x1, y1 = xy(u)
        x2, y2 = xy(v)
        width = 0.8 + 0.4 * float(data.get("shared", 1))
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="#999999" stroke-width="{width:.1f}" stroke-opacity="0.7"/>'
        )
    for node, data in graph.nodes(data=True):
        x, y = xy(node)
        fill = group_color(data.get("group", ""))
        label = str(data.get("title", node))
        escaped = (
            label.replace("&", "&amp;").replace("<", "&lt;").replace('"', "&quot;")
        )
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{node_radius}" '
            f'fill="{fill}" stroke="#333333" stroke-width="0.8">'
            f"<title>{escaped}</title></circle>"
        )
    header = ""
    if title:
        escaped_title = title.replace("&", "&amp;").replace("<", "&lt;")
        header = (
            f'<text x="{size / 2:.0f}" y="18" font-size="14" '
            f'text-anchor="middle" font-family="sans-serif">{escaped_title}</text>'
        )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">{header}'
        f"{''.join(parts)}</svg>"
    )


def render_text(graph: nx.Graph) -> str:
    """Terminal rendering: per-group node lists and the edge list."""
    groups: dict[str, list[str]] = {}
    for node, data in graph.nodes(data=True):
        groups.setdefault(data.get("group", "?"), []).append(
            f"{data.get('title', node)}{' *' if graph.degree(node) else ''}"
        )
    lines = []
    for group in sorted(groups):
        lines.append(f"{group} ({len(groups[group])} nodes, * = connected):")
        for title in sorted(groups[group]):
            lines.append(f"  {title}")
    lines.append(f"edges ({graph.number_of_edges()}):")
    for u, v, data in sorted(
        graph.edges(data=True), key=lambda e: (-e[2].get("shared", 0), str(e[0]))
    ):
        tu = graph.nodes[u].get("title", u)
        tv = graph.nodes[v].get("title", v)
        lines.append(f"  {tu}  <->  {tv}  (shared={data.get('shared')})")
    return "\n".join(lines)
