"""Color ramps for the coverage trees of Figure 2.

"The color intensity of the node is proportional to the number of
material that matches that entry of the ontology.  The color palette is
different for zeroth, first, and more-than-first level nodes.  Ontology
entry absent from the materials are transparent." (Figure 2 caption.)
"""

from __future__ import annotations

from dataclasses import dataclass

#: Base hues per depth bucket, as (r, g, b) at full intensity.
_DEPTH_BASES: tuple[tuple[int, int, int], ...] = (
    (66, 66, 66),     # depth 0: the ontology root — neutral gray
    (31, 119, 180),   # depth 1: areas — blue
    (44, 160, 44),    # depth >= 2: units/topics/outcomes — green
)

TRANSPARENT = "none"


@dataclass(frozen=True)
class Rgb:
    r: int
    g: int
    b: int

    def hex(self) -> str:
        return f"#{self.r:02x}{self.g:02x}{self.b:02x}"


def _lerp(a: int, b: int, t: float) -> int:
    return int(round(a + (b - a) * t))


def intensity_color(depth: int, count: int, max_count: int) -> str:
    """Fill color for a coverage node.

    Zero-count entries are transparent; otherwise the depth bucket's hue
    is interpolated from a near-white tint (count 1) to the full base
    color (count == max_count).
    """
    if count <= 0:
        return TRANSPARENT
    base = _DEPTH_BASES[min(depth, len(_DEPTH_BASES) - 1)]
    top = max(max_count, 1)
    t = min(count / top, 1.0)
    # start at a pale tint rather than pure white so count=1 is visible
    start = (235, 238, 242)
    return Rgb(
        _lerp(start[0], base[0], t),
        _lerp(start[1], base[1], t),
        _lerp(start[2], base[2], t),
    ).hex()


def intensity_char(count: int, max_count: int) -> str:
    """Unicode shade character for text renderings of the same ramp."""
    if count <= 0:
        return "·"
    ramp = "░▒▓█"
    top = max(max_count, 1)
    index = min(int(count / top * len(ramp)), len(ramp) - 1)
    return ramp[index]


def group_color(group: str) -> str:
    """Node colors for the Figure 3 similarity graph: "Blue circles
    represent Nifty assignments while red circles represent Peachy
    assignments"."""
    palette = {
        "nifty": "#1f77b4",   # blue
        "peachy": "#d62728",  # red
        "left": "#1f77b4",
        "right": "#d62728",
    }
    return palette.get(group, "#7f7f7f")
