"""Self-contained HTML report: the prototype's read-only pages.

The paper's system serves read-only views at
``cs-materials.herokuapp.com/coverage`` and ``.../similarity``; this
module renders the equivalent as one dependency-free HTML file embedding
the six Figure 2 SVG panels, the Figure 3 SVG, and the summary tables —
suitable for artifacts/ or attaching to a report.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.core.coverage import compute_coverage
from repro.core.repository import Repository
from repro.core.similarity import isolated_materials, similarity_graph

from . import graph_render, tree_render

_STYLE = """
body { font-family: sans-serif; margin: 2em auto; max-width: 1100px;
       color: #222; }
h1 { border-bottom: 2px solid #1f77b4; padding-bottom: 0.3em; }
h2 { margin-top: 2em; color: #1f77b4; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #ccc; padding: 0.3em 0.8em; text-align: left; }
th { background: #f0f4f8; }
.panel { display: inline-block; margin: 1em; vertical-align: top; }
.panel svg { border: 1px solid #eee; }
figcaption { font-size: 0.9em; color: #555; text-align: center; }
"""


def _coverage_table(repo: Repository, collections: list[str],
                    ontology_name: str) -> str:
    onto = repo.ontology(ontology_name)
    reports = {
        c: compute_coverage(repo, ontology_name, collection=c)
        for c in collections
    }
    rows = []
    header = "".join(f"<th>{html.escape(c)}</th>" for c in collections)
    rows.append(f"<tr><th>{html.escape(ontology_name)} area</th>{header}</tr>")
    for area in onto.areas():
        counts = [reports[c].count(area.key) for c in collections]
        if not any(counts):
            continue
        cells = "".join(f"<td>{n}</td>" for n in counts)
        rows.append(
            f"<tr><td>{html.escape(area.label)}</td>{cells}</tr>"
        )
    return "<table>" + "".join(rows) + "</table>"


def render_report(
    repo: Repository,
    *,
    collections: list[str] | None = None,
    ontologies: list[str] | None = None,
    similarity_pair: tuple[str, str] = ("nifty", "peachy"),
    threshold: int = 2,
    title: str = "CAR-CS coverage and similarity report",
) -> str:
    """Full HTML report as a string."""
    collections = collections or repo.collections()
    ontologies = ontologies or sorted(repo.ontologies)

    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>{repo.material_count()} materials in "
        f"{len(collections)} collections; ontologies: "
        f"{', '.join(html.escape(o) for o in ontologies)}.</p>",
    ]

    for onto_name in ontologies:
        parts.append(f"<h2>Coverage against {html.escape(onto_name)}</h2>")
        parts.append(_coverage_table(repo, collections, onto_name))
        for collection in collections:
            coverage = compute_coverage(
                repo, onto_name, collection=collection
            )
            if not coverage.rollup_counts:
                parts.append(
                    f"<p><em>{html.escape(collection)}: no coverage "
                    f"(empty panel).</em></p>"
                )
                continue
            tree = coverage.tree(repo.ontology(onto_name))
            svg = tree_render.render_svg(tree, size=460)
            parts.append(
                "<figure class='panel'>"
                + svg
                + f"<figcaption>{html.escape(collection)} / "
                  f"{html.escape(onto_name)}</figcaption></figure>"
            )

    left, right = similarity_pair
    left_ids = sorted(
        r["id"] for r in repo.db.table("materials").find(collection=left)
    )
    right_ids = sorted(
        r["id"] for r in repo.db.table("materials").find(collection=right)
    )
    if left_ids and right_ids:
        graph = similarity_graph(
            repo, left_ids, right_ids, threshold=threshold,
            left_group=left, right_group=right,
        )
        parts.append(
            f"<h2>Similarity: {html.escape(left)} (blue) vs "
            f"{html.escape(right)} (red), &ge; {threshold} shared items</h2>"
        )
        parts.append(
            f"<p>{graph.number_of_edges()} edges; "
            f"{len(isolated_materials(graph, left))}/{len(left_ids)} "
            f"{html.escape(left)} and "
            f"{len(isolated_materials(graph, right))}/{len(right_ids)} "
            f"{html.escape(right)} materials have no counterpart.</p>"
        )
        parts.append(graph_render.render_svg(graph, size=640))

    parts.append("</body></html>")
    return "".join(parts)


def write_report(repo: Repository, path: str | Path, **kwargs) -> Path:
    """Render and write the report; returns the path."""
    path = Path(path)
    path.write_text(render_report(repo, **kwargs))
    return path
