"""Tabular and graph exports of the analyses.

CAR-CS data feeds downstream tools — spreadsheets for curriculum
committees (CSV) and graph tools like Gephi for the similarity structure
(GraphML via networkx).  All writers are pure functions over the analysis
results; nothing re-queries the repository.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import networkx as nx

from repro.core.coverage import CoverageReport
from repro.core.ontology import Ontology


def coverage_to_csv(
    report: CoverageReport,
    ontology: Ontology,
    *,
    include_uncovered: bool = False,
) -> str:
    """Coverage as CSV: key, path, kind, direct count, rollup count."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["key", "path", "kind", "direct", "rollup"])
    for node in ontology.nodes():
        rollup = report.rollup_counts.get(node.key, 0)
        if rollup == 0 and not include_uncovered:
            continue
        writer.writerow([
            node.key,
            ontology.path_string(node.key),
            node.kind.value,
            report.direct_counts.get(node.key, 0),
            rollup,
        ])
    return buffer.getvalue()


def write_coverage_csv(
    report: CoverageReport, ontology: Ontology, path: str | Path, **kwargs
) -> Path:
    path = Path(path)
    path.write_text(coverage_to_csv(report, ontology, **kwargs))
    return path


def similarity_to_graphml(graph: nx.Graph) -> str:
    """Similarity graph as GraphML (Gephi/yEd-loadable).

    Tuple attributes (``shared_keys``) are joined into a ``|``-separated
    string: GraphML supports scalar attribute types only.
    """
    export = nx.Graph()
    for node, data in graph.nodes(data=True):
        export.add_node(
            node,
            title=str(data.get("title", node)),
            group=str(data.get("group", "")),
        )
    for u, v, data in graph.edges(data=True):
        export.add_edge(
            u, v,
            shared=int(data.get("shared", 0)),
            shared_keys="|".join(data.get("shared_keys", ())),
        )
    buffer = io.BytesIO()
    nx.write_graphml(export, buffer)
    return buffer.getvalue().decode("utf-8")


def write_similarity_graphml(graph: nx.Graph, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(similarity_to_graphml(graph))
    return path


def materials_to_csv(repo, collection: str | None = None) -> str:
    """Material metadata as CSV (one row per material)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "id", "title", "kind", "collection", "year", "course_level",
        "languages", "datasets", "n_classifications",
    ])
    for material in repo.materials(collection):
        writer.writerow([
            material.id,
            material.title,
            material.kind.value,
            material.collection,
            material.year if material.year is not None else "",
            material.course_level.value if material.course_level else "",
            "|".join(material.languages),
            "|".join(material.datasets),
            len(repo.classification_of(material.id)),
        ])
    return buffer.getvalue()
