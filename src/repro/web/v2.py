"""The ``/api/v2`` surface: resources, cursors, and async jobs.

v1 grew handler-by-handler around the paper's Heroku prototype and
shows it: materials live under ``/assignments``, classification edits
are verbs on that path, recommendation is ``POST /recommend``, and
every list paginates by raw ``offset`` arithmetic.  v2 is the
resource-oriented redesign:

* **Nouns, uniformly.**  ``/materials`` (not ``/assignments``),
  ``/materials/<id>/classifications`` as a proper sub-resource,
  ``POST /recommendations``.
* **Opaque cursors.**  Every list answers the envelope
  ``{"items", "total", "limit", "next_cursor"}``; clients hand
  ``next_cursor`` back as ``?cursor=`` instead of computing offsets.
  ``next_cursor`` is ``null`` on the last page.
* **Async work as a resource.**  ``POST /jobs/classify`` answers
  ``202 Accepted`` with a ``Location`` to poll and a ``Retry-After``
  hint; the durable queue behind it survives crashes via the WAL.
  Machine classifications land as *pending suggestions* reviewed
  through ``/suggestions/<id>/accept`` — never directly into the
  classification tables.
* **Creation answers ``Location``.**  ``POST /materials`` (201) points
  at the new resource, as does the 202 above.

v1 keeps serving as a byte-identical compatibility shim carrying an
RFC 8594 ``Sunset`` header; see ``docs/api.md`` for the migration
table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.material import CourseLevel, Material, MaterialKind
from repro.db.errors import RowNotFound
from repro.jobs import QueueFull, unclassified_material_ids
from repro.obs import trace as _trace

from .http import HttpError, Request, Response, cursor_page, json_response
from .middleware import backpressure_response

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from .api import CarCsApi

#: Advisory poll interval (seconds) stamped on 202s and unfinished jobs.
JOB_RETRY_AFTER = 1

#: Job fields exposed over the API (lease bookkeeping stays internal).
_JOB_FIELDS = (
    "id", "kind", "status", "attempts", "max_attempts",
    "payload", "result", "error", "enqueued_at", "updated_at",
)


def _job_payload(job: dict[str, Any], prefix: str) -> dict[str, Any]:
    out = {field: job.get(field) for field in _JOB_FIELDS}
    out["url"] = f"{prefix}/jobs/{job['id']}"
    # The enqueuing request's trace id (from the persisted traceparent),
    # so a job links straight to its fleet trace view.
    context = _trace.parse_traceparent(job.get("trace_context"))
    out["trace_id"] = context[0] if context is not None else None
    return out


def _suggestion_payload(row: dict[str, Any]) -> dict[str, Any]:
    return {
        "id": row["id"],
        "material_id": row["material_id"],
        "key": row["ontology_key"],
        "ontology": row.get("ontology"),
        "action": row["action"],
        "status": row["status"],
        "confidence": row.get("confidence"),
        "origin": row.get("origin", "human"),
    }


def register_v2(api: "CarCsApi") -> None:
    """Mount the v2 resource routes on ``api.router``.

    Reuses the api object's helpers (``_material_or_404`` etc.) so v1
    and v2 share one behaviour for parsing and lookups while the
    *shapes* diverge.  The ops endpoints (healthz/metrics/traces/
    replication) are mounted by ``CarCsApi._register`` since their
    closures live there.
    """
    from .api import API_V2_PREFIX, _material_payload

    router = api.router
    repo = api.repo
    prefix = API_V2_PREFIX

    def route(method: str, path: str):
        return router.route(method, prefix + path)

    # ------------------------------------------------------------ index

    @route("GET", "")
    def v2_index(request: Request) -> Response:
        return json_response({
            "service": "carcs",
            "api_version": "v2",
            "routes": [
                {"method": r.method, "path": r.pattern}
                for r in router.routes()
                if not r.deprecated and r.pattern.startswith(prefix)
            ],
        })

    # -------------------------------------------------------- materials

    @route("GET", "/materials")
    def list_materials(request: Request) -> Response:
        text, filters = api._parse_search_request(request)
        hits = api._search.search(
            text, filters, limit=max(repo.material_count(), 1),
        )
        payload = cursor_page([
            {"id": h.material.id, "title": h.material.title,
             "kind": h.material.kind.value,
             "collection": h.material.collection, "score": h.score}
            for h in hits
        ], request, default_limit=100)
        return json_response(payload)

    @route("POST", "/materials")
    def create_material(request: Request) -> Response:
        body = request.json()
        if "title" not in body:
            raise HttpError(400, "'title' is required")
        try:
            material = Material(
                title=body["title"],
                description=body.get("description", ""),
                kind=MaterialKind(body.get("kind", "assignment")),
                authors=tuple(body.get("authors", ())),
                url=body.get("url", ""),
                course_level=(
                    CourseLevel(body["course_level"])
                    if body.get("course_level") else None
                ),
                languages=tuple(body.get("languages", ())),
                datasets=tuple(body.get("datasets", ())),
                tags=tuple(body.get("tags", ())),
                collection=body.get("collection", ""),
                year=body.get("year"),
            )
        except ValueError as exc:
            raise HttpError(400, str(exc))
        cs = api._parse_classification(body.get("classifications", []))
        try:
            stored = repo.add_material(material, cs)
        except (ValueError, KeyError) as exc:
            raise HttpError(400, str(exc))
        response = json_response(
            _material_payload(repo, stored), status=201,
        )
        response.headers["location"] = f"{prefix}/materials/{stored.id}"
        return response

    @route("GET", "/materials/<int:id>")
    def get_material(request: Request) -> Response:
        material = api._material_or_404(request)
        return json_response(_material_payload(repo, material))

    @route("PATCH", "/materials/<int:id>")
    def update_material(request: Request) -> Response:
        material = api._material_or_404(request)
        body = request.json()
        allowed = {"title", "description", "url", "collection", "year"}
        changes = {k: v for k, v in body.items() if k in allowed}
        if not changes:
            raise HttpError(
                400, f"nothing to update; allowed: {sorted(allowed)}"
            )
        assert material.id is not None
        updated = repo.update_material(material.id, **changes)
        return json_response(_material_payload(repo, updated))

    @route("DELETE", "/materials/<int:id>")
    def delete_material(request: Request) -> Response:
        material = api._material_or_404(request)
        assert material.id is not None
        repo.delete_material(material.id)
        return json_response({"deleted": material.id})

    # --------------------------------- classifications as a sub-resource

    @route("GET", "/materials/<int:id>/classifications")
    def list_classifications(request: Request) -> Response:
        material = api._material_or_404(request)
        assert material.id is not None
        cs = repo.classification_of(material.id)
        return json_response(cursor_page([
            {"ontology": item.ontology, "key": item.key,
             "bloom": item.bloom.value if item.bloom else None}
            for item in cs.items()
        ], request, default_limit=100))

    @route("POST", "/materials/<int:id>/classifications")
    def add_classification(request: Request) -> Response:
        material = api._material_or_404(request)
        body = request.json()
        cs = api._parse_classification([body])
        assert material.id is not None
        for item in cs.items():
            try:
                repo.classify(
                    material.id, item.ontology, item.key, bloom=item.bloom
                )
            except KeyError as exc:
                raise HttpError(400, str(exc))
        return json_response(
            _material_payload(repo, repo.get_material(material.id)),
            status=201,
        )

    @route("DELETE", "/materials/<int:id>/classifications")
    def remove_classification(request: Request) -> Response:
        material = api._material_or_404(request)
        key = request.query_one("key")
        if not key:
            raise HttpError(400, "query parameter 'key' is required")
        assert material.id is not None
        removed = repo.declassify(material.id, key)
        if not removed:
            raise HttpError(404, f"material not classified under {key!r}")
        return json_response({"removed": key})

    # ------------------------------------------- derived material views

    @route("GET", "/materials/<int:id>/similar")
    def similar_materials(request: Request) -> Response:
        material = api._material_or_404(request)
        assert material.id is not None
        try:
            hits = api._search.similar_to(
                material.id, limit=request.query_int("limit", 10) or 10,
            )
        except KeyError as exc:
            raise HttpError(404, str(exc))
        return json_response({
            "material": material.title,
            "similar": [
                {"id": h.material.id, "title": h.material.title,
                 "collection": h.material.collection, "score": h.score}
                for h in hits
            ],
        })

    @route("GET", "/materials/<int:id>/variants")
    def material_variants(request: Request) -> Response:
        from repro.analysis.variants import find_variants

        material = api._material_or_404(request)
        assert material.id is not None
        hits = find_variants(
            repo, material.id,
            min_overlap=request.query_int("min_overlap", 2) or 2,
            limit=request.query_int("limit", 10) or 10,
        )
        return json_response({
            "material": material.title,
            "variants": [
                {
                    "id": h.material.id,
                    "title": h.material.title,
                    "overlap": h.overlap,
                    "jaccard": h.jaccard,
                    "differing_facets": list(h.differing_facets),
                }
                for h in hits
            ],
        })

    @route("GET", "/materials/<int:id>/lint")
    def material_lint(request: Request) -> Response:
        from repro.analysis.consistency import lint_material

        material = api._material_or_404(request)
        assert material.id is not None
        findings = lint_material(repo, material.id)
        return json_response({
            "material": material.title,
            "findings": [
                {"rule": f.rule, "detail": f.detail} for f in findings
            ],
        })

    # -------------------------------------------------------- ontologies

    @route("GET", "/ontologies")
    def list_ontologies(request: Request) -> Response:
        return json_response(cursor_page([
            {"name": name, "entries": len(onto),
             "areas": [a.label for a in onto.areas()]}
            for name, onto in sorted(repo.ontologies.items())
        ], request, default_limit=50))

    @route("GET", "/ontologies/<name>/entries")
    def ontology_entries(request: Request) -> Response:
        name = request.params["name"]
        try:
            onto = repo.ontology(name)
        except KeyError as exc:
            raise HttpError(404, str(exc))
        phrase = request.query_one("search", "") or ""
        if phrase:
            nodes = onto.search(phrase, limit=len(onto))
        else:
            nodes = onto.nodes()
        return json_response(cursor_page([
            {"key": n.key, "label": n.label, "kind": n.kind.value,
             "path": onto.path_string(n.key)}
            for n in nodes
        ], request, default_limit=50))

    # --------------------------------------------------------- analytics

    @route("GET", "/search")
    def search(request: Request) -> Response:
        text, filters = api._parse_search_request(request)
        hits = api._search.search(
            text, filters, limit=max(repo.material_count(), 1),
        )
        payload = cursor_page([
            {"id": h.material.id, "title": h.material.title,
             "kind": h.material.kind.value,
             "collection": h.material.collection, "score": h.score}
            for h in hits
        ], request, default_limit=20)
        payload["mode"] = api._search.mode
        return json_response(payload)

    @route("GET", "/coverage")
    def coverage(request: Request) -> Response:
        collection = request.query_one("collection")
        ontology = request.query_one("ontology")
        if not collection or not ontology:
            raise HttpError(400, "'collection' and 'ontology' are required")
        try:
            onto = repo.ontology(ontology)
        except KeyError as exc:
            raise HttpError(404, str(exc))
        api._collection_ids(collection)  # 404 on unknown collection
        report = repo.coverage(ontology, collection=collection)
        return json_response({
            "collection": collection,
            "ontology": ontology,
            "n_materials": report.n_materials,
            "areas": [
                {"code": area.code, "label": area.label, "count": count}
                for area, count in report.area_ranking(onto)
            ],
            "entries_touched": len(report.rollup_counts),
        })

    @route("GET", "/similarity")
    def similarity(request: Request) -> Response:
        left = request.query_one("left")
        right = request.query_one("right")
        if not left or not right:
            raise HttpError(
                400, "'left' and 'right' collections are required"
            )
        threshold = request.query_int("threshold", 2) or 2
        graph = repo.similarity(
            api._collection_ids(left),
            api._collection_ids(right),
            threshold=threshold,
            left_group=left,
            right_group=right,
        )
        return json_response({
            "threshold": threshold,
            "nodes": [
                {"id": n, "group": d["group"], "title": d["title"],
                 "degree": graph.degree(n)}
                for n, d in graph.nodes(data=True)
            ],
            "edges": [
                {"left": u, "right": v, "shared": d["shared"],
                 "shared_keys": list(d["shared_keys"])}
                for u, v, d in graph.edges(data=True)
            ],
        })

    @route("GET", "/gaps")
    def gaps(request: Request) -> Response:
        from repro.core.gaps import find_gaps

        reference = request.query_one("reference")
        candidate = request.query_one("candidate")
        ontology = request.query_one("ontology", "CS13") or "CS13"
        if not reference or not candidate:
            raise HttpError(400, "'reference' and 'candidate' are required")
        try:
            onto = repo.ontology(ontology)
        except KeyError as exc:
            raise HttpError(404, str(exc))
        api._collection_ids(reference)
        api._collection_ids(candidate)
        ref = repo.coverage(ontology, collection=reference)
        cand = repo.coverage(ontology, collection=candidate)
        report = find_gaps(
            onto, ref, cand,
            reference_name=reference, candidate_name=candidate,
        )
        return json_response({
            "ontology": ontology,
            "alignment": report.alignment,
            "missing_in_candidate": [
                {"key": e.key, "path": e.path,
                 "reference_count": e.reference_count}
                for e in report.top_development_targets(20)
            ],
            "unique_to_candidate": [
                {"key": e.key, "path": e.path,
                 "candidate_count": e.candidate_count}
                for e in report.unique_to_candidate[:20]
            ],
        })

    @route("GET", "/plan")
    def plan(request: Request) -> Response:
        from repro.analysis.planner import core_targets, plan_course
        from repro.core.ontology import Tier

        ontology = request.query_one("ontology", "PDC12") or "PDC12"
        try:
            onto = repo.ontology(ontology)
        except KeyError as exc:
            raise HttpError(404, str(exc))
        tiers = (Tier.CORE, Tier.CORE1)
        max_materials = request.query_int("max_materials")
        course = plan_course(
            repo, ontology, core_targets(onto, tiers),
            max_materials=max_materials,
        )
        return json_response({
            "ontology": ontology,
            "coverage_ratio": course.coverage_ratio,
            "picks": [
                {"id": p.material_id, "title": p.title,
                 "newly_covered": list(p.newly_covered)}
                for p in course.picks
            ],
            "uncovered": sorted(course.uncovered),
        })

    @route("GET", "/stats")
    def stats(request: Request) -> Response:
        return json_response(repo.stats())

    @route("POST", "/recommendations")
    def recommendations(request: Request) -> Response:
        body = request.json()
        text = body.get("text", "")
        selected = body.get("selected", [])
        if not text and not selected:
            raise HttpError(400, "'text' or 'selected' is required")
        recs = repo.recommend(text, selected, top=body.get("top", 10))
        return json_response({
            "suggestions": [
                {"key": r.key, "score": r.score, "source": r.source}
                for r in recs
            ]
        })

    # --------------------------------------------------- jobs (async work)

    @route("POST", "/jobs/classify")
    def enqueue_classify(request: Request) -> Response:
        body = request.json() if request.body is not None else {}
        payload: dict[str, Any] = {}
        if body.get("material_ids") is not None:
            ids = body["material_ids"]
            if (not isinstance(ids, list)
                    or not all(isinstance(i, int) for i in ids)):
                raise HttpError(400, "'material_ids' must be a list of ints")
            payload["material_ids"] = ids
        if body.get("collection") is not None:
            payload["collection"] = str(body["collection"])
        if body.get("ontologies") is not None:
            payload["ontologies"] = [str(o) for o in body["ontologies"]]
        if body.get("top") is not None:
            payload["top"] = int(body["top"])
        try:
            job = api.queue.enqueue(
                "classify", payload,
                idempotency_key=body.get("idempotency_key"),
            )
        except QueueFull as exc:
            return backpressure_response(
                429, str(exc), request.request_id,
                retry_after=JOB_RETRY_AFTER, metrics=api.metrics,
                reason="queue-full",
            )
        pending = unclassified_material_ids(
            repo, collection=payload.get("collection"),
        )
        targets = payload.get("material_ids", pending)
        response = json_response({
            "job": _job_payload(job, prefix),
            "targets": len(targets),
        }, status=202)
        response.headers["location"] = f"{prefix}/jobs/{job['id']}"
        response.headers["retry-after"] = str(JOB_RETRY_AFTER)
        return response

    @route("GET", "/jobs")
    def list_jobs(request: Request) -> Response:
        status = request.query_one("status")
        jobs = api.queue.jobs(status)
        return json_response(cursor_page(
            [_job_payload(j, prefix) for j in jobs],
            request, default_limit=50,
        ))

    @route("GET", "/jobs/<int:id>")
    def get_job(request: Request) -> Response:
        job = api.queue.get(request.params["id"])
        if job is None:
            raise HttpError(404, f"no job with id {request.params['id']}")
        response = json_response(_job_payload(job, prefix))
        if job["status"] in ("queued", "leased"):
            # Still running: tell pollers when to come back.
            response.headers["retry-after"] = str(JOB_RETRY_AFTER)
        return response

    # ------------------------------------------- suggestions (review queue)

    @route("GET", "/suggestions")
    def list_suggestions(request: Request) -> Response:
        rows = repo.suggestions(
            status=request.query_one("status"),
            material_id=request.query_int("material_id"),
            origin=request.query_one("origin"),
        )
        return json_response(cursor_page(
            [_suggestion_payload(r) for r in rows],
            request, default_limit=50,
        ))

    @route("GET", "/suggestions/<int:id>")
    def get_suggestion(request: Request) -> Response:
        sid = request.params["id"]
        rows = [r for r in repo.suggestions() if r["id"] == sid]
        if not rows:
            raise HttpError(404, f"no suggestion with id {sid}")
        return json_response(_suggestion_payload(rows[0]))

    def _review_one(sid: int, approve: bool) -> str:
        """Apply one review; raises HttpError with the right status."""
        try:
            if approve:
                status = repo.accept_suggestion(sid)
            else:
                status = repo.reject_suggestion(sid)
        except RowNotFound:
            raise HttpError(404, f"no suggestion with id {sid}")
        except ValueError as exc:
            # "suggestion already reviewed" — the review is not
            # repeatable, so a replayed accept is a conflict, not a 400.
            raise HttpError(409, str(exc))
        return status.value

    @route("POST", "/suggestions/<int:id>/accept")
    def accept_suggestion(request: Request) -> Response:
        sid = request.params["id"]
        return json_response({"id": sid, "status": _review_one(sid, True)})

    @route("POST", "/suggestions/<int:id>/reject")
    def reject_suggestion(request: Request) -> Response:
        sid = request.params["id"]
        return json_response({"id": sid, "status": _review_one(sid, False)})

    def _review_batch(request: Request, approve: bool) -> Response:
        body = request.json()
        ids = body.get("ids")
        if (not isinstance(ids, list)
                or not all(isinstance(i, int) for i in ids)):
            raise HttpError(400, "'ids' must be a list of ints")
        done: list[int] = []
        failed: list[dict[str, Any]] = []
        for sid in ids:
            try:
                _review_one(sid, approve)
            except HttpError as exc:
                failed.append({"id": sid, "error": exc.message})
            else:
                done.append(sid)
        key = "accepted" if approve else "rejected"
        return json_response({key: done, "failed": failed})

    @route("POST", "/suggestions/accept")
    def accept_suggestions(request: Request) -> Response:
        return _review_batch(request, True)

    @route("POST", "/suggestions/reject")
    def reject_suggestions(request: Request) -> Response:
        return _review_batch(request, False)
