"""In-process test client for the CAR-CS API.

Plays the role of the jQuery front end's asynchronous calls: build a
:class:`~repro.web.http.Request`, dispatch it through the application,
return the :class:`~repro.web.http.Response` — no network involved.

Pass ``root="/api/v1"`` to pin the client to the versioned surface;
error responses expose the uniform envelope via ``response.error``
(``{"code", "message", "request_id"}``).
"""

from __future__ import annotations

from typing import Any, Callable

from .http import Request, Response


class Client:
    """Convenience wrapper over an application callable.

    ``root`` is prefixed onto every path-absolute URL, so
    ``Client(app, root="/api/v1").get("/stats")`` requests
    ``/api/v1/stats``.
    """

    def __init__(self, app: Callable[[Request], Response],
                 root: str = "") -> None:
        self.app = app
        self.root = root.rstrip("/")

    def request(
        self, method: str, url: str, body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> Response:
        if self.root and url.startswith("/"):
            url = self.root + url
        return self.app(Request.build(method, url, body=body, headers=headers))

    def get(self, url: str, headers: dict[str, str] | None = None) -> Response:
        return self.request("GET", url, headers=headers)

    def post(self, url: str, body: Any = None,
             headers: dict[str, str] | None = None) -> Response:
        return self.request("POST", url, body=body, headers=headers)

    def patch(self, url: str, body: Any = None,
              headers: dict[str, str] | None = None) -> Response:
        return self.request("PATCH", url, body=body, headers=headers)

    def delete(self, url: str, headers: dict[str, str] | None = None) -> Response:
        return self.request("DELETE", url, headers=headers)
