"""The front tier: one entry point over a primary and N read replicas.

:class:`FrontTier` is itself an application callable (``(Request) ->
Response``) so it serves through the same :class:`~repro.web.server.
ApiServer` adapter as a single node.  It routes by method:

* **Writes** (POST/PUT/PATCH/DELETE) forward to the primary.  A primary
  transport failure answers ``503`` with ``Retry-After`` — while reads
  keep serving from the replicas.
* **Reads** fan out round-robin across healthy replicas.  A replica that
  fails at the transport level is **evicted** from the rotation and
  probed via its ``/api/v1/replication`` status after a cooldown;
  it is re-admitted once it reports connected with bounded lag.

**Session guarantees.**  Clients that send an ``x-carcs-session``
header get read-your-writes and monotonic reads across the fleet: the
front tier records the highest ``x-carcs-version`` each session has
observed (its *version floor*), and a replica response below the floor
is discarded in favour of the next replica, falling back to the
primary — which is always at least as new as any version the session
saw.  Sessionless requests take the fastest replica answer with no
guarantee beyond each node's own snapshot consistency.

Every response is stamped with ``x-carcs-backend`` and
``x-carcs-served-by`` naming the node that served it (the latter also
covers answers the router authors itself).  ``GET /api/v1/fleet``
answers from the front tier itself with per-backend health, eviction
state and session-table size.

**Fleet tracing.**  The router opens a root span per routed request
(adopting an inbound ``traceparent`` when one arrives) and injects its
active span's context into every proxied hop, so router →
primary/replica spans share one trace id.  ``GET /api/v2/traces/<id>``
fans out to every fleet member, collects each process's stored
segments for that id and stitches them into one tree
(:func:`repro.obs.trace.stitch_trace`) with per-hop process labels —
the fleet-wide view ``carcs trace --id`` renders.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from collections import OrderedDict
from typing import Any, Callable

from repro.obs import trace as _trace

from repro.obs import MetricsRegistry, Tracer

from .http import Request, Response, error_response, json_response
from .middleware import DEADLINE_HEADER, AdmissionMiddleware, backpressure_response

#: Method → forwarded to the primary (everything else is a read).
MUTATING_METHODS = frozenset({"POST", "PUT", "PATCH", "DELETE"})

SESSION_HEADER = "x-carcs-session"
VERSION_HEADER = "x-carcs-version"
BACKEND_HEADER = "x-carcs-backend"
SERVED_BY_HEADER = "x-carcs-served-by"

#: Seconds an evicted replica sits out before the first health probe.
DEFAULT_PROBE_COOLDOWN = 1.0
#: A probed replica re-admits only when its replication lag (in shipped
#: frames) is at or below this bound.
DEFAULT_MAX_LAG_FRAMES = 64
#: Advisory client back-off when the primary is unreachable.
DEFAULT_RETRY_AFTER = 1
#: Session floors retained (LRU) before the oldest session forgets its
#: guarantee and degrades to sessionless reads.
MAX_SESSIONS = 10_000


class BackendError(Exception):
    """Transport-level failure talking to a backend (not an HTTP error)."""


class LocalBackend:
    """An in-process application object as a backend (tests, benches)."""

    def __init__(self, name: str, app: Callable[[Request], Response]) -> None:
        self.name = name
        self.app = app

    def request(self, request: Request) -> Response:
        try:
            return self.app(Request(
                method=request.method,
                path=request.path,
                query=dict(request.query),
                body=request.body,
                headers=dict(request.headers),
            ))
        except Exception as exc:  # noqa: BLE001 — app object died
            raise BackendError(f"{self.name}: {exc}") from exc


class HttpBackend:
    """A real node reached over HTTP (``carcs serve`` processes)."""

    def __init__(self, name: str, base_url: str, *, timeout: float = 10.0) -> None:
        self.name = name
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _hop_timeout(self) -> float:
        """The socket timeout for one proxied hop: the configured cap,
        shrunk to the request's remaining deadline budget (plus a small
        grace so the backend's own deadline shed wins the race and the
        client gets its structured 503 rather than a torn transport)."""
        remaining = _trace.deadline_remaining()
        if remaining is None:
            return self.timeout
        return min(self.timeout, max(0.05, remaining + 0.1))

    def request(self, request: Request) -> Response:
        # Re-encode: request.query holds *decoded* values, and a space
        # or reserved character forwarded raw is an invalid URL.
        query = urllib.parse.urlencode(
            [(key, value)
             for key, values in request.query.items() for value in values]
        )
        url = self.base_url + request.path + (f"?{query}" if query else "")
        body = request.body
        if isinstance(body, (dict, list)):
            body = json.dumps(body)
        data = body.encode("utf-8") if isinstance(body, str) else body
        req = urllib.request.Request(
            url, data=data, method=request.method,
            headers={"content-type": "application/json", **request.headers},
        )
        try:
            with urllib.request.urlopen(req, timeout=self._hop_timeout()) as resp:
                return self._to_response(resp.status, resp.headers, resp.read())
        except urllib.error.HTTPError as exc:
            # An HTTP status is a real answer from a live node, not a
            # transport failure — pass it through.
            return self._to_response(exc.code, exc.headers, exc.read())
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as exc:
            raise BackendError(f"{self.name}: {exc}") from exc

    @staticmethod
    def _to_response(status: int, headers: Any, raw: bytes) -> Response:
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else None
        except ValueError:
            payload = raw.decode("utf-8", errors="replace")
        return Response(
            status=status, payload=payload,
            headers={k.lower(): v for k, v in headers.items()},
        )


class _ReplicaSlot:
    """Rotation state for one replica backend."""

    def __init__(self, backend: Any) -> None:
        self.backend = backend
        self.healthy = True
        self.evicted_at = 0.0
        self.last_probe = 0.0
        self.evictions = 0
        self.readmissions = 0


class FrontTier:
    """Route writes to the primary, fan reads across replicas."""

    def __init__(
        self,
        primary: Any,
        replicas: list[Any] | tuple[Any, ...] = (),
        *,
        probe_cooldown: float = DEFAULT_PROBE_COOLDOWN,
        max_lag_frames: int = DEFAULT_MAX_LAG_FRAMES,
        retry_after: int = DEFAULT_RETRY_AFTER,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        name: str = "router",
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        max_inflight: int | None = None,
    ) -> None:
        self.primary = primary
        self.probe_cooldown = probe_cooldown
        self.max_lag_frames = max_lag_frames
        self.retry_after = retry_after
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Fleet-wide front door: sheds happen *here*, before a doomed
        # request burns a backend hop.  The admitted deadline is armed
        # in this context, so proxied hops see the shrinking budget
        # (header rewrite in _inject_context, socket cap in HttpBackend).
        self.admission = AdmissionMiddleware(
            self.metrics,
            rate_limit=rate_limit,
            rate_burst=rate_burst,
            max_inflight=max_inflight,
            exempt=AdmissionMiddleware.DEFAULT_EXEMPT + ("/api/v1/fleet",),
        )
        #: The router's own process label in stitched traces and its
        #: ``x-carcs-served-by`` stamp on self-served answers.
        self.name = name
        self.tracer = tracer if tracer is not None else _trace.get_tracer()
        self._slots = [_ReplicaSlot(backend) for backend in replicas]
        self._rr = 0
        self._sessions: OrderedDict[str, int] = OrderedDict()
        self._lock = threading.Lock()
        # Counters for /api/v1/fleet.
        self.reads = 0
        self.writes = 0
        self.primary_errors = 0
        self.stale_retries = 0

    # -- session floors ----------------------------------------------------

    def _session_floor(self, session: str | None) -> int:
        if not session:
            return -1
        with self._lock:
            floor = self._sessions.get(session, -1)
            if floor >= 0:
                self._sessions.move_to_end(session)
            return floor

    def _raise_floor(self, session: str | None, response: Response) -> None:
        if not session:
            return
        raw = response.headers.get(VERSION_HEADER)
        if raw is None:
            return
        try:
            version = int(raw)
        except ValueError:
            return
        with self._lock:
            if version > self._sessions.get(session, -1):
                self._sessions[session] = version
            self._sessions.move_to_end(session)
            while len(self._sessions) > MAX_SESSIONS:
                self._sessions.popitem(last=False)

    # -- dispatch ----------------------------------------------------------

    def __call__(self, request: Request) -> Response:
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return self.admission(request, self._route)
        # Adopt an inbound trace context (an instrumented client, or a
        # router chained behind another router); otherwise the inbound
        # request id seeds the trace id, matching single-node behaviour.
        context = _trace.parse_traceparent(
            request.header(_trace.TRACEPARENT_HEADER)
        )
        if context is not None:
            trace_id, parent_span_id = context
            link = {_trace.REMOTE_PARENT_ATTR: parent_span_id}
        else:
            trace_id = request.header("x-request-id") or None
            link = {}
        with tracer.trace(
            f"front {request.method}",
            trace_id=trace_id,
            fresh=True,
            path=request.path,
            **link,
        ) as root:
            response = self.admission(request, self._route)
            root.set(status=response.status)
            if response.status >= 500:
                root.mark_error(f"http {response.status}")
            response.headers.setdefault("x-trace-id", root.trace_id)
            return response

    def _route(self, request: Request) -> Response:
        if request.method == "GET":
            path = request.path.rstrip("/")
            if path == "/api/v1/fleet":
                response = json_response(self.status())
                response.headers.setdefault(SERVED_BY_HEADER, self.name)
                return response
            trace_prefix = "/api/v2/traces/"
            if path.startswith(trace_prefix) and path[len(trace_prefix):]:
                response = self._stitched_trace(
                    request, path[len(trace_prefix):]
                )
                response.headers.setdefault(SERVED_BY_HEADER, self.name)
                return response
        session = request.header(SESSION_HEADER)
        if request.method in MUTATING_METHODS:
            response = self._dispatch_write(request)
        else:
            response = self._dispatch_read(request, session)
        self._raise_floor(session, response)
        if session:
            response.headers.setdefault(SESSION_HEADER, session)
        response.headers.setdefault(SERVED_BY_HEADER, self.name)
        return response

    @staticmethod
    def _inject_context(request: Request, span_: Any) -> None:
        """Stamp the active span's traceparent on the outbound hop so
        the backend's segment hangs under this exact span when
        stitched.  With tracing off the inbound header (if any) is
        forwarded untouched.

        Deadlines propagate the same way: the header carries *remaining
        budget* (milliseconds), so each hop rewrites it down by however
        long the request has already spent at this tier — the backend
        arms a deadline covering only what the client still waits for.
        """
        if span_:
            request.headers[_trace.TRACEPARENT_HEADER] = \
                _trace.format_traceparent(span_.trace_id, span_.span_id)
        remaining = _trace.deadline_remaining()
        if remaining is not None:
            request.headers[DEADLINE_HEADER] = format(
                max(0.0, remaining) * 1000.0, ".3f"
            )

    def _dispatch_write(self, request: Request) -> Response:
        self.writes += 1
        with _trace.span("front.write", backend=self.primary.name) as span_:
            self._inject_context(request, span_)
            try:
                response = self.primary.request(request)
            except BackendError as exc:
                self.primary_errors += 1
                return backpressure_response(
                    503, f"primary unavailable: {exc}", request.request_id,
                    retry_after=self.retry_after, metrics=self.metrics,
                    reason="primary-unavailable",
                )
        self._stamp_backend(response, self.primary.name)
        return response

    def _dispatch_read(self, request: Request, session: str | None) -> Response:
        self.reads += 1
        floor = self._session_floor(session)
        self._maybe_readmit()
        for slot in self._rotation():
            try:
                with _trace.span(
                    "front.read", backend=slot.backend.name
                ) as span_:
                    self._inject_context(request, span_)
                    response = slot.backend.request(request)
            except BackendError:
                self._evict(slot)
                continue
            if floor >= 0 and self._served_version(response) < floor:
                # This replica has not caught up to what the session
                # already saw — read-your-writes says try a fresher node.
                self.stale_retries += 1
                continue
            self._stamp_backend(response, slot.backend.name)
            return response
        # No replica could satisfy the read (none configured, all
        # evicted, or all below the session floor): the primary is the
        # freshest copy by definition.
        with _trace.span("front.read", backend=self.primary.name) as span_:
            self._inject_context(request, span_)
            try:
                response = self.primary.request(request)
            except BackendError as exc:
                self.primary_errors += 1
                return backpressure_response(
                    503, f"no backend can serve this read: {exc}",
                    request.request_id,
                    retry_after=self.retry_after, metrics=self.metrics,
                    reason="no-backend",
                )
        self._stamp_backend(response, self.primary.name)
        return response

    @staticmethod
    def _stamp_backend(response: Response, name: str) -> None:
        response.headers[BACKEND_HEADER] = name
        response.headers[SERVED_BY_HEADER] = name

    # -- fleet trace stitching --------------------------------------------

    def _stitched_trace(self, request: Request, trace_id: str) -> Response:
        """Fan ``GET /api/v2/traces/<id>`` out to every fleet member
        (healthy or not — an evicted replica can still hold segments)
        and stitch whatever comes back, plus the router's own segments,
        into one tree."""
        segments: list[tuple[str, dict[str, Any]]] = []
        members: list[dict[str, Any]] = []
        backends = [self.primary] + [slot.backend for slot in self._slots]
        for backend in backends:
            try:
                resp = backend.request(
                    Request(method="GET", path=f"/api/v2/traces/{trace_id}")
                )
            except BackendError:
                members.append({
                    "name": backend.name, "reachable": False, "found": False,
                })
                continue
            payload = resp.payload if isinstance(resp.payload, dict) else {}
            found = bool(resp.ok and payload.get("root"))
            members.append({
                "name": backend.name, "reachable": True, "found": found,
            })
            if not found:
                continue
            for tree in payload.get("segments") or [payload["root"]]:
                if isinstance(tree, dict):
                    segments.append((backend.name, tree))
        if self.tracer is not None:
            local = self.tracer.store.segments(trace_id)
            if local:
                members.append({
                    "name": self.name, "reachable": True, "found": True,
                })
            for record in local:
                segments.append((self.name, record.root.as_dict()))
        if not segments:
            return error_response(
                404,
                f"no fleet member retains trace {trace_id!r} "
                "(sampled out, evicted, or never started)",
                request.request_id,
            )
        stitched = _trace.stitch_trace(trace_id, segments)
        stitched["members"] = members
        return json_response(stitched)

    @staticmethod
    def _served_version(response: Response) -> int:
        try:
            return int(response.headers.get(VERSION_HEADER, "-1"))
        except ValueError:
            return -1

    def _rotation(self) -> list[_ReplicaSlot]:
        """Healthy replicas, starting after the last one used."""
        with self._lock:
            slots = list(self._slots)
            self._rr += 1
            start = self._rr
        ordered = slots[start % len(slots):] + slots[:start % len(slots)] \
            if slots else []
        return [slot for slot in ordered if slot.healthy]

    # -- replica health ----------------------------------------------------

    def _evict(self, slot: _ReplicaSlot) -> None:
        with self._lock:
            if slot.healthy:
                slot.healthy = False
                slot.evictions += 1
            slot.evicted_at = time.monotonic()

    def _maybe_readmit(self) -> None:
        """Probe evicted replicas whose cooldown elapsed; re-admit the
        ones that answer their replication status with bounded lag."""
        now = time.monotonic()
        with self._lock:
            due = [
                slot for slot in self._slots
                if not slot.healthy
                and now - slot.evicted_at >= self.probe_cooldown
                and now - slot.last_probe >= self.probe_cooldown
            ]
            for slot in due:
                slot.last_probe = now
        for slot in due:
            try:
                probe = slot.backend.request(
                    Request(method="GET", path="/api/v1/replication")
                )
            except BackendError:
                continue
            status = probe.payload if isinstance(probe.payload, dict) else {}
            lagging = status.get("lag_frames", 0) > self.max_lag_frames
            disconnected = status.get("role") == "replica" and not status.get(
                "connected", True
            )
            if probe.ok and not lagging and not disconnected:
                with self._lock:
                    slot.healthy = True
                    slot.readmissions += 1

    # -- observability -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        with self._lock:
            replicas = [
                {
                    "name": slot.backend.name,
                    "url": getattr(slot.backend, "base_url", None),
                    "healthy": slot.healthy,
                    "evictions": slot.evictions,
                    "readmissions": slot.readmissions,
                }
                for slot in self._slots
            ]
            sessions = len(self._sessions)
        return {
            "role": "router",
            "name": self.name,
            "primary": self.primary.name,
            "primary_url": getattr(self.primary, "base_url", None),
            "replicas": replicas,
            "healthy_replicas": sum(1 for r in replicas if r["healthy"]),
            "sessions": sessions,
            "reads": self.reads,
            "writes": self.writes,
            "primary_errors": self.primary_errors,
            "stale_retries": self.stale_retries,
            "admission": self.admission.stats(),
        }
