"""URL routing with typed path parameters.

Routes are declared as ``"/assignments/<int:id>"``-style patterns; the
router dispatches (method, path) to the first matching handler, filling
``request.params`` with *converted* values — an ``<int:id>`` segment
arrives as an ``int``, so handlers never re-cast by hand.  Unknown paths
yield 404, known paths with the wrong method yield 405 — the behaviours
REST clients depend on.

A route may be registered as ``deprecated`` (the unprefixed aliases of
the ``/api/v1`` surface): it still dispatches, but every response gains
a ``Deprecation: true`` header so clients can spot their stale paths.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from .http import HttpError, Request, Response, error_response

Handler = Callable[[Request], Response]

_PARAM = re.compile(r"<(?:(int|str):)?([a-zA-Z_][a-zA-Z0-9_]*)>")

# Applied to raw (string) match groups before the handler runs.
_CONVERTERS: dict[str, Callable[[str], object]] = {
    "int": int,
    "str": str,
}


def _compile(pattern: str) -> tuple[re.Pattern, dict[str, str]]:
    """Translate a route pattern into a regex + param-type map."""
    types: dict[str, str] = {}

    def replace(match: re.Match) -> str:
        kind = match.group(1) or "str"
        name = match.group(2)
        types[name] = kind
        if kind == "int":
            return f"(?P<{name}>\\d+)"
        return f"(?P<{name}>[^/]+)"

    regex = _PARAM.sub(replace, pattern.rstrip("/") or "/")
    return re.compile(f"^{regex}/?$"), types


@dataclass(frozen=True)
class Route:
    """One (method, pattern) -> handler binding."""

    method: str
    pattern: str                 # the source pattern, e.g. "/things/<int:id>"
    regex: re.Pattern
    types: dict[str, str]
    handler: Handler
    deprecated: bool = False
    #: RFC 8594 ``Sunset`` header value (an HTTP-date) announcing when
    #: the route is scheduled to disappear; ``None`` for none.
    sunset: str | None = None


class Router:
    """Ordered route table."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, method: str, pattern: str, handler: Handler, *,
            deprecated: bool = False, sunset: str | None = None) -> None:
        regex, types = _compile(pattern)
        self._routes.append(Route(
            method=method.upper(), pattern=pattern, regex=regex,
            types=types, handler=handler, deprecated=deprecated,
            sunset=sunset,
        ))

    def route(self, method: str, pattern: str, *,
              deprecated: bool = False, sunset: str | None = None):
        """Decorator form: ``@router.route("GET", "/things/<int:id>")``."""

        def register(handler: Handler) -> Handler:
            self.add(method, pattern, handler,
                     deprecated=deprecated, sunset=sunset)
            return handler

        return register

    def dispatch(self, request: Request) -> Response:
        path_matched = False
        for route in self._routes:
            match = route.regex.match(request.path)
            if match is None:
                continue
            path_matched = True
            if route.method != request.method:
                continue
            request.params = {
                name: _CONVERTERS[route.types.get(name, "str")](value)
                for name, value in match.groupdict().items()
            }
            request.route_pattern = route.pattern
            request.route_deprecated = route.deprecated
            try:
                response = route.handler(request)
            except HttpError as exc:
                response = error_response(
                    exc.status, exc.message, request.request_id
                )
            if route.deprecated:
                response.headers.setdefault("deprecation", "true")
            if route.sunset is not None:
                response.headers.setdefault("sunset", route.sunset)
            return response
        if path_matched:
            return error_response(
                405, f"method {request.method} not allowed", request.request_id
            )
        return error_response(
            404, f"no route for {request.path}", request.request_id
        )

    def routes(self) -> list[Route]:
        """The route table in registration order — the API index."""
        return list(self._routes)
