"""URL routing with typed path parameters.

Routes are declared as ``"/assignments/<int:id>"``-style patterns; the
router dispatches (method, path) to the first matching handler, filling
``request.params``.  Unknown paths yield 404, known paths with the wrong
method yield 405 — the behaviours REST clients depend on.
"""

from __future__ import annotations

import re
from typing import Callable

from .http import HttpError, Request, Response, error_response

Handler = Callable[[Request], Response]

_PARAM = re.compile(r"<(?:(int|str):)?([a-zA-Z_][a-zA-Z0-9_]*)>")


def _compile(pattern: str) -> tuple[re.Pattern, dict[str, str]]:
    """Translate a route pattern into a regex + param-type map."""
    types: dict[str, str] = {}

    def replace(match: re.Match) -> str:
        kind = match.group(1) or "str"
        name = match.group(2)
        types[name] = kind
        if kind == "int":
            return f"(?P<{name}>\\d+)"
        return f"(?P<{name}>[^/]+)"

    regex = _PARAM.sub(replace, pattern.rstrip("/") or "/")
    return re.compile(f"^{regex}/?$"), types


class Router:
    """Ordered route table."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern, dict[str, str], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        regex, types = _compile(pattern)
        self._routes.append((method.upper(), regex, types, handler))

    def route(self, method: str, pattern: str):
        """Decorator form: ``@router.route("GET", "/things/<int:id>")``."""

        def register(handler: Handler) -> Handler:
            self.add(method, pattern, handler)
            return handler

        return register

    def dispatch(self, request: Request) -> Response:
        path_matched = False
        for method, regex, types, handler in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            path_matched = True
            if method != request.method:
                continue
            request.params = dict(match.groupdict())
            try:
                return handler(request)
            except HttpError as exc:
                return error_response(exc.status, exc.message)
        if path_matched:
            return error_response(405, f"method {request.method} not allowed")
        return error_response(404, f"no route for {request.path}")

    def routes(self) -> list[tuple[str, str]]:
        """(method, pattern source) pairs — the API index."""
        return [(m, r.pattern) for m, r, _, _ in self._routes]
