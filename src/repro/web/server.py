"""Serve the CAR-CS API over real HTTP (stdlib ``http.server``).

The in-process application object is transport-agnostic; this adapter
binds it to a TCP socket so the prototype can actually be browsed or
curl'ed, standing in for the paper's Heroku deployment.  Threaded by
default — the application pipeline is concurrency-safe (reader-writer
lock around the repository, locked caches, thread-safe metrics), so one
slow ``/similarity`` no longer blocks every other client.  Pass
``threaded=False`` for a strictly serial server (e.g. when bisecting a
concurrency bug).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer, ThreadingHTTPServer
from typing import Callable

from .http import Request, Response


def _make_handler(app: Callable[[Request], Response]):
    class Handler(BaseHTTPRequestHandler):
        # HTTP/1.1 enables keep-alive: clients (and the throughput
        # benches) reuse one connection instead of paying a TCP
        # handshake + handler thread per request.  Safe because every
        # response carries an explicit content-length.  TCP_NODELAY is
        # required alongside it — headers and body go out as separate
        # writes, and Nagle + delayed ACK otherwise stalls every
        # keep-alive response by ~40ms.
        protocol_version = "HTTP/1.1"
        disable_nagle_algorithm = True

        # Keep test logs quiet; real deployments would override this.
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass

        def _dispatch(self, method: str) -> None:
            length = int(self.headers.get("content-length", 0) or 0)
            body = self.rfile.read(length).decode("utf-8") if length else None
            request = Request.build(
                method, self.path, body=body,
                headers={k.lower(): v for k, v in self.headers.items()},
            )
            response = app(request)
            content_type = response.headers.get("content-type", "")
            if response.status == 304:
                # 304 carries validators (ETag) but no body.
                payload = b""
                headers = dict(response.headers)
            elif (
                isinstance(response.payload, str)
                and content_type
                and "application/json" not in content_type
            ):
                # Plain-text payloads (Prometheus exposition) go out
                # verbatim under their declared content type.
                payload = response.payload.encode("utf-8")
                headers = dict(response.headers)
            else:
                payload = json.dumps(response.payload, default=str).encode("utf-8")
                headers = {"content-type": "application/json", **response.headers}
            self.send_response(response.status)
            for name, value in headers.items():
                self.send_header(name, value)
            self.send_header("content-length", str(len(payload)))
            self.end_headers()
            if payload:
                self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

        def do_PATCH(self) -> None:  # noqa: N802
            self._dispatch("PATCH")

        def do_DELETE(self) -> None:  # noqa: N802
            self._dispatch("DELETE")

    return Handler


class ApiServer:
    """A CAR-CS API bound to ``host:port``.

    Use as a context manager in tests::

        with ApiServer(app, port=0) as server:
            urllib.request.urlopen(f"http://127.0.0.1:{server.port}/stats")
    """

    def __init__(
        self,
        app: Callable[[Request], Response],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        threaded: bool = True,
    ) -> None:
        server_cls = ThreadingHTTPServer if threaded else HTTPServer
        self._httpd = server_cls((host, port), _make_handler(app))
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ApiServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def serve_forever(self) -> None:
        """Blocking serve (Ctrl-C to stop) — the ``carcs``-style dev server."""
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()

    def __enter__(self) -> "ApiServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
