"""In-process HTTP request/response model.

The CAR-CS prototype is "a web service hosted on Heroku ... A Django web
server provides a RESTful API" (Section III-B).  This package replaces
that substrate with an in-process equivalent: the request/response types,
router and handlers mirror a conventional web framework, but no sockets
are involved — the test client calls the application object directly.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs, urlsplit


class HttpError(Exception):
    """Raise inside a handler to short-circuit with an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One in-process HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    body: Any = None
    headers: dict[str, str] = field(default_factory=dict)
    # Filled by the router when the route matches.  Values are typed
    # according to the route pattern (``<int:id>`` arrives as ``int``).
    params: dict[str, Any] = field(default_factory=dict)
    # Stamped by the request-id middleware before dispatch.
    request_id: str = ""
    # Filled by the router on a match: the canonical route pattern (the
    # low-cardinality label metrics aggregate on) and its deprecation flag.
    route_pattern: str | None = None
    route_deprecated: bool = False

    @classmethod
    def build(
        cls, method: str, url: str, body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> "Request":
        parts = urlsplit(url)
        return cls(
            method=method.upper(),
            path=parts.path or "/",
            query=parse_qs(parts.query),
            body=body,
            headers=headers or {},
        )

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup (HTTP headers are)."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default

    def query_one(self, name: str, default: str | None = None) -> str | None:
        values = self.query.get(name)
        return values[0] if values else default

    def query_int(self, name: str, default: int | None = None) -> int | None:
        raw = self.query_one(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise HttpError(400, f"query parameter {name!r} must be an integer")

    def json(self) -> dict[str, Any]:
        """The request body as a JSON object; 400 on malformed input."""
        body = self.body
        if body is None:
            raise HttpError(400, "request body required")
        if isinstance(body, (bytes, str)):
            try:
                body = json.loads(body)
            except json.JSONDecodeError as exc:
                raise HttpError(400, f"malformed JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise HttpError(400, "JSON object body required")
        return body


@dataclass
class Response:
    """One in-process HTTP response carrying a JSON-serializable payload."""

    status: int = 200
    payload: Any = None
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def error(self) -> dict[str, Any] | None:
        """The error envelope (``{"code", "message", "request_id"}``) of a
        4xx/5xx response, or ``None`` on success."""
        if isinstance(self.payload, dict):
            envelope = self.payload.get("error")
            if isinstance(envelope, dict):
                return envelope
        return None

    def json(self) -> Any:
        return self.payload

    def text(self) -> str:
        return json.dumps(self.payload, indent=2, sort_keys=True, default=str)


def json_response(payload: Any, status: int = 200) -> Response:
    # Round-trip through json to guarantee the payload is serializable now
    # rather than when a caller eventually dumps it.
    encoded = json.loads(json.dumps(payload, default=str))
    return Response(status=status, payload=encoded,
                    headers={"content-type": "application/json"})


def text_response(
    body: str, status: int = 200,
    content_type: str = "text/plain; charset=utf-8",
) -> Response:
    """A plain-text response (Prometheus exposition, raw trace dumps).

    The payload stays a ``str``; the socket server encodes it verbatim
    instead of JSON-serializing.
    """
    return Response(status=status, payload=body,
                    headers={"content-type": content_type})


def error_response(status: int, message: str, request_id: str = "") -> Response:
    """The uniform v1 error envelope.

    Every 4xx/5xx the API emits has this shape; the request-id middleware
    fills ``request_id`` in for envelopes created below it in the chain.
    """
    return json_response(
        {"error": {"code": status, "message": message,
                   "request_id": request_id}},
        status=status,
    )


def paginated(items: list, request: Request, *,
              default_limit: int) -> dict[str, Any]:
    """Slice ``items`` by ``limit``/``offset`` query params into the
    uniform list envelope ``{"items", "total", "limit", "offset"}``.

    ``total`` counts the full result set before windowing, so clients can
    page without a separate count request."""
    limit = request.query_int("limit", default_limit)
    offset = request.query_int("offset", 0)
    assert limit is not None and offset is not None
    if limit < 0:
        raise HttpError(400, "query parameter 'limit' must be >= 0")
    if offset < 0:
        raise HttpError(400, "query parameter 'offset' must be >= 0")
    return {
        "items": list(items[offset:offset + limit]),
        "total": len(items),
        "limit": limit,
        "offset": offset,
    }


def encode_cursor(offset: int) -> str:
    """Opaque continuation token for :func:`cursor_page`.

    Deliberately *opaque* (URL-safe base64 over a tiny JSON document)
    so clients treat it as a bookmark instead of arithmetic — the
    server is free to change the underlying scheme without breaking
    pagination loops."""
    raw = json.dumps({"o": int(offset)}).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii").rstrip("=")


def decode_cursor(token: str) -> int:
    """Inverse of :func:`encode_cursor`; 400 on anything malformed."""
    try:
        padded = token + "=" * (-len(token) % 4)
        raw = base64.urlsafe_b64decode(padded.encode("ascii"))
        document = json.loads(raw.decode("utf-8"))
        offset = document["o"]
        if not isinstance(offset, int) or offset < 0:
            raise ValueError(offset)
        return offset
    except (binascii.Error, ValueError, KeyError, TypeError,
            UnicodeDecodeError) as exc:
        raise HttpError(
            400, f"invalid pagination cursor {token!r}"
        ) from exc


def cursor_page(items: list, request: Request, *,
                default_limit: int) -> dict[str, Any]:
    """Window ``items`` into the v2 list envelope ``{"items", "total",
    "limit", "next_cursor"}``.

    Clients pass the previous response's ``next_cursor`` back as the
    ``cursor`` query parameter; ``next_cursor`` is ``None`` on the last
    page.  ``total`` still counts the full result set."""
    limit = request.query_int("limit", default_limit)
    assert limit is not None
    if limit < 0:
        raise HttpError(400, "query parameter 'limit' must be >= 0")
    token = request.query_one("cursor")
    offset = decode_cursor(token) if token else 0
    window = list(items[offset:offset + limit])
    next_offset = offset + limit
    has_more = limit > 0 and next_offset < len(items)
    return {
        "items": window,
        "total": len(items),
        "limit": limit,
        "next_cursor": encode_cursor(next_offset) if has_more else None,
    }


def not_modified(etag: str) -> Response:
    """A 304 Not Modified carrying only the validator, no body."""
    return Response(status=304, payload=None, headers={"etag": etag})


def etag_matches(if_none_match: str | None, etag: str) -> bool:
    """RFC 7232 ``If-None-Match`` evaluation against one current ETag.

    Accepts a comma-separated candidate list and the ``*`` wildcard;
    weak-validator prefixes (``W/``) are ignored on both sides, as the
    weak comparison the header mandates for 304 decisions requires.
    """
    if if_none_match is None:
        return False
    current = etag.strip()
    if current.startswith("W/"):
        current = current[2:]
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate == "*":
            return True
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == current:
            return True
    return False
