"""The request pipeline: composable middleware around router dispatch.

``CarCsApi.__call__`` used to inline its pre-dispatch logic (conditional
GET); everything cross-cutting now lives here as middleware — small
callables of ``(request, call_next) -> response`` composed into one
handler.  The production chain, outermost first:

1. :class:`RequestIdMiddleware` — stamps a per-request id (honouring an
   inbound ``X-Request-Id``), echoes it as a response header, and fills
   it into any error envelope produced further down.
2. :class:`TracingMiddleware` — opens the root span of the request's
   trace (the inbound ``traceparent`` context when a proxied hop
   carries one, else trace id == request id) and stamps ``X-Trace-Id``;
   every layer below contributes child spans through the ambient
   context.
3. :class:`MetricsMiddleware` — times the whole dispatch; per-route
   request counters by status class + latency histograms.
4. :class:`LoggingMiddleware` — one structured record per request.
5. :class:`ErrorMiddleware` — converts uncaught exceptions into clean
   ``500`` envelopes instead of killing the server thread.
6. :class:`SnapshotMiddleware` — storage concurrency: GETs pin the
   current MVCC snapshot (no lock at all) for the whole dispatch;
   mutating methods take the exclusive write lock, which only
   serializes writers against each other.
7. :class:`VersionHeaderMiddleware` — stamps the served database
   version (``x-carcs-version``, the replication offset) on every
   response, 304s included.
8. :class:`ConditionalGetMiddleware` — ETag / If-None-Match 304
   short-circuit (inside the pin, so the version read is consistent).

Replica nodes additionally run :class:`ReadOnlyMiddleware` above the
snapshot middleware, refusing local mutations with 403 and pointing at
the primary.

Ordering matters: metrics/logging sit outside the error boundary so
500s are counted and logged; the snapshot pin sits outside the
conditional-GET check so the ETag comparison and the dispatch it
guards see one repository version, and the version stamp sits between
them so reads report their pinned version while 304s still carry it.
Tracing sits directly under the request-id stamp (the trace reuses
that id) and above everything else so the root span's wall time covers
the full dispatch including write lock waits.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import OrderedDict
from typing import Callable, Iterable, Sequence

from repro.obs import MetricsRegistry, RequestLog, Tracer, new_request_id
from repro.obs import trace as _trace

from .http import (
    HttpError,
    Request,
    Response,
    error_response,
    etag_matches,
    not_modified,
)

Handler = Callable[[Request], Response]
Middleware = Callable[[Request, Handler], Response]

#: Route label used when no route matched (keeps metric cardinality
#: bounded — unmatched paths are attacker-controlled strings).
UNMATCHED = "<unmatched>"


def backpressure_response(
    status: int,
    message: str,
    request_id: str = "",
    *,
    retry_after: int = 1,
    metrics: MetricsRegistry | None = None,
    reason: str = "overload",
) -> Response:
    """The one way CAR-CS sheds load.

    Every "come back later" answer — the front tier's primary-outage
    503s and the job queue's saturation 429 — goes through here, so the
    ``Retry-After`` header, the uniform error envelope and the
    ``carcs_shed_total`` counter can never drift apart again.
    """
    response = error_response(status, message, request_id)
    response.headers["retry-after"] = str(retry_after)
    if metrics is not None:
        metrics.counter(
            "carcs_shed_total", status=str(status), reason=reason,
        ).inc()
    return response


def compose(middlewares: Sequence[Middleware], endpoint: Handler) -> Handler:
    """Fold ``middlewares`` (outermost first) around ``endpoint``."""
    handler = endpoint
    for middleware in reversed(middlewares):
        def handler(request, _mw=middleware, _next=handler):
            return _mw(request, _next)
    return handler


def route_label(request: Request) -> str:
    """Low-cardinality metrics label: ``"GET /api/v1/assignments/<int:id>"``."""
    return f"{request.method} {request.route_pattern or UNMATCHED}"


# -- admission control ------------------------------------------------------

#: Client-supplied request deadline, in milliseconds of remaining budget
#: (not a wall-clock instant, so clock skew between hops is irrelevant).
#: The front tier rewrites it to the *remaining* budget before each
#: proxied hop.
DEADLINE_HEADER = "x-carcs-deadline-ms"

#: Explicit client identity for per-client rate limiting.  Falls back to
#: the session cookie header, then the standard proxy header, then one
#: shared anonymous bucket.
CLIENT_HEADER = "x-carcs-client"

ENV_RATE_LIMIT = "CARCS_RATE_LIMIT"
ENV_RATE_BURST = "CARCS_RATE_BURST"
ENV_MAX_INFLIGHT = "CARCS_MAX_INFLIGHT"

#: Distinct per-client buckets retained; a rotating-identity client
#: cycles through the shared LRU instead of growing it without bound.
MAX_TRACKED_CLIENTS = 10_000


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    :meth:`acquire` is O(1) and lock-free (callers hold the admission
    lock); it returns 0.0 on admit or the seconds until the next token
    otherwise — which becomes the ``Retry-After`` hint, so a limited
    client is told exactly when trying again can succeed.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float,
                 now: float | None = None) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = time.monotonic() if now is None else now

    def acquire(self, now: float | None = None) -> float:
        if now is None:
            now = time.monotonic()
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class AdmissionMiddleware:
    """The front door: rate limits, concurrency caps, request deadlines.

    Runs *under* the error boundary (sheds are counted, logged and
    traced like any response) and *above* the snapshot middleware — a
    request this layer refuses never touches the storage engine and,
    crucially, never queues on the write lock.  Three independent
    checks, cheapest first:

    1. **Deadline** (always on): ``x-carcs-deadline-ms`` holds the
       client's remaining budget in milliseconds.  Already expired →
       immediate 503 (reason ``deadline``).  Otherwise the deadline is
       armed in the trace contextvar for the whole dispatch, so the db
       layer, planner scan strides and block page-ins abort work the
       client has given up on; the abort surfaces as the same 503.
    2. **Per-client token bucket** (on when ``rate_limit`` or
       ``CARCS_RATE_LIMIT`` is set): identity from ``x-carcs-client``,
       else the session header, else ``x-forwarded-for``, else one
       shared anonymous bucket; over rate → 429 (reason ``rate-limit``)
       with ``Retry-After`` computed from the bucket's actual refill.
    3. **Inflight cap** (on when ``max_inflight`` or
       ``CARCS_MAX_INFLIGHT`` is set): more concurrent requests than
       the cap → 503 (reason ``overload``) rather than a queue that
       grows until every request times out.

    Every refusal goes through :func:`backpressure_response` — one
    envelope, one ``Retry-After`` header, one ``carcs_shed_total``
    counter, exactly like the front tier's primary-outage 503s and the
    job queue's saturation 429s.
    """

    #: Paths that must answer even under overload (operators debugging
    #: the overload need them).
    DEFAULT_EXEMPT = ("/api/v1/healthz", "/api/v1/metrics")

    def __init__(self, metrics: MetricsRegistry | None = None, *,
                 rate_limit: float | None = None,
                 rate_burst: float | None = None,
                 max_inflight: int | None = None,
                 exempt: Iterable[str] | None = None) -> None:
        self.metrics = metrics
        self.rate_limit = (
            rate_limit if rate_limit else _env_float(ENV_RATE_LIMIT)
        )
        burst = rate_burst if rate_burst else _env_float(ENV_RATE_BURST)
        self.rate_burst = burst if burst else (
            max(1.0, self.rate_limit) if self.rate_limit else 1.0
        )
        self.max_inflight = (
            max_inflight if max_inflight else _env_int(ENV_MAX_INFLIGHT)
        )
        self.exempt = frozenset(
            exempt if exempt is not None else self.DEFAULT_EXEMPT
        )
        self._lock = threading.Lock()
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._inflight = 0
        self.shed_deadline = 0
        self.shed_rate = 0
        self.shed_inflight = 0

    # -- helpers -----------------------------------------------------------

    def _client_id(self, request: Request) -> str:
        return (
            request.header(CLIENT_HEADER)
            or request.header("x-carcs-session")
            or request.header("x-forwarded-for")
            or "anonymous"
        )

    @staticmethod
    def parse_deadline(raw: str | None) -> float | None:
        """Remaining budget in *seconds* from the header value, or
        ``None`` when absent/malformed (a garbage value from an
        arbitrary client must never break dispatch)."""
        if not raw:
            return None
        try:
            ms = float(raw)
        except ValueError:
            return None
        if not math.isfinite(ms):
            return None
        return ms / 1e3

    def _over_rate(self, request: Request) -> float:
        """0.0 = admitted; else seconds until this client's next token."""
        if self.rate_limit is None:
            return 0.0
        client = self._client_id(request)
        with self._lock:
            bucket = self._buckets.pop(client, None)
            if bucket is None:
                bucket = TokenBucket(self.rate_limit, self.rate_burst)
            self._buckets[client] = bucket
            while len(self._buckets) > MAX_TRACKED_CLIENTS:
                self._buckets.popitem(last=False)
            return bucket.acquire()

    def _shed(self, request: Request, status: int, message: str, *,
              retry_after: int, reason: str) -> Response:
        return backpressure_response(
            status, message, request.request_id,
            retry_after=retry_after, metrics=self.metrics, reason=reason,
        )

    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "inflight": self._inflight,
                "tracked_clients": len(self._buckets),
                "shed_deadline": self.shed_deadline,
                "shed_rate": self.shed_rate,
                "shed_inflight": self.shed_inflight,
            }

    # -- the middleware ----------------------------------------------------

    def __call__(self, request: Request, call_next: Handler) -> Response:
        if request.path in self.exempt:
            return call_next(request)

        budget = self.parse_deadline(request.header(DEADLINE_HEADER))
        if budget is not None and budget <= 0:
            self.shed_deadline += 1
            return self._shed(
                request, 503, "request deadline already expired",
                retry_after=1, reason="deadline",
            )

        wait = self._over_rate(request)
        if wait > 0:
            self.shed_rate += 1
            return self._shed(
                request, 429, "client request rate exceeded",
                retry_after=max(1, math.ceil(wait)), reason="rate-limit",
            )

        if self.max_inflight is not None:
            with self._lock:
                if self._inflight >= self.max_inflight:
                    self.shed_inflight += 1
                    over = True
                else:
                    self._inflight += 1
                    over = False
            if over:
                return self._shed(
                    request, 503, "server is at its concurrency limit",
                    retry_after=1, reason="overload",
                )
        else:
            with self._lock:
                self._inflight += 1
        if self.metrics is not None:
            self.metrics.gauge("carcs_inflight_requests").set(
                self.inflight()
            )

        token = _trace.set_deadline(budget) if budget is not None else None
        try:
            return call_next(request)
        except _trace.DeadlineExceeded as exc:
            # Work the deadline cancelled mid-flight: same shed shape as
            # a pre-expired deadline, so clients handle one contract.
            self.shed_deadline += 1
            return self._shed(
                request, 503, str(exc), retry_after=1, reason="deadline",
            )
        finally:
            if token is not None:
                _trace.clear_deadline(token)
            with self._lock:
                self._inflight -= 1
            if self.metrics is not None:
                self.metrics.gauge("carcs_inflight_requests").set(
                    self.inflight()
                )


class RequestIdMiddleware:
    """Stamp/propagate request ids and surface them everywhere."""

    def __call__(self, request: Request, call_next: Handler) -> Response:
        request.request_id = (
            request.header("x-request-id") or new_request_id()
        )
        response = call_next(request)
        response.headers.setdefault("x-request-id", request.request_id)
        envelope = response.error
        if envelope is not None and not envelope.get("request_id"):
            envelope["request_id"] = request.request_id
        return response


class TracingMiddleware:
    """Open the per-request root span; everything below adds children.

    An inbound ``traceparent`` header (stamped by the front tier on
    every proxied hop, or by any instrumented client) wins: the root
    opens under the *propagated* trace id with a ``remote_parent``
    attribute naming the caller's span, which is what lets the fleet
    stitcher hang this process's segment under the right hop.  Without
    one, the trace id reuses the request id (stamped by the middleware
    above us), so one identifier correlates the response headers, the
    request log and the stored trace.  When tracing is off this
    middleware is a plain pass-through — no span objects, no
    context-var writes.

    The root span is named after the *matched route* (low cardinality),
    which the router only knows after dispatch — so it opens under a
    placeholder name and is renamed on the way out.
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def __call__(self, request: Request, call_next: Handler) -> Response:
        if not self.tracer.enabled:
            return call_next(request)
        context = _trace.parse_traceparent(
            request.header(_trace.TRACEPARENT_HEADER)
        )
        if context is not None:
            trace_id, parent_span_id = context
            link = {_trace.REMOTE_PARENT_ATTR: parent_span_id}
        else:
            trace_id = request.request_id or None
            link = {}
        with self.tracer.trace(
            "http.request",
            trace_id=trace_id,
            fresh=True,
            method=request.method,
            path=request.path,
            **link,
        ) as root:
            response = call_next(request)
            root.name = route_label(request)
            root.set(status=response.status)
            if response.status >= 500:
                root.mark_error(f"http {response.status}")
            response.headers.setdefault("x-trace-id", root.trace_id)
            return response


class MetricsMiddleware:
    """Per-route request counters (by status class) + latency histograms."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def __call__(self, request: Request, call_next: Handler) -> Response:
        start = time.perf_counter()
        try:
            response = call_next(request)
        except BaseException:
            # Only reachable if no error boundary sits below us; count the
            # blow-up before letting it propagate.
            self._record(request, 500, time.perf_counter() - start)
            raise
        self._record(request, response.status, time.perf_counter() - start)
        return response

    def _record(self, request: Request, status: int, elapsed: float) -> None:
        label = route_label(request)
        self.registry.counter(
            "http_requests_total",
            route=label, status=f"{status // 100}xx",
        ).inc()
        self.registry.histogram(
            "http_request_seconds", route=label,
        ).observe(elapsed)


class LoggingMiddleware:
    """One structured record per request, correlated by request id."""

    def __init__(self, log: RequestLog) -> None:
        self.log = log

    def __call__(self, request: Request, call_next: Handler) -> Response:
        start = time.perf_counter()
        response = call_next(request)
        self.log.record(
            request_id=request.request_id,
            method=request.method,
            path=request.path,
            route=request.route_pattern or UNMATCHED,
            status=response.status,
            duration_ms=round((time.perf_counter() - start) * 1e3, 3),
        )
        return response


class ErrorMiddleware:
    """Uncaught exception -> clean 500 envelope (the thread survives)."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 log: RequestLog | None = None) -> None:
        self.registry = registry
        self.log = log

    def __call__(self, request: Request, call_next: Handler) -> Response:
        try:
            return call_next(request)
        except HttpError as exc:
            # Handlers normally raise inside the router (which converts),
            # but a middleware below us may raise too.
            return error_response(exc.status, exc.message, request.request_id)
        except Exception as exc:  # noqa: BLE001 — the 500 boundary
            if self.registry is not None:
                self.registry.counter(
                    "http_exceptions_total", type=type(exc).__name__,
                ).inc()
            if self.log is not None:
                self.log.record(
                    request_id=request.request_id,
                    method=request.method,
                    path=request.path,
                    event="unhandled_exception",
                    exception=type(exc).__name__,
                    detail=str(exc),
                )
            # The internal detail stays in the log; clients get a generic
            # message plus the id that finds it.
            return error_response(
                500, "internal server error", request.request_id
            )


class SnapshotMiddleware:
    """MVCC concurrency for the whole dispatch.

    GET/HEAD/OPTIONS pin the currently published database snapshot —
    **no lock acquisition at all** — so any number of read requests
    proceed concurrently, each observing one immutable committed
    version even while writers commit mid-request.  Mutating methods
    take the exclusive write lock, which only serializes writers
    against each other (readers never wait and are never waited on).
    """

    READ_METHODS = frozenset({"GET", "HEAD", "OPTIONS"})

    def __init__(self, db) -> None:
        self.db = db

    def __call__(self, request: Request, call_next: Handler) -> Response:
        if request.method in self.READ_METHODS:
            with self.db.pinned() as snap:
                # Lock-free: the span records *which* version this request
                # reads (there is no wait to attribute — pinning is one
                # attribute read).
                with _trace.span(
                    "db.snapshot.pin",
                    version=snap.version if snap is not None else -1,
                ):
                    pass
                return call_next(request)
        lock = self.db.lock
        # The acquire gets its own span so lock *wait* is attributed
        # separately from the handler work it serializes.
        with _trace.span("db.lock.acquire", mode="write"):
            lock.acquire_write()
        try:
            return call_next(request)
        finally:
            lock.release_write()


class ReadOnlyMiddleware:
    """Reject mutations on a read-replica node with 403.

    Replicas converge by applying the primary's shipped frames; a local
    write would fork their history from the stream.  The front tier
    routes writes to the primary — a mutation landing here means a
    client bypassed it, so the refusal names the right door.  Sits above
    the snapshot middleware: a doomed write never queues on the write
    lock (which the replication applier is using).
    """

    MUTATING_METHODS = frozenset({"POST", "PUT", "PATCH", "DELETE"})

    def __init__(self, primary_url: str = "") -> None:
        self.primary_url = primary_url

    def __call__(self, request: Request, call_next: Handler) -> Response:
        if request.method in self.MUTATING_METHODS:
            detail = (
                f"this node is a read replica; send writes to "
                f"{self.primary_url}" if self.primary_url
                else "this node is a read replica; send writes to the primary"
            )
            response = error_response(403, detail, request.request_id)
            if self.primary_url:
                response.headers["x-carcs-primary"] = self.primary_url
            return response
        return call_next(request)


class VersionHeaderMiddleware:
    """Stamp ``x-carcs-version`` — the replication offset — on every
    response.

    For reads the value is the MVCC version the request was served from
    (it runs inside the snapshot pin, so ``db.version`` is the pinned
    version); for writes it is the post-commit version.  The front tier
    compares this header against each session's version floor to give
    read-your-writes across replicas, so it must also ride on 304s —
    which is why this sits *above* the conditional-GET short-circuit.
    """

    HEADER = "x-carcs-version"

    def __init__(self, db) -> None:
        self.db = db

    def __call__(self, request: Request, call_next: Handler) -> Response:
        response = call_next(request)
        response.headers.setdefault(self.HEADER, str(self.db.version))
        return response


class ConditionalGetMiddleware:
    """ETag / If-None-Match revalidation for GETs.

    ``exempt`` paths (metrics, health, traces) change without a
    repository mutation, so they never 304.  Each exempt entry also
    covers everything nested under it (``/api/v1/traces`` exempts
    ``/api/v1/traces/<id>``)."""

    def __init__(self, etag_fn: Callable[[], str],
                 exempt: Iterable[str] = ()) -> None:
        self.etag_fn = etag_fn
        self.exempt = frozenset(exempt)

    def _is_exempt(self, path: str) -> bool:
        return path in self.exempt or any(
            path.startswith(p + "/") for p in self.exempt
        )

    def __call__(self, request: Request, call_next: Handler) -> Response:
        if request.method != "GET" or self._is_exempt(request.path):
            return call_next(request)
        etag = self.etag_fn()
        if etag_matches(request.header("if-none-match"), etag):
            return not_modified(etag)
        response = call_next(request)
        if response.ok:
            response.headers.setdefault("etag", etag)
        return response
