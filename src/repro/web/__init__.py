"""In-process REST substrate (replaces the paper's Django/Heroku stack)."""

from .api import API_PREFIX, CarCsApi
from .client import Client
from .front import BackendError, FrontTier, HttpBackend, LocalBackend
from .http import (
    HttpError,
    Request,
    Response,
    error_response,
    json_response,
    paginated,
    text_response,
)
from .middleware import (
    ConditionalGetMiddleware,
    ErrorMiddleware,
    LoggingMiddleware,
    MetricsMiddleware,
    ReadOnlyMiddleware,
    RequestIdMiddleware,
    SnapshotMiddleware,
    TracingMiddleware,
    VersionHeaderMiddleware,
    compose,
)
from .router import Route, Router
from .server import ApiServer

__all__ = [
    "API_PREFIX",
    "ApiServer",
    "BackendError",
    "CarCsApi",
    "Client",
    "ConditionalGetMiddleware",
    "ErrorMiddleware",
    "FrontTier",
    "HttpBackend",
    "HttpError",
    "LocalBackend",
    "LoggingMiddleware",
    "MetricsMiddleware",
    "ReadOnlyMiddleware",
    "Request",
    "RequestIdMiddleware",
    "Response",
    "Route",
    "Router",
    "SnapshotMiddleware",
    "TracingMiddleware",
    "VersionHeaderMiddleware",
    "compose",
    "error_response",
    "json_response",
    "paginated",
    "text_response",
]
