"""In-process REST substrate (replaces the paper's Django/Heroku stack)."""

from .api import API_PREFIX, CarCsApi
from .client import Client
from .http import (
    HttpError,
    Request,
    Response,
    error_response,
    json_response,
    paginated,
    text_response,
)
from .middleware import (
    ConditionalGetMiddleware,
    ErrorMiddleware,
    LoggingMiddleware,
    MetricsMiddleware,
    RequestIdMiddleware,
    SnapshotMiddleware,
    TracingMiddleware,
    compose,
)
from .router import Route, Router
from .server import ApiServer

__all__ = [
    "API_PREFIX",
    "ApiServer",
    "CarCsApi",
    "Client",
    "ConditionalGetMiddleware",
    "ErrorMiddleware",
    "HttpError",
    "LoggingMiddleware",
    "MetricsMiddleware",
    "Request",
    "RequestIdMiddleware",
    "Response",
    "Route",
    "Router",
    "SnapshotMiddleware",
    "TracingMiddleware",
    "compose",
    "error_response",
    "json_response",
    "paginated",
    "text_response",
]
