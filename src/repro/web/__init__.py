"""In-process REST substrate (replaces the paper's Django/Heroku stack)."""

from .api import CarCsApi
from .client import Client
from .http import HttpError, Request, Response, error_response, json_response
from .router import Router
from .server import ApiServer

__all__ = [
    "ApiServer",
    "CarCsApi",
    "Client",
    "HttpError",
    "Request",
    "Response",
    "Router",
    "error_response",
    "json_response",
]
