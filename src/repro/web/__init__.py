"""In-process REST substrate (replaces the paper's Django/Heroku stack)."""

from .api import API_PREFIX, API_V2_PREFIX, CarCsApi
from .client import Client
from .front import BackendError, FrontTier, HttpBackend, LocalBackend
from .http import (
    HttpError,
    Request,
    Response,
    cursor_page,
    decode_cursor,
    encode_cursor,
    error_response,
    json_response,
    paginated,
    text_response,
)
from .middleware import (
    AdmissionMiddleware,
    ConditionalGetMiddleware,
    TokenBucket,
    backpressure_response,
    ErrorMiddleware,
    LoggingMiddleware,
    MetricsMiddleware,
    ReadOnlyMiddleware,
    RequestIdMiddleware,
    SnapshotMiddleware,
    TracingMiddleware,
    VersionHeaderMiddleware,
    compose,
)
from .router import Route, Router
from .server import ApiServer

__all__ = [
    "API_PREFIX",
    "API_V2_PREFIX",
    "AdmissionMiddleware",
    "ApiServer",
    "BackendError",
    "CarCsApi",
    "Client",
    "ConditionalGetMiddleware",
    "ErrorMiddleware",
    "FrontTier",
    "HttpBackend",
    "HttpError",
    "LocalBackend",
    "LoggingMiddleware",
    "MetricsMiddleware",
    "ReadOnlyMiddleware",
    "Request",
    "RequestIdMiddleware",
    "Response",
    "Route",
    "Router",
    "SnapshotMiddleware",
    "TokenBucket",
    "TracingMiddleware",
    "VersionHeaderMiddleware",
    "backpressure_response",
    "compose",
    "cursor_page",
    "decode_cursor",
    "encode_cursor",
    "error_response",
    "json_response",
    "paginated",
    "text_response",
]
