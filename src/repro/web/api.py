"""The CAR-CS RESTful API surface.

Mirrors the resources the paper's prototype exposes at
``cs-materials.herokuapp.com``: assignment CRUD + classification editing
(Figure 1), ontology browsing with phrase search (Figure 1b), the
coverage resource behind Figure 2, and the similarity resource behind
Figure 3 — plus gap analysis and classification recommendation.

The surface is versioned: every resource lives under ``/api/v1/...``,
with the historical unprefixed paths kept as deprecated aliases (they
dispatch identically but answer with a ``Deprecation: true`` header).
``GET /api/v1`` lists the route table; ``GET /api/v1/metrics`` and
``GET /api/v1/healthz`` expose the observability layer.  All requests
flow through the middleware chain in :mod:`repro.web.middleware` —
request ids, metrics, structured logging, the 500 boundary, the MVCC
snapshot pin (reads) / write lock (mutations), and conditional GET.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.classification import ClassificationSet
from repro.core.gaps import find_gaps
from repro.core.material import CourseLevel, Material, MaterialKind
from repro.core.ontology import BloomLevel
from repro.core.repository import Repository
from repro.core.search import SearchFilters
from repro.jobs import JobQueue, WorkerPool, default_handlers
from repro.obs import (
    MetricsRegistry,
    RequestLog,
    SloMonitor,
    Tracer,
    collect_runtime_metrics,
    get_tracer,
    render_prometheus,
)

from .http import (
    HttpError,
    Request,
    Response,
    json_response,
    paginated,
    text_response,
)
from .middleware import (
    AdmissionMiddleware,
    ConditionalGetMiddleware,
    ErrorMiddleware,
    LoggingMiddleware,
    MetricsMiddleware,
    ReadOnlyMiddleware,
    RequestIdMiddleware,
    SnapshotMiddleware,
    TracingMiddleware,
    VersionHeaderMiddleware,
    compose,
)
from .router import Router

#: The deprecated v1 prefix — served as a compatibility shim.
API_PREFIX = "/api/v1"

#: The current, resource-oriented surface (see :mod:`repro.web.v2`).
API_V2_PREFIX = "/api/v2"

#: RFC 8594 ``Sunset`` date stamped on every v1 response: the v1 shim
#: is scheduled to disappear; ``/api/v2`` is the successor.
V1_SUNSET = "Wed, 30 Jun 2027 00:00:00 GMT"

#: Paths whose payload changes without a repository mutation — they are
#: exempt from the version-derived ETag and never 304.  Entries cover
#: nested paths too (``/traces`` exempts ``/traces/<id>``).
UNCONDITIONAL_PATHS = tuple(
    f"{prefix}{suffix}"
    for prefix in (API_PREFIX, API_V2_PREFIX)
    for suffix in ("/metrics", "/healthz", "/traces", "/replication", "/slo")
)


def _material_payload(repo: Repository, material: Material) -> dict[str, Any]:
    assert material.id is not None
    cs = repo.classification_of(material.id)
    return {
        "id": material.id,
        "title": material.title,
        "description": material.description,
        "kind": material.kind.value,
        "authors": list(material.authors),
        "url": material.url,
        "course_level": material.course_level.value if material.course_level else None,
        "languages": list(material.languages),
        "datasets": list(material.datasets),
        "tags": list(material.tags),
        "collection": material.collection,
        "year": material.year,
        "classifications": [
            {"ontology": item.ontology, "key": item.key,
             "bloom": item.bloom.value if item.bloom else None}
            for item in cs.items()
        ],
    }


class CarCsApi:
    """Application object: a middleware pipeline around a routed repository.

    Every successful GET carries an ``ETag`` derived from the repository's
    mutation version; a GET with a matching ``If-None-Match`` validator
    short-circuits to an empty ``304 Not Modified`` *before* dispatch, so
    HTTP clients polling ``/api/v1/coverage`` or ``/api/v1/similarity``
    between mutations cost neither recomputation nor payload bytes.
    """

    def __init__(
        self,
        repo: Repository,
        *,
        metrics: MetricsRegistry | None = None,
        request_log: RequestLog | None = None,
        tracer: Tracer | None = None,
        replication: Any = None,
        read_only: bool = False,
        primary_url: str = "",
        queue: JobQueue | None = None,
        workers: int = 0,
        max_queued_jobs: int = 1_000,
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        max_inflight: int | None = None,
    ) -> None:
        self.repo = repo
        # A PrimaryShipper or ReplicaApplier (anything with .status());
        # None on a standalone node.  Surfaces at /api/v1/replication
        # and as carcs_replication_* gauges.
        self.replication = replication
        self.read_only = read_only
        self.primary_url = primary_url
        self.router = Router()
        # The durable job queue backing /api/v2/jobs.  A replica must
        # not create the _jobs table locally (its state comes solely
        # from the primary's frame stream), so it gets a read-only view
        # that activates once the primary ships the table.
        self.queue = queue if queue is not None else JobQueue(
            repo.db, create=not read_only, max_queued=max_queued_jobs,
        )
        self.job_handlers = default_handlers(repo)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.request_log = (
            request_log if request_log is not None else RequestLog()
        )
        self.tracer = tracer if tracer is not None else get_tracer()
        self._search = repo.search_engine()
        # Index-size gauges, rebuild counters, the search latency
        # histogram, per-span duration histograms and the request-log
        # drop gauge all land in the same registry /api/v1/metrics
        # exports.
        self._search.metrics = self.metrics
        self.tracer.registry = self.metrics
        self.request_log.metrics = self.metrics
        # SLO burn rates derive from the same http_* series the metrics
        # middleware feeds; the monitor snapshots them on read.
        self.slo = SloMonitor(self.metrics)
        self._started = time.monotonic()
        self._register()
        from .v2 import register_v2
        register_v2(self)
        # In-process worker pool draining the queue beside the server
        # (``carcs serve --workers N``); 0 = external workers only.
        self.workers: WorkerPool | None = None
        if workers > 0 and not read_only:
            self.workers = WorkerPool(
                self.queue, self.job_handlers,
                size=workers, metrics=self.metrics, tracer=self.tracer,
                name="api",
            ).start()
        # Admission sits below Error (sheds get request ids, metrics,
        # logs and trace spans) but above ReadOnly/Snapshot: a shed
        # request must never queue on the database write lock.
        self.admission = AdmissionMiddleware(
            self.metrics,
            rate_limit=rate_limit,
            rate_burst=rate_burst,
            max_inflight=max_inflight,
        )
        self.middlewares = [
            RequestIdMiddleware(),
            TracingMiddleware(self.tracer),
            MetricsMiddleware(self.metrics),
            LoggingMiddleware(self.request_log),
            ErrorMiddleware(self.metrics, self.request_log),
            self.admission,
            *([ReadOnlyMiddleware(primary_url)] if read_only else []),
            SnapshotMiddleware(repo.db),
            VersionHeaderMiddleware(repo.db),
            ConditionalGetMiddleware(self._etag, UNCONDITIONAL_PATHS),
        ]
        self._pipeline = compose(self.middlewares, self.router.dispatch)

    def _etag(self) -> str:
        return f'"carcs-v{self.repo.version}"'

    def close(self) -> None:
        """Stop the in-process worker pool (if one was started)."""
        if self.workers is not None:
            self.workers.stop()
            self.workers = None

    def _replication_status(self) -> dict[str, Any]:
        if self.replication is None:
            return {"role": "standalone", "version": self.repo.version}
        return self.replication.status()

    def __call__(self, request: Request) -> Response:
        return self._pipeline(request)

    # ------------------------------------------------------------ helpers

    def _material_or_404(self, request: Request) -> Material:
        mid = request.params["id"]
        try:
            return self.repo.get_material(mid)
        except Exception:
            raise HttpError(404, f"no material with id {mid}")

    def _parse_classification(self, raw: list[dict]) -> ClassificationSet:
        cs = ClassificationSet()
        for entry in raw:
            try:
                ontology = entry["ontology"]
                key = entry["key"]
            except (TypeError, KeyError):
                raise HttpError(400, "classification entries need 'ontology' and 'key'")
            bloom = None
            if entry.get("bloom"):
                try:
                    bloom = BloomLevel(entry["bloom"])
                except ValueError:
                    raise HttpError(400, f"unknown bloom level {entry['bloom']!r}")
            cs.add(ontology, key, bloom)
        return cs

    def _collection_ids(self, collection: str) -> list[int]:
        rows = self.repo.db.table("materials").find(collection=collection)
        if not rows:
            raise HttpError(404, f"no materials in collection {collection!r}")
        return sorted(r["id"] for r in rows)

    def _parse_search_request(self, request: Request):
        """Shared by ``/search`` and ``/assignments``: the ``q`` facet
        query language plus the ``collection``/``under`` shorthand
        parameters, folded into one (text, filters) pair."""
        from dataclasses import replace

        from ..core.query_language import QuerySyntaxError, parse_query

        try:
            parsed = parse_query(request.query_one("q", "") or "")
        except QuerySyntaxError as exc:
            raise HttpError(400, str(exc))
        filters = parsed.filters
        collection = request.query_one("collection")
        if collection:
            filters = replace(
                filters, collections=filters.collections + (collection,)
            )
        under = request.query_one("under")
        if under:
            filters = replace(filters, under=filters.under + (under,))
        return parsed.text, filters

    # ------------------------------------------------------------ routes

    def _register(self) -> None:
        router = self.router

        def route(method: str, path: str):
            """Mount under ``/api/v1`` (the compatibility shim: answers
            byte-identically but carries the ``Sunset`` header pointing
            clients at ``/api/v2``) + keep the unprefixed path as a
            deprecated alias that still dispatches."""

            def register(handler):
                router.add(method, API_PREFIX + path, handler,
                           sunset=V1_SUNSET)
                router.add(method, path, handler, deprecated=True,
                           sunset=V1_SUNSET)
                return handler

            return register

        @router.route("GET", API_PREFIX, sunset=V1_SUNSET)
        def api_index(request: Request) -> Response:
            return json_response({
                "service": "carcs",
                "api_version": "v1",
                "successor": API_V2_PREFIX,
                "sunset": V1_SUNSET,
                "routes": [
                    {"method": r.method, "path": r.pattern}
                    for r in router.routes()
                    if not r.deprecated
                    and r.pattern.startswith(API_PREFIX)
                ],
            })

        @router.route("GET", f"{API_PREFIX}/healthz", sunset=V1_SUNSET)
        def healthz(request: Request) -> Response:
            return json_response({
                "status": "ok",
                "version": self.repo.version,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
            })

        @router.route("GET", f"{API_PREFIX}/metrics", sunset=V1_SUNSET)
        def metrics(request: Request) -> Response:
            # Mirror the repository/cache counters into gauges at scrape
            # time so one export carries the whole picture: per-route
            # request counts, latency histograms, db versions, cache
            # hits/misses, tracer retention counters.
            for key, value in self.repo.stats().items():
                self.metrics.gauge(f"carcs_{key}").set(value)
            self.metrics.gauge("carcs_uptime_seconds").set(
                round(time.monotonic() - self._started, 3)
            )
            self.metrics.gauge("carcs_request_log_dropped").set(
                self.request_log.dropped
            )
            for key, value in self.tracer.stats().items():
                self.metrics.gauge(f"carcs_traces_{key}").set(value)
            # Admission-control counters: in-flight level, tracked
            # client buckets, and shed totals by cause.
            for key, value in self.admission.stats().items():
                self.metrics.gauge(f"carcs_admission_{key}").set(value)
            # Replication lag/offset gauges (numbers only; booleans such
            # as `connected` export as 0/1, strings stay JSON-only).
            for key, value in self._replication_status().items():
                if isinstance(value, bool):
                    value = int(value)
                if isinstance(value, (int, float)):
                    self.metrics.gauge(f"carcs_replication_{key}").set(value)
            # Queue depth by job state (empty on a replica until the
            # primary ships the _jobs table).
            for state, value in self.queue.counts().items():
                self.metrics.gauge("carcs_jobs", state=state).set(value)
            # Process runtime gauges (build info, uptime, RSS, fds,
            # threads) and the carcs_slo_* target/ratio/burn gauges.
            collect_runtime_metrics(self.metrics)
            self.slo.export()
            if request.query_one("format") == "prometheus":
                return text_response(
                    render_prometheus(self.metrics),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            return json_response({
                "metrics": self.metrics.export(),
                # span name -> trace id of a recent retained trace
                # containing it: the histogram↔trace cross-reference.
                "exemplars": self.tracer.exemplars(),
            })

        @router.route("GET", f"{API_PREFIX}/replication", sunset=V1_SUNSET)
        def replication_status(request: Request) -> Response:
            return json_response(self._replication_status())

        @router.route("GET", f"{API_PREFIX}/slo", sunset=V1_SUNSET)
        def slo(request: Request) -> Response:
            # One fetch carries everything `carcs top` renders per
            # member: burn rates plus queue depth and replication lag.
            payload = self.slo.report()
            payload["jobs"] = self.queue.counts()
            payload["replication"] = self._replication_status()
            payload["uptime_seconds"] = round(
                time.monotonic() - self._started, 3
            )
            return json_response(payload)

        @router.route("GET", f"{API_PREFIX}/traces", sunset=V1_SUNSET)
        def list_traces(request: Request) -> Response:
            summaries = self.tracer.store.summaries()
            status = request.query_one("status")
            if status:
                summaries = [s for s in summaries if s["status"] == status]
            payload = paginated(summaries, request, default_limit=20)
            payload["tracer"] = self.tracer.stats()
            return json_response(payload)

        @router.route("GET", f"{API_PREFIX}/traces/<trace_id>", sunset=V1_SUNSET)
        def get_trace(request: Request) -> Response:
            trace_id = request.params["trace_id"]
            record = self.tracer.store.get(trace_id)
            if record is None:
                raise HttpError(
                    404,
                    f"no retained trace {trace_id!r} (sampled out, evicted, "
                    "or never started)",
                )
            payload = record.as_dict()
            # All local segments sharing this trace id (a request and
            # the job it enqueued can both live in this process) — the
            # fleet stitcher consumes these.
            payload["segments"] = [
                seg.root.as_dict()
                for seg in self.tracer.store.segments(trace_id)
            ]
            return json_response(payload)

        @route("GET", "/assignments")
        def list_assignments(request: Request) -> Response:
            # `q` accepts the facet query language, e.g.
            # "language:python under:PDC12/PROG monte carlo".
            text, filters = self._parse_search_request(request)
            # Rank everything, then window: `total` must count the full
            # result set, not just the requested page.
            hits = self._search.search(
                text, filters, limit=max(self.repo.material_count(), 1),
            )
            return json_response(paginated([
                {"id": h.material.id, "title": h.material.title,
                 "collection": h.material.collection, "score": h.score}
                for h in hits
            ], request, default_limit=100))

        @route("GET", "/search")
        def search(request: Request) -> Response:
            text, filters = self._parse_search_request(request)
            hits = self._search.search(
                text, filters, limit=max(self.repo.material_count(), 1),
            )
            payload = paginated([
                {"id": h.material.id, "title": h.material.title,
                 "kind": h.material.kind.value,
                 "collection": h.material.collection, "score": h.score}
                for h in hits
            ], request, default_limit=20)
            payload["mode"] = self._search.mode
            return json_response(payload)

        @route("GET", "/assignments/<int:id>/similar")
        def similar_assignments(request: Request) -> Response:
            material = self._material_or_404(request)
            assert material.id is not None
            try:
                hits = self._search.similar_to(
                    material.id, limit=request.query_int("limit", 10) or 10,
                )
            except KeyError as exc:
                raise HttpError(404, str(exc))
            return json_response({
                "material": material.title,
                "similar": [
                    {"id": h.material.id, "title": h.material.title,
                     "collection": h.material.collection, "score": h.score}
                    for h in hits
                ],
            })

        @route("POST", "/assignments")
        def create_assignment(request: Request) -> Response:
            body = request.json()
            if "title" not in body:
                raise HttpError(400, "'title' is required")
            try:
                material = Material(
                    title=body["title"],
                    description=body.get("description", ""),
                    kind=MaterialKind(body.get("kind", "assignment")),
                    authors=tuple(body.get("authors", ())),
                    url=body.get("url", ""),
                    course_level=(
                        CourseLevel(body["course_level"])
                        if body.get("course_level") else None
                    ),
                    languages=tuple(body.get("languages", ())),
                    datasets=tuple(body.get("datasets", ())),
                    tags=tuple(body.get("tags", ())),
                    collection=body.get("collection", ""),
                    year=body.get("year"),
                )
            except ValueError as exc:
                raise HttpError(400, str(exc))
            cs = self._parse_classification(body.get("classifications", []))
            try:
                stored = self.repo.add_material(material, cs)
            except (ValueError, KeyError) as exc:
                raise HttpError(400, str(exc))
            return json_response(_material_payload(self.repo, stored), status=201)

        @route("GET", "/assignments/<int:id>")
        def get_assignment(request: Request) -> Response:
            material = self._material_or_404(request)
            return json_response(_material_payload(self.repo, material))

        @route("PATCH", "/assignments/<int:id>")
        def update_assignment(request: Request) -> Response:
            material = self._material_or_404(request)
            body = request.json()
            allowed = {"title", "description", "url", "collection", "year"}
            changes = {k: v for k, v in body.items() if k in allowed}
            if not changes:
                raise HttpError(400, f"nothing to update; allowed: {sorted(allowed)}")
            assert material.id is not None
            updated = self.repo.update_material(material.id, **changes)
            return json_response(_material_payload(self.repo, updated))

        @route("DELETE", "/assignments/<int:id>")
        def delete_assignment(request: Request) -> Response:
            material = self._material_or_404(request)
            assert material.id is not None
            self.repo.delete_material(material.id)
            return json_response({"deleted": material.id})

        @route("POST", "/assignments/<int:id>/classifications")
        def add_classification(request: Request) -> Response:
            material = self._material_or_404(request)
            body = request.json()
            cs = self._parse_classification([body])
            assert material.id is not None
            for item in cs.items():
                try:
                    self.repo.classify(
                        material.id, item.ontology, item.key, bloom=item.bloom
                    )
                except KeyError as exc:
                    raise HttpError(400, str(exc))
            return json_response(
                _material_payload(self.repo, self.repo.get_material(material.id)),
                status=201,
            )

        @route("DELETE", "/assignments/<int:id>/classifications")
        def remove_classification(request: Request) -> Response:
            material = self._material_or_404(request)
            key = request.query_one("key")
            if not key:
                raise HttpError(400, "query parameter 'key' is required")
            assert material.id is not None
            removed = self.repo.declassify(material.id, key)
            if not removed:
                raise HttpError(404, f"material not classified under {key!r}")
            return json_response({"removed": key})

        @route("GET", "/ontologies")
        def list_ontologies(request: Request) -> Response:
            return json_response({
                "ontologies": [
                    {"name": name, "entries": len(onto),
                     "areas": [a.label for a in onto.areas()]}
                    for name, onto in sorted(self.repo.ontologies.items())
                ]
            })

        @route("GET", "/ontologies/<name>/entries")
        def search_entries(request: Request) -> Response:
            name = request.params["name"]
            try:
                onto = self.repo.ontology(name)
            except KeyError as exc:
                raise HttpError(404, str(exc))
            phrase = request.query_one("search", "") or ""
            if phrase:
                nodes = onto.search(phrase, limit=len(onto))
            else:
                nodes = onto.nodes()
            return json_response(paginated([
                {"key": n.key, "label": n.label, "kind": n.kind.value,
                 "path": onto.path_string(n.key)}
                for n in nodes
            ], request, default_limit=50))

        @route("GET", "/coverage")
        def coverage(request: Request) -> Response:
            collection = request.query_one("collection")
            ontology = request.query_one("ontology")
            if not collection or not ontology:
                raise HttpError(400, "'collection' and 'ontology' are required")
            try:
                onto = self.repo.ontology(ontology)
            except KeyError as exc:
                raise HttpError(404, str(exc))
            self._collection_ids(collection)  # 404 on unknown collection
            report = self.repo.coverage(ontology, collection=collection)
            return json_response({
                "collection": collection,
                "ontology": ontology,
                "n_materials": report.n_materials,
                "areas": [
                    {"code": area.code, "label": area.label, "count": count}
                    for area, count in report.area_ranking(onto)
                ],
                "entries_touched": len(report.rollup_counts),
            })

        @route("GET", "/similarity")
        def similarity(request: Request) -> Response:
            left = request.query_one("left")
            right = request.query_one("right")
            if not left or not right:
                raise HttpError(400, "'left' and 'right' collections are required")
            threshold = request.query_int("threshold", 2) or 2
            graph = self.repo.similarity(
                self._collection_ids(left),
                self._collection_ids(right),
                threshold=threshold,
                left_group=left,
                right_group=right,
            )
            return json_response({
                "threshold": threshold,
                "nodes": [
                    {"id": n, "group": d["group"], "title": d["title"],
                     "degree": graph.degree(n)}
                    for n, d in graph.nodes(data=True)
                ],
                "edges": [
                    {"left": u, "right": v, "shared": d["shared"],
                     "shared_keys": list(d["shared_keys"])}
                    for u, v, d in graph.edges(data=True)
                ],
            })

        @route("GET", "/gaps")
        def gaps(request: Request) -> Response:
            reference = request.query_one("reference")
            candidate = request.query_one("candidate")
            ontology = request.query_one("ontology", "CS13") or "CS13"
            if not reference or not candidate:
                raise HttpError(400, "'reference' and 'candidate' are required")
            try:
                onto = self.repo.ontology(ontology)
            except KeyError as exc:
                raise HttpError(404, str(exc))
            self._collection_ids(reference)
            self._collection_ids(candidate)
            ref = self.repo.coverage(ontology, collection=reference)
            cand = self.repo.coverage(ontology, collection=candidate)
            report = find_gaps(
                onto, ref, cand,
                reference_name=reference, candidate_name=candidate,
            )
            return json_response({
                "ontology": ontology,
                "alignment": report.alignment,
                "missing_in_candidate": [
                    {"key": e.key, "path": e.path,
                     "reference_count": e.reference_count}
                    for e in report.top_development_targets(20)
                ],
                "unique_to_candidate": [
                    {"key": e.key, "path": e.path,
                     "candidate_count": e.candidate_count}
                    for e in report.unique_to_candidate[:20]
                ],
            })

        @route("POST", "/recommend")
        def recommend(request: Request) -> Response:
            body = request.json()
            text = body.get("text", "")
            selected = body.get("selected", [])
            if not text and not selected:
                raise HttpError(400, "'text' or 'selected' is required")
            # The fitted recommender is memoized in the repository cache
            # until the classification tables mutate.
            recs = self.repo.recommend(text, selected, top=body.get("top", 10))
            return json_response({
                "suggestions": [
                    {"key": r.key, "score": r.score, "source": r.source}
                    for r in recs
                ]
            })

        @route("GET", "/assignments/<int:id>/variants")
        def variants(request: Request) -> Response:
            from repro.analysis.variants import find_variants

            material = self._material_or_404(request)
            assert material.id is not None
            hits = find_variants(
                self.repo, material.id,
                min_overlap=request.query_int("min_overlap", 2) or 2,
                limit=request.query_int("limit", 10) or 10,
            )
            return json_response({
                "material": material.title,
                "variants": [
                    {
                        "id": h.material.id,
                        "title": h.material.title,
                        "overlap": h.overlap,
                        "jaccard": h.jaccard,
                        "differing_facets": list(h.differing_facets),
                    }
                    for h in hits
                ],
            })

        @route("GET", "/assignments/<int:id>/lint")
        def lint(request: Request) -> Response:
            from repro.analysis.consistency import lint_material

            material = self._material_or_404(request)
            assert material.id is not None
            findings = lint_material(self.repo, material.id)
            return json_response({
                "material": material.title,
                "findings": [
                    {"rule": f.rule, "detail": f.detail} for f in findings
                ],
            })

        @route("GET", "/plan")
        def plan(request: Request) -> Response:
            from repro.analysis.planner import core_targets, plan_course
            from repro.core.ontology import Tier

            ontology = request.query_one("ontology", "PDC12") or "PDC12"
            try:
                onto = self.repo.ontology(ontology)
            except KeyError as exc:
                raise HttpError(404, str(exc))
            tiers = (Tier.CORE, Tier.CORE1)
            max_materials = request.query_int("max_materials")
            course = plan_course(
                self.repo, ontology, core_targets(onto, tiers),
                max_materials=max_materials,
            )
            return json_response({
                "ontology": ontology,
                "coverage_ratio": course.coverage_ratio,
                "picks": [
                    {"id": p.material_id, "title": p.title,
                     "newly_covered": list(p.newly_covered)}
                    for p in course.picks
                ],
                "uncovered": sorted(course.uncovered),
            })

        @route("GET", "/stats")
        def stats(request: Request) -> Response:
            return json_response(self.repo.stats())

        # The observability endpoints serve identically on the current
        # surface — same handler objects, no Sunset header.  Resource
        # routes get genuinely redesigned shapes in repro.web.v2; these
        # are operational plumbing, not resources.
        router.add("GET", f"{API_V2_PREFIX}/healthz", healthz)
        router.add("GET", f"{API_V2_PREFIX}/metrics", metrics)
        router.add("GET", f"{API_V2_PREFIX}/replication", replication_status)
        router.add("GET", f"{API_V2_PREFIX}/slo", slo)
        router.add("GET", f"{API_V2_PREFIX}/traces", list_traces)
        router.add("GET", f"{API_V2_PREFIX}/traces/<trace_id>", get_trace)
