"""Course planning: select materials to cover target curriculum entries.

The CS13 guidelines "provide numerous exemplars of actual courses"; the
CAR-CS classification data makes the inverse direction computable — given
the topics an instructor must cover (e.g. every PDC12 core topic, or a
knowledge-unit list from a syllabus), pick a small set of classified
materials that covers them.  Weighted greedy set cover gives the standard
(1 + ln n)-approximation; the report also lists what remained uncoverable
with the current repository (feeding back into the gap analysis of
Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.ontology import NodeKind, Ontology, Tier
from repro.core.repository import Repository


@dataclass
class PlannedMaterial:
    material_id: int
    title: str
    newly_covered: tuple[str, ...]   # target keys this pick added


@dataclass
class CoursePlan:
    ontology: str
    targets: frozenset[str]
    picks: list[PlannedMaterial] = field(default_factory=list)
    uncovered: frozenset[str] = frozenset()

    @property
    def covered(self) -> frozenset[str]:
        return self.targets - self.uncovered

    @property
    def coverage_ratio(self) -> float:
        if not self.targets:
            return 1.0
        return len(self.covered) / len(self.targets)

    def format(self, ontology: Ontology) -> str:
        lines = [
            f"Course plan over {self.ontology}: {len(self.picks)} materials "
            f"cover {len(self.covered)}/{len(self.targets)} targets "
            f"({self.coverage_ratio:.0%})",
        ]
        for pick in self.picks:
            lines.append(f"  + {pick.title}")
            for key in pick.newly_covered:
                lines.append(f"      covers {ontology.path_string(key)}")
        if self.uncovered:
            lines.append("  Uncovered (no material in the repository):")
            for key in sorted(self.uncovered):
                lines.append(f"      {ontology.path_string(key)}")
        return "\n".join(lines)


def core_targets(ontology: Ontology, tiers: Sequence[Tier]) -> frozenset[str]:
    """All topic keys of the given requirement tiers — e.g. every PDC12
    core topic, the natural 'what must my course cover' target set."""
    return frozenset(
        n.key
        for n in ontology.nodes()
        if n.kind is NodeKind.TOPIC and n.tier in tiers
    )


def plan_course(
    repo: Repository,
    ontology_name: str,
    targets: Iterable[str],
    *,
    max_materials: int | None = None,
    collections: Sequence[str] = (),
) -> CoursePlan:
    """Greedy weighted set cover of ``targets`` by classified materials.

    Each step picks the material covering the most still-uncovered
    targets (ties broken by fewer total classifications — prefer focused
    materials — then by id for determinism).  ``collections`` restricts
    the candidate pool.
    """
    onto = repo.ontology(ontology_name)
    target_set = frozenset(targets)
    unknown = [k for k in target_set if k not in onto]
    if unknown:
        raise KeyError(f"targets not in {ontology_name}: {sorted(unknown)[:3]}")

    wanted_collections = set(collections)
    coverage_by_material: dict[int, frozenset[str]] = {}
    sizes: dict[int, int] = {}
    for material in repo.materials():
        assert material.id is not None
        if wanted_collections and material.collection not in wanted_collections:
            continue
        keys = repo.classification_of(material.id).keys(ontology_name)
        covered = frozenset(keys) & target_set
        if covered:
            coverage_by_material[material.id] = covered
            sizes[material.id] = len(keys)

    plan = CoursePlan(ontology=ontology_name, targets=target_set)
    remaining = set(target_set)
    available = dict(coverage_by_material)
    while remaining and available:
        if max_materials is not None and len(plan.picks) >= max_materials:
            break
        best_id = max(
            available,
            key=lambda mid: (
                len(available[mid] & remaining),
                -sizes[mid],
                -mid,
            ),
        )
        gain = available[best_id] & remaining
        if not gain:
            break
        plan.picks.append(
            PlannedMaterial(
                material_id=best_id,
                title=repo.get_material(best_id).title,
                newly_covered=tuple(sorted(gain)),
            )
        )
        remaining -= gain
        del available[best_id]
    plan.uncovered = frozenset(remaining)
    return plan
