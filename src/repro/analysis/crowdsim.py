"""Discrete-event simulation of the crowdsourced curation model.

The paper's scaling argument is organizational: "a crowdsourced model can
be used to address the need for curation.  With such an approach,
instructors can upload their own material in the system and a number of
editors can review the uploaded materials" (Section III-A), with
auto-suggestion expected to "save time for the user" (Conclusion).

This module quantifies that argument: an M/G/c-style discrete-event
simulation of submissions arriving at a pool of editors.  Review time per
item is the paper's measured 15–25 minutes, reduced by a configurable
factor when classification auto-suggest is enabled (ABL-2 shows the
suggester proposes most of the right entries, leaving verification).
Outputs: queue length over time, time-to-publish percentiles, editor
utilization, and sustainable throughput — the numbers a workshop would
need to size its editor pool.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np


@dataclass
class CurationConfig:
    """Simulation knobs (times in minutes)."""

    n_editors: int = 3
    submissions_per_day: float = 20.0
    hours_per_day: float = 8.0
    review_min: float = 15.0          # the paper's measured range
    review_max: float = 25.0
    autosuggest: bool = False
    autosuggest_speedup: float = 0.4  # fraction of review time saved
    rework_probability: float = 0.1   # submission bounced back once
    horizon_days: float = 30.0
    seed: int = 2019

    @property
    def arrival_rate(self) -> float:
        """Submissions per working minute."""
        return self.submissions_per_day / (self.hours_per_day * 60.0)


@dataclass
class CurationResult:
    config: CurationConfig
    published: int
    mean_queue_length: float
    max_queue_length: int
    mean_sojourn_minutes: float      # submit -> published
    p90_sojourn_minutes: float
    editor_utilization: float        # busy time / capacity
    backlog_at_end: int

    def stable(self) -> bool:
        """Did the queue stay bounded (no runaway backlog)?"""
        return self.backlog_at_end <= 2 * self.config.n_editors


def _review_minutes(config: CurationConfig, rng: np.random.Generator) -> float:
    base = rng.uniform(config.review_min, config.review_max)
    if config.autosuggest:
        base *= 1.0 - config.autosuggest_speedup
    return base


def simulate(config: CurationConfig) -> CurationResult:
    """Run the curation queue to the horizon; returns aggregate metrics.

    Event-driven: a heap of (time, kind, payload) events; editors are a
    counting resource; queue discipline is FIFO.  Working time is
    modelled as continuous (a "minute" is a working minute).
    """
    rng = np.random.default_rng(config.seed)
    horizon = config.horizon_days * config.hours_per_day * 60.0

    # Pre-draw arrivals (Poisson process via exponential gaps).
    arrivals: list[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / config.arrival_rate)
        if t >= horizon:
            break
        arrivals.append(t)

    events: list[tuple[float, int, str, int]] = []  # (time, seq, kind, id)
    seq = 0
    for i, at in enumerate(arrivals):
        events.append((at, seq, "submit", i))
        seq += 1
    heapq.heapify(events)

    queue: list[int] = []
    free_editors = config.n_editors
    submit_time: dict[int, float] = {}
    start_time: dict[int, float] = {}
    sojourns: list[float] = []
    reworked: set[int] = set()

    busy_minutes = 0.0
    queue_area = 0.0
    last_time = 0.0
    max_queue = 0
    published = 0

    def start_review(now: float) -> None:
        nonlocal free_editors, seq
        while free_editors > 0 and queue:
            item = queue.pop(0)
            free_editors -= 1
            start_time[item] = now
            duration = _review_minutes(config, rng)
            heapq.heappush(events, (now + duration, seq, "done", item))
            seq += 1

    while events:
        now, _, kind, item = heapq.heappop(events)
        if now > horizon:
            # The study window closes: whatever is still queued or under
            # review is the backlog the editor pool could not absorb.
            break
        queue_area += len(queue) * (now - last_time)
        last_time = now
        if kind == "submit":
            submit_time.setdefault(item, now)
            queue.append(item)
            max_queue = max(max_queue, len(queue))
            start_review(now)
        elif kind == "done":
            free_editors += 1
            busy_minutes += now - start_time[item]
            bounce = (
                item not in reworked
                and rng.random() < config.rework_probability
            )
            if bounce:
                # Editor sends it back; it re-enters the queue once.
                reworked.add(item)
                queue.append(item)
                max_queue = max(max_queue, len(queue))
            else:
                published += 1
                sojourns.append(now - submit_time[item])
            start_review(now)

    total_time = max(min(last_time, horizon), 1e-9)
    sojourn_arr = np.asarray(sojourns) if sojourns else np.zeros(1)
    return CurationResult(
        config=config,
        published=published,
        mean_queue_length=queue_area / total_time,
        max_queue_length=max_queue,
        mean_sojourn_minutes=float(sojourn_arr.mean()),
        p90_sojourn_minutes=float(np.percentile(sojourn_arr, 90)),
        editor_utilization=min(
            busy_minutes / (config.n_editors * total_time), 1.0
        ),
        backlog_at_end=len(queue),
    )


def editors_needed(
    submissions_per_day: float,
    *,
    autosuggest: bool = False,
    max_editors: int = 50,
    **overrides,
) -> int:
    """Smallest editor pool that keeps the queue stable at the given load.

    The sizing question a workshop chair actually asks ("a number of
    editors can review the uploaded materials" — how many?).
    """
    for n in range(1, max_editors + 1):
        result = simulate(CurationConfig(
            n_editors=n,
            submissions_per_day=submissions_per_day,
            autosuggest=autosuggest,
            **overrides,
        ))
        if result.stable() and result.editor_utilization < 0.95:
            return n
    return max_editors


def sweep_editor_pool(
    pool_sizes: tuple[int, ...] = (1, 2, 3, 5, 8),
    **config_overrides,
) -> list[CurationResult]:
    """One simulation per pool size (the capacity-planning curve)."""
    return [
        simulate(CurationConfig(n_editors=n, **config_overrides))
        for n in pool_sizes
    ]
