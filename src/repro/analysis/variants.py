"""Variant discovery: materials that could replace or re-skin each other.

Section III-A: classification "opens up several opportunities ... or look
for similarities to an existing material, and perhaps, to create variants
of an existing material."  A *variant* of a material covers substantially
the same curriculum entries but differs on a presentation facet —
programming language, course level, or dataset flavor — exactly what an
instructor porting an assignment to their course context needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.material import Material
from repro.core.repository import Repository


@dataclass
class VariantHit:
    material: Material
    overlap: int                 # shared classification entries
    jaccard: float
    differing_facets: tuple[str, ...]   # e.g. ("language", "course_level")


def _facet_differences(a: Material, b: Material) -> tuple[str, ...]:
    diffs = []
    if set(l.lower() for l in a.languages) != set(l.lower() for l in b.languages):
        diffs.append("language")
    if a.course_level != b.course_level:
        diffs.append("course_level")
    if bool(a.datasets) != bool(b.datasets) or set(a.datasets) != set(b.datasets):
        diffs.append("datasets")
    if a.kind != b.kind:
        diffs.append("kind")
    return tuple(diffs)


def find_variants(
    repo: Repository,
    material_id: int,
    *,
    min_overlap: int = 2,
    min_jaccard: float = 0.25,
    require_facet_difference: bool = True,
    limit: int = 10,
) -> list[VariantHit]:
    """Materials classification-similar to ``material_id`` but differing
    on at least one presentation facet.

    ``min_overlap`` uses the paper's shared-item currency; ``min_jaccard``
    filters out pairs that merely share ubiquitous entries.  Results are
    ordered by descending Jaccard, then overlap.
    """
    source = repo.get_material(material_id)
    source_cs = repo.classification_of(material_id)
    hits: list[VariantHit] = []
    for candidate in repo.materials():
        assert candidate.id is not None
        if candidate.id == material_id:
            continue
        cs = repo.classification_of(candidate.id)
        overlap = source_cs.shared_count(cs)
        if overlap < min_overlap:
            continue
        jaccard = source_cs.jaccard(cs)
        if jaccard < min_jaccard:
            continue
        diffs = _facet_differences(source, candidate)
        if require_facet_difference and not diffs:
            continue
        hits.append(
            VariantHit(
                material=candidate,
                overlap=overlap,
                jaccard=jaccard,
                differing_facets=diffs,
            )
        )
    hits.sort(key=lambda h: (-h.jaccard, -h.overlap, h.material.id or 0))
    return hits[:limit]


def variant_matrix(
    repo: Repository,
    collection: str,
    *,
    min_overlap: int = 2,
    min_jaccard: float = 0.25,
) -> dict[int, list[int]]:
    """For every material of a collection, its variant ids (same rules as
    :func:`find_variants`) — the bulk form used by reports."""
    out: dict[int, list[int]] = {}
    for material in repo.materials(collection):
        assert material.id is not None
        hits = find_variants(
            repo, material.id,
            min_overlap=min_overlap, min_jaccard=min_jaccard,
        )
        out[material.id] = [
            h.material.id for h in hits if h.material.id is not None
        ]
    return out
