"""Higher-level studies: community alignment, Bloom levels, ablations."""

from .ablation import (
    MetricComparison,
    ThresholdPoint,
    ancestor_expansion_effect,
    count_vs_jaccard,
    threshold_sweep,
)
from .alignment import (
    AreaAlignment,
    CommunityComparison,
    compare_communities,
    coverage_vector,
)
from .bloom import BloomGap, BloomReport, bloom_coverage
from .planner import CoursePlan, PlannedMaterial, core_targets, plan_course
from .statistics import (
    DistributionSummary,
    classification_sizes,
    collection_profile,
    entry_popularity,
    top_cooccurring_pairs,
)
from .consistency import Finding, lint_material, lint_repository
from .crowdsim import (
    CurationConfig,
    CurationResult,
    editors_needed,
    simulate,
    sweep_editor_pool,
)
from .variants import VariantHit, find_variants, variant_matrix

__all__ = [
    "CurationConfig",
    "Finding",
    "lint_material",
    "lint_repository",
    "CurationResult",
    "editors_needed",
    "simulate",
    "sweep_editor_pool",
    "VariantHit",
    "find_variants",
    "variant_matrix",
    "DistributionSummary",
    "classification_sizes",
    "collection_profile",
    "entry_popularity",
    "top_cooccurring_pairs",
    "CoursePlan",
    "PlannedMaterial",
    "core_targets",
    "plan_course",
    "AreaAlignment",
    "BloomGap",
    "BloomReport",
    "CommunityComparison",
    "MetricComparison",
    "ThresholdPoint",
    "ancestor_expansion_effect",
    "bloom_coverage",
    "compare_communities",
    "count_vs_jaccard",
    "coverage_vector",
    "threshold_sweep",
]
