"""Design-choice ablations (the ABL experiments of DESIGN.md).

The paper fixes the Figure 3 edge rule at "share two classification
items" without exploring alternatives.  These studies sweep the threshold
and compare count-based edges against Jaccard-normalized edges, showing
why 2 is the knee: threshold 1 floods the graph with incidental matches,
thresholds ≥ 3 dissolve the cluster the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.repository import Repository
from repro.core.similarity import (
    incidence,
    jaccard_matrix,
    shared_item_matrix,
    similarity_graph,
)


@dataclass
class ThresholdPoint:
    threshold: int
    edges: int
    isolated_left: int
    isolated_right: int
    components: int           # non-singleton connected components
    largest_component: int


def threshold_sweep(
    repo: Repository,
    left_ids: Sequence[int],
    right_ids: Sequence[int],
    thresholds: Sequence[int] = (1, 2, 3, 4, 5, 6),
) -> list[ThresholdPoint]:
    """Edge-rule sweep over shared-item thresholds."""
    out = []
    for threshold in thresholds:
        graph = similarity_graph(
            repo, left_ids, right_ids, threshold=threshold,
            left_group="left", right_group="right",
        )
        comps = [c for c in nx.connected_components(graph) if len(c) > 1]
        out.append(
            ThresholdPoint(
                threshold=threshold,
                edges=graph.number_of_edges(),
                isolated_left=sum(
                    1 for n, d in graph.nodes(data=True)
                    if d["group"] == "left" and graph.degree(n) == 0
                ),
                isolated_right=sum(
                    1 for n, d in graph.nodes(data=True)
                    if d["group"] == "right" and graph.degree(n) == 0
                ),
                components=len(comps),
                largest_component=max((len(c) for c in comps), default=0),
            )
        )
    return out


@dataclass
class MetricComparison:
    """Count-threshold vs Jaccard-threshold edge sets at matched density."""

    count_edges: int
    jaccard_edges: int
    common_edges: int

    @property
    def agreement(self) -> float:
        union = self.count_edges + self.jaccard_edges - self.common_edges
        return self.common_edges / union if union else 1.0


def count_vs_jaccard(
    repo: Repository,
    left_ids: Sequence[int],
    right_ids: Sequence[int],
    *,
    count_threshold: int = 2,
) -> MetricComparison:
    """Compare the paper's absolute-count rule against a Jaccard rule
    calibrated to produce (as nearly as possible) the same edge count."""
    a = incidence(repo, left_ids)
    b = incidence(repo, right_ids)
    shared = shared_item_matrix(a, b)
    jac = jaccard_matrix(a, b)

    count_set = {
        (i, j)
        for i, j in zip(*np.nonzero(shared >= count_threshold))
    }
    target = max(len(count_set), 1)
    # Pick the Jaccard cut that yields the closest edge count.
    flat = np.sort(jac.ravel())[::-1]
    cut = flat[min(target, flat.size) - 1]
    if cut <= 0.0:
        jac_set: set[tuple[int, int]] = set()
    else:
        jac_set = {(i, j) for i, j in zip(*np.nonzero(jac >= cut))}
    return MetricComparison(
        count_edges=len(count_set),
        jaccard_edges=len(jac_set),
        common_edges=len(count_set & jac_set),
    )


def ancestor_expansion_effect(
    repo: Repository,
    left_ids: Sequence[int],
    right_ids: Sequence[int],
    *,
    threshold: int = 2,
) -> dict[str, int]:
    """Ablation: does counting shared *ancestors* (units/areas) as items
    change the graph?  The paper counts only explicitly selected entries;
    expanding to ancestors inflates similarity for materials in the same
    knowledge area."""
    from repro.core.classification import expand_to_ancestors

    base = similarity_graph(repo, left_ids, right_ids, threshold=threshold)

    # Build expanded incidence manually.
    ontologies = repo.ontologies
    def expanded_keys(mid: int) -> frozenset[str]:
        cs = expand_to_ancestors(repo.classification_of(mid), ontologies)
        return frozenset(str(item.key) for item in cs.items())

    left_sets = {mid: expanded_keys(mid) for mid in left_ids}
    right_sets = {mid: expanded_keys(mid) for mid in right_ids}
    expanded_edges = 0
    for lmid, lkeys in left_sets.items():
        for rmid, rkeys in right_sets.items():
            if len(lkeys & rkeys) >= threshold:
                expanded_edges += 1
    return {
        "base_edges": base.number_of_edges(),
        "expanded_edges": expanded_edges,
    }
