"""Community-alignment analyses (the quantitative side of Section IV-C).

"Using standard classification is a way to measure the alignment between
different communities and set of assignments."  Beyond the single cosine
alignment score in :mod:`repro.core.gaps`, this module provides per-area
overlap profiles and the "what should the PDC community build next"
ranking that drives the paper's take-home message.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage import CoverageReport, compute_coverage
from repro.core.gaps import GapReport, find_gaps
from repro.core.ontology import NodeKind, Ontology
from repro.core.repository import Repository


@dataclass
class AreaAlignment:
    code: str
    label: str
    reference_count: int
    candidate_count: int
    overlap_entries: int       # entries covered by both corpora

    @property
    def balanced(self) -> bool:
        """Both communities invest here (each covers at least one entry)."""
        return self.reference_count > 0 and self.candidate_count > 0


@dataclass
class CommunityComparison:
    ontology: str
    reference_name: str
    candidate_name: str
    per_area: list[AreaAlignment]
    alignment: float
    gap_report: GapReport

    def misaligned_areas(self) -> list[AreaAlignment]:
        """Areas one community covers and the other ignores — the 'unless
        the PDC community develops assignments that align better ...'
        evidence."""
        return [a for a in self.per_area if not a.balanced
                and (a.reference_count > 0 or a.candidate_count > 0)]

    def format(self) -> str:
        lines = [
            f"Alignment of {self.candidate_name!r} with {self.reference_name!r} "
            f"over {self.ontology} (cosine = {self.alignment:.3f})",
            f"{'area':6s} {'ref':>4s} {'cand':>5s} {'both':>5s}",
        ]
        for area in self.per_area:
            lines.append(
                f"{area.code:6s} {area.reference_count:4d} "
                f"{area.candidate_count:5d} {area.overlap_entries:5d}"
            )
        lines.append("")
        lines.append("Top development targets for the candidate community:")
        for entry in self.gap_report.top_development_targets(8):
            lines.append(f"  ({entry.reference_count:2d} ref materials) {entry.path}")
        return "\n".join(lines)


def compare_communities(
    repo: Repository,
    reference_collection: str,
    candidate_collection: str,
    ontology_name: str = "CS13",
) -> CommunityComparison:
    """Full IV-C comparison between two collections."""
    onto = repo.ontology(ontology_name)
    ref = compute_coverage(repo, ontology_name, collection=reference_collection)
    cand = compute_coverage(repo, ontology_name, collection=candidate_collection)

    per_area = []
    for area in onto.areas():
        subtree = set(onto.subtree_keys(area.key))
        overlap = sum(
            1
            for key in subtree
            if ref.rollup_counts.get(key, 0) > 0
            and cand.rollup_counts.get(key, 0) > 0
            and onto.node(key).kind in (NodeKind.TOPIC, NodeKind.LEARNING_OUTCOME)
        )
        per_area.append(
            AreaAlignment(
                code=area.code,
                label=area.label,
                reference_count=ref.rollup_counts.get(area.key, 0),
                candidate_count=cand.rollup_counts.get(area.key, 0),
                overlap_entries=overlap,
            )
        )
    per_area.sort(key=lambda a: (-a.reference_count, a.code))

    gap_report = find_gaps(
        onto, ref, cand,
        reference_name=reference_collection,
        candidate_name=candidate_collection,
    )
    return CommunityComparison(
        ontology=ontology_name,
        reference_name=reference_collection,
        candidate_name=candidate_collection,
        per_area=per_area,
        alignment=gap_report.alignment,
        gap_report=gap_report,
    )


def coverage_vector(
    report: CoverageReport, ontology: Ontology
) -> np.ndarray:
    """Per-area rollup counts as a fixed-order vector (for clustering or
    plotting corpora against each other)."""
    return np.array(
        [report.rollup_counts.get(a.key, 0) for a in ontology.areas()],
        dtype=np.float64,
    )
