"""Descriptive statistics of a repository's classification data.

The IV-A discussion rests on distributional facts ("going quickly through
the classification would most likely get a poor classification", entries
per material, ontology hot spots).  This module computes them: per-
material classification-size distributions, per-entry popularity, the
most co-selected entry pairs ("topics commonly used together" — the raw
signal behind the co-occurrence recommender), and per-collection
summaries for reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.repository import Repository


@dataclass
class DistributionSummary:
    count: int
    mean: float
    median: float
    minimum: int
    maximum: int
    p90: float

    @classmethod
    def of(cls, values: Sequence[int]) -> "DistributionSummary":
        if not values:
            return cls(0, 0.0, 0.0, 0, 0, 0.0)
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            count=len(values),
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            minimum=int(arr.min()),
            maximum=int(arr.max()),
            p90=float(np.percentile(arr, 90)),
        )


def classification_sizes(
    repo: Repository, collection: str | None = None
) -> DistributionSummary:
    """Entries-per-material distribution (how richly curators classify)."""
    sizes = []
    for material in repo.materials(collection):
        assert material.id is not None
        sizes.append(len(repo.classification_of(material.id)))
    return DistributionSummary.of(sizes)


def entry_popularity(
    repo: Repository, ontology: str, *, top: int = 10
) -> list[tuple[str, int]]:
    """The hottest ontology entries (most classified-under), descending."""
    counts: dict[str, int] = {}
    for _, key in repo.classification_pairs():
        if key.split("/", 1)[0] == ontology:
            counts[key] = counts.get(key, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]


def top_cooccurring_pairs(
    repo: Repository, *, top: int = 10, min_count: int = 2
) -> list[tuple[str, str, int]]:
    """Entry pairs most often selected together on one material."""
    per_material: dict[int, set[str]] = {}
    for mid, key in repo.classification_pairs():
        per_material.setdefault(mid, set()).add(key)
    pair_counts: dict[tuple[str, str], int] = {}
    for keys in per_material.values():
        ordered = sorted(keys)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
    ranked = [
        (a, b, n) for (a, b), n in pair_counts.items() if n >= min_count
    ]
    ranked.sort(key=lambda t: (-t[2], t[0], t[1]))
    return ranked[:top]


def collection_profile(repo: Repository, collection: str) -> dict:
    """One-shot per-collection summary used by reports and the CLI."""
    materials = repo.materials(collection)
    sizes = classification_sizes(repo, collection)
    years = [m.year for m in materials if m.year is not None]
    languages: dict[str, int] = {}
    for m in materials:
        for lang in m.languages:
            languages[lang] = languages.get(lang, 0) + 1
    return {
        "collection": collection,
        "materials": len(materials),
        "kinds": {
            kind: sum(1 for m in materials if m.kind.value == kind)
            for kind in sorted({m.kind.value for m in materials})
        },
        "classification_sizes": sizes,
        "year_range": (min(years), max(years)) if years else None,
        "languages": dict(
            sorted(languages.items(), key=lambda kv: (-kv[1], kv[0]))
        ),
        "with_datasets": sum(1 for m in materials if m.datasets),
    }
