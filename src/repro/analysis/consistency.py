"""Classification consistency linting — the editor's review aid.

CAR-CS editors "can appropriately edit or fix classification issues with
a submitted material" (Section III-A).  This linter encodes the checks a
PDC-literate editor applies mechanically, so the human can focus on
judgment:

* **cross-ontology drift** — a material classified under CS13's Parallel
  and Distributed Computing area but carrying *no* PDC12 entries (or the
  reverse) is probably under-classified in one ontology;
* **orphan interior selections** — selecting a knowledge unit or area
  without any of its topics usually means the curator stopped early
  ("one could quickly make some selection but most likely doing so would
  miss relevant entries", IV-A);
* **over-broad selections** — more than a threshold of entries suggests
  box-ticking rather than curation;
* **bloom mismatches** — a demonstrated Bloom level above the entry's
  curriculum expectation is legal but worth an editor's glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.ontology import NodeKind
from repro.core.repository import Repository


@dataclass(frozen=True)
class Finding:
    material_id: int
    title: str
    rule: str       # "cross-ontology" | "orphan-interior" | "over-broad" | "bloom"
    detail: str


# CS13 subtrees whose selection implies the PDC12 ontology applies.
_CS13_PDC_AREAS = ("CS13/PD",)


def lint_material(
    repo: Repository,
    material_id: int,
    *,
    max_entries: int = 15,
) -> list[Finding]:
    """All findings for one material (empty list = clean)."""
    material = repo.get_material(material_id)
    cs = repo.classification_of(material_id)
    findings: list[Finding] = []

    def add(rule: str, detail: str) -> None:
        findings.append(Finding(material_id, material.title, rule, detail))

    cs13_keys = cs.keys("CS13")
    pdc_keys = cs.keys("PDC12")
    has_cs13_pd = any(
        any(key.startswith(area + "/") or key == area for area in _CS13_PDC_AREAS)
        for key in cs13_keys
    )
    if has_cs13_pd and "CS13" in repo.ontologies and "PDC12" in repo.ontologies:
        if not pdc_keys:
            add(
                "cross-ontology",
                "classified under CS13 Parallel and Distributed Computing "
                "but has no PDC12 entries",
            )
    if pdc_keys and "CS13" in repo.ontologies and not has_cs13_pd:
        add(
            "cross-ontology",
            "has PDC12 entries but no CS13 PD-area entries",
        )

    # Orphan interior selections per ontology.
    for onto_name in cs.ontologies():
        onto = repo.ontologies.get(onto_name)
        if onto is None:
            continue
        keys = cs.keys(onto_name)
        for key in keys:
            node = onto.get(key)
            if node is None or node.kind not in (NodeKind.AREA, NodeKind.UNIT):
                continue
            subtree = set(onto.subtree_keys(key)) - {key}
            if subtree and not (subtree & keys):
                add(
                    "orphan-interior",
                    f"{onto_name} {node.kind.value} "
                    f"{onto.path_string(key)!r} selected without any of "
                    f"its topics",
                )

    if len(cs) > max_entries:
        add(
            "over-broad",
            f"{len(cs)} classification entries (threshold {max_entries}) "
            "— verify this is curation, not box-ticking",
        )

    # Bloom levels above the curriculum expectation.
    for onto_name in cs.ontologies():
        onto = repo.ontologies.get(onto_name)
        if onto is None:
            continue
        for key in cs.keys(onto_name):
            node = onto.get(key)
            demonstrated = cs.bloom(onto_name, key)
            if (
                node is not None
                and node.bloom is not None
                and demonstrated is not None
                and demonstrated.rank() > node.bloom.rank()
            ):
                add(
                    "bloom",
                    f"{onto.path_string(key)!r}: demonstrated "
                    f"{demonstrated.value} exceeds the curriculum's "
                    f"{node.bloom.value} expectation",
                )
    return findings


def lint_repository(
    repo: Repository,
    *,
    collection: str | None = None,
    rules: Iterable[str] | None = None,
    max_entries: int = 15,
) -> list[Finding]:
    """Lint every (or one collection's) material; optionally filter rules."""
    wanted = set(rules) if rules is not None else None
    out: list[Finding] = []
    for material in repo.materials(collection):
        assert material.id is not None
        for finding in lint_material(
            repo, material.id, max_entries=max_entries
        ):
            if wanted is None or finding.rule in wanted:
                out.append(finding)
    return out
