"""Bloom-level coverage analysis — the paper's suggested extension.

Section IV-A argues that topic-level matching overstates coverage: a CS1
integration assignment and a full numerical-methods lecture "check the
box in the same way", and "since both CS13 and PDC12 guidelines have
incorporated Bloom levels, it would make sense to classify materials
with Bloom levels as well."  This module implements that analysis: given
materials classified *with* Bloom levels, compare each demonstrated level
against the curriculum's expected level and report under-taught topics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ontology import BloomLevel, NodeKind, Ontology
from repro.core.repository import Repository


@dataclass
class BloomGap:
    """A topic taught below the curriculum's expected mastery level."""

    key: str
    path: str
    expected: BloomLevel
    best_demonstrated: BloomLevel | None
    material_count: int

    @property
    def deficit(self) -> int:
        if self.best_demonstrated is None:
            return self.expected.rank() + 1
        return self.expected.rank() - self.best_demonstrated.rank()


@dataclass
class BloomReport:
    ontology: str
    met: list[BloomGap]          # expected level met or exceeded
    under: list[BloomGap]        # taught, but below the expected level
    untaught: list[BloomGap]     # expected topics with no material at all

    def summary(self) -> dict[str, int]:
        return {
            "met": len(self.met),
            "under_level": len(self.under),
            "untaught": len(self.untaught),
        }


def bloom_coverage(
    repo: Repository,
    ontology_name: str,
    *,
    collection: str | None = None,
) -> BloomReport:
    """Compare demonstrated vs expected Bloom levels per topic.

    Only topics that carry an expected Bloom level in the ontology are
    considered.  A material's classification without an explicit level is
    conservatively treated as the lowest level of its scale.
    """
    onto = repo.ontology(ontology_name)

    # Best demonstrated level and count per entry key.
    best: dict[str, BloomLevel] = {}
    counts: dict[str, int] = {}
    entries = repo.db.table("ontology_entries")
    for link in repo.material_classifications.table:
        entry = entries.get(link["ontology_entries_id"])
        if entry["ontology"] != ontology_name:
            continue
        if collection is not None:
            material = repo.db.table("materials").get(link["materials_id"])
            if material["collection"] != collection:
                continue
        key = entry["key"]
        counts[key] = counts.get(key, 0) + 1
        level = (
            BloomLevel(link["bloom"]) if link["bloom"] else BloomLevel.KNOW
        )
        current = best.get(key)
        if current is None or level.rank() > current.rank():
            best[key] = level

    met, under, untaught = [], [], []
    for node in onto.nodes():
        if node.kind is not NodeKind.TOPIC or node.bloom is None:
            continue
        gap = BloomGap(
            key=node.key,
            path=onto.path_string(node.key),
            expected=node.bloom,
            best_demonstrated=best.get(node.key),
            material_count=counts.get(node.key, 0),
        )
        if gap.best_demonstrated is None:
            untaught.append(gap)
        elif gap.deficit <= 0:
            met.append(gap)
        else:
            under.append(gap)

    under.sort(key=lambda g: (-g.deficit, g.key))
    untaught.sort(key=lambda g: (-g.expected.rank(), g.key))
    return BloomReport(
        ontology=ontology_name, met=met, under=under, untaught=untaught
    )
