"""The replica-side WAL applier.

A :class:`ReplicaApplier` owns a background thread that connects to a
:class:`~repro.replication.primary.PrimaryShipper`, announces its
current database version as the replication offset, and then applies
whatever the primary sends:

* ``snapshot`` → :meth:`Database.load_state` (bootstrap, catch-up past
  the primary's retention window, or a periodic mid-stream checkpoint).
  A checkpoint at or below the replica's version — a checkpoint that
  arrived mid-batch, after the frames it summarizes were already
  applied — is **skipped**, counted in ``checkpoints_skipped``; one
  ahead of the replica fast-forwards it.
* ``frames`` → :meth:`Database.apply_frame` per frame, in order.  Frames
  at or below the current version are idempotently skipped (the overlap
  right after a snapshot bootstrap).  A version *gap* raises
  :class:`RecoveryError` inside the engine — the applier treats the
  stream as poisoned, drops the connection and reconnects with offset
  ``-1``, forcing a clean snapshot re-bootstrap.
* ``heartbeat`` → records the primary's version and ship timestamp so
  lag stays observable through write-idle periods.

The applier only ever mutates the database through public engine entry
points, so replicas serve the full read surface from their own MVCC
snapshots with the same atomicity guarantees as a primary.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from typing import Any, Callable

from repro.db.engine import Database
from repro.db.errors import RecoveryError
from repro.obs import trace as _trace

from .protocol import ProtocolError, hello, recv_message, send_message

DEFAULT_RECONNECT_DELAY = 0.2


class ReplicaApplier:
    """Keep one database converged with a primary's shipped history."""

    role = "replica"

    def __init__(
        self,
        db: Database,
        address: tuple[str, int],
        *,
        replica_id: str | None = None,
        reconnect_delay: float = DEFAULT_RECONNECT_DELAY,
        on_snapshot: Callable[[], None] | None = None,
    ) -> None:
        self.db = db
        self.address = (address[0], int(address[1]))
        self.replica_id = replica_id or f"replica-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.reconnect_delay = reconnect_delay
        #: Called after every applied snapshot, outside the engine lock —
        #: the hook higher layers (``Repository``) use to rebind to the
        #: freshly loaded tables.
        self.on_snapshot = on_snapshot
        # Stream position as reported by the primary.
        self.primary_version = db.version
        self.primary_fseq: int | None = None
        self.applied_fseq: int | None = None
        self.last_message_ts: float | None = None
        self._behind_since: float | None = None
        # Counters.
        self.frames_applied = 0
        self.frames_skipped = 0
        self.snapshots_applied = 0
        self.checkpoints_skipped = 0
        self.heartbeats_seen = 0
        self.reconnects = 0
        self.apply_errors = 0
        self._connected = False
        self._force_snapshot = False
        self._accept_reset = False
        self._stopped = False
        self._ready = threading.Event()
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ReplicaApplier":
        self._thread = threading.Thread(
            target=self._run, name="carcs-replica-applier", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopped = True
        with self._lock:
            sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ReplicaApplier":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block until the first message from the primary has been
        applied (the replica is serving real state), or timeout."""
        return self._ready.wait(timeout)

    # -- the stream loop ---------------------------------------------------

    def _run(self) -> None:
        first = True
        while not self._stopped:
            if not first:
                self.reconnects += 1
                time.sleep(self.reconnect_delay)
            first = False
            try:
                sock = socket.create_connection(self.address, timeout=5)
            except OSError:
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(None)
            with self._lock:
                if self._stopped:
                    sock.close()
                    return
                self._sock = sock
            try:
                offset = -1 if self._force_snapshot else self.db.version
                # Having asked for a fresh bootstrap, accept the next
                # snapshot even if it runs backward from diverged state.
                self._accept_reset = self._force_snapshot
                self._force_snapshot = False
                send_message(sock, hello(self.replica_id, offset))
                self._connected = True
                while not self._stopped:
                    message = recv_message(sock)
                    if message is None:
                        break  # primary closed the stream cleanly
                    self.handle_message(message)
                    self._ready.set()
            except (ProtocolError, OSError):
                pass  # transport tore; reconnect with current offset
            except RecoveryError:
                # The stream and this database diverged (version gap or
                # apply divergence): local state is unusable as an
                # offset.  Re-bootstrap from a fresh snapshot.
                self.apply_errors += 1
                self._force_snapshot = True
            finally:
                self._connected = False
                with self._lock:
                    self._sock = None
                try:
                    sock.close()
                except OSError:
                    pass

    # -- message handling (public so tests can drive it directly) ---------

    def handle_message(self, message: dict[str, Any]) -> None:
        """Apply one primary → replica message to the database.

        Runs under :class:`~repro.obs.trace.no_deadline`: replication
        apply must converge regardless of any request deadline leaked
        into the calling context (inline appliers in tests, embedded
        topologies) — aborting a half-applied batch would only force a
        snapshot re-bootstrap, which costs far more than finishing.
        """
        kind = message.get("type")
        with _trace.no_deadline():
            if kind == "snapshot":
                self._handle_snapshot(message)
            elif kind == "frames":
                self._handle_frames(message)
            elif kind == "heartbeat":
                self.heartbeats_seen += 1
                self._note_position(message["pv"], message.get("fseq"),
                                   message.get("ts"))
            else:
                raise ProtocolError(f"unexpected message type {kind!r}")

    def _handle_snapshot(self, message: dict[str, Any]) -> None:
        version = message["version"]
        # ``reset`` marks a primary-ordered re-bootstrap: this replica's
        # history diverged, so the snapshot applies even though its
        # version runs backward.  Plain checkpoints at or below the
        # current version are skipped — applying one mid-batch would
        # only rewind readers.
        reset = bool(message.get("reset")) or self._accept_reset
        if version <= self.db.version and not reset:
            self.checkpoints_skipped += 1
        else:
            # Origin attributes name the primary commit position this
            # snapshot embodies, so a fleet view correlates the apply
            # span with the shipper's side.
            with _trace.span(
                "replication.apply_snapshot", version=version,
                origin_fseq=message.get("fseq"),
                origin_ts=message.get("ts"),
            ):
                self.db.load_state(message["data"])
            self.snapshots_applied += 1
            # Re-anchor: any position learned from the diverged past is
            # meaningless after a reset.
            self.primary_version = version
            if self.on_snapshot is not None:
                self.on_snapshot()
        self._accept_reset = False
        self.applied_fseq = message.get("fseq", self.applied_fseq)
        self._note_position(version, message.get("fseq"), message.get("ts"))

    def _handle_frames(self, message: dict[str, Any]) -> None:
        items = message.get("items", [])
        # origin_pv/origin_fseq: the primary version and frame sequence
        # this batch came from — the commit origin a fleet trace view
        # shows next to the replica's apply latency.
        with _trace.span(
            "replication.apply_frames", frames=len(items),
            origin_pv=message.get("pv"), origin_fseq=message.get("fseq"),
            origin_ts=message.get("ts"),
        ):
            for frame in items:
                if self.db.apply_frame(frame):
                    self.frames_applied += 1
                else:
                    self.frames_skipped += 1
        self.applied_fseq = message.get("fseq", self.applied_fseq)
        self._note_position(message["pv"], message.get("fseq"),
                           message.get("ts"))

    def _note_position(self, primary_version: int, fseq: int | None,
                       ts: float | None) -> None:
        self.primary_version = max(self.primary_version, primary_version)
        if fseq is not None:
            self.primary_fseq = max(self.primary_fseq or 0, fseq)
        if ts is not None:
            self.last_message_ts = ts
        if self.primary_version > self.db.version:
            if self._behind_since is None:
                self._behind_since = ts if ts is not None else time.time()
        else:
            self._behind_since = None

    # -- observability -----------------------------------------------------

    def lag_frames(self) -> int:
        """Shipped-but-unapplied frames, from the latest fseq the primary
        advertised.  0 while position is unknown (pre-bootstrap)."""
        if self.primary_fseq is None or self.applied_fseq is None:
            return 0
        return max(0, self.primary_fseq - self.applied_fseq)

    def lag_seconds(self) -> float:
        """How long this replica has been behind the newest version it
        knows the primary reached (0.0 when caught up)."""
        if self.primary_version <= self.db.version:
            return 0.0
        behind_since = self._behind_since
        if behind_since is None:
            return 0.0
        return max(0.0, time.time() - behind_since)

    def status(self) -> dict[str, Any]:
        """The ``/api/v1/replication`` payload on a replica node."""
        host, port = self.address
        return {
            "role": self.role,
            "replica_id": self.replica_id,
            "primary_address": f"{host}:{port}",
            "connected": self._connected,
            "applied_version": self.db.version,
            "primary_version": self.primary_version,
            "lag_versions": max(0, self.primary_version - self.db.version),
            "lag_frames": self.lag_frames(),
            "lag_seconds": round(self.lag_seconds(), 6),
            "frames_applied": self.frames_applied,
            "frames_skipped": self.frames_skipped,
            "snapshots_applied": self.snapshots_applied,
            "checkpoints_skipped": self.checkpoints_skipped,
            "heartbeats_seen": self.heartbeats_seen,
            "reconnects": self.reconnects,
            "apply_errors": self.apply_errors,
        }


__all__ = ["ReplicaApplier", "DEFAULT_RECONNECT_DELAY"]
