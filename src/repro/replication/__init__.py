"""WAL-shipping replication: primary shipper, replica applier, protocol.

The storage core (:mod:`repro.db`) commits every mutation as one atomic
WAL frame.  This package ships those frames — plus periodic snapshot
checkpoints — over TCP so N read-replica processes converge on the
primary's state and serve the full read surface from their own MVCC
snapshots.  Database version counters double as replication offsets;
the front tier (:mod:`repro.web.front`) uses them for read-your-writes
session guarantees.
"""

from .primary import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_RETAIN_FRAMES,
    PrimaryShipper,
    frame_start,
)
from .protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    encode_message,
    frames_message,
    heartbeat_message,
    hello,
    recv_message,
    send_message,
    snapshot_message,
)
from .replica import DEFAULT_RECONNECT_DELAY, ReplicaApplier

__all__ = [
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_RECONNECT_DELAY",
    "DEFAULT_RETAIN_FRAMES",
    "MAX_MESSAGE_BYTES",
    "PrimaryShipper",
    "ProtocolError",
    "ReplicaApplier",
    "encode_message",
    "frame_start",
    "frames_message",
    "heartbeat_message",
    "hello",
    "recv_message",
    "send_message",
    "snapshot_message",
]
