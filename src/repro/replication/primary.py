"""The primary-side WAL shipper.

A :class:`PrimaryShipper` sits next to a live :class:`~repro.db.Database`
and streams its committed history to any number of read replicas over
TCP (:mod:`repro.replication.protocol`).  It subscribes to the engine's
commit hook, so every committed frame lands in a bounded in-memory
retention buffer the moment it publishes; per-replica sender threads
drain the buffer from each replica's offset.

Bootstrap and catch-up use **snapshot checkpoints**: a replica whose
offset falls before the retention window (or who asks with offset
``-1``) receives a full ``database_to_dict`` capture and then streams
frames from the capture's version.  With ``checkpoint_every=N`` the
shipper also sends a fresh snapshot every N shipped frames mid-stream —
the periodic checkpoint that bounds how far a replica restarted from
scratch has to replay.

Offsets are the engine's **database version counter**: frame ``{"v": V}``
advances a replica to version ``V``, and a replica's hello carries its
current version.  Frame *sequence numbers* (``fseq``) count shipped
frames since the shipper started and ride along on every message, so
replicas can report lag in whole frames as well as versions.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Any

from repro.db.engine import Database
from repro.db.snapshot import database_to_dict
from repro.obs import trace as _trace

from .protocol import (
    ProtocolError,
    frames_message,
    heartbeat_message,
    recv_message,
    send_message,
    snapshot_message,
)

#: Frames retained for catch-up before a reconnecting replica is forced
#: through a snapshot bootstrap instead.
DEFAULT_RETAIN_FRAMES = 4096

#: Seconds between heartbeats on a write-idle stream (also the stop-flag
#: poll interval of sender threads).
DEFAULT_HEARTBEAT_INTERVAL = 0.5


def frame_start(frame: dict[str, Any]) -> int:
    """The database version a frame applies on top of."""
    versioned = sum(1 for op in frame["ops"] if op["o"] != "create_index")
    return frame["v"] - versioned


class PrimaryShipper:
    """Stream committed WAL frames (+ snapshot checkpoints) to replicas."""

    role = "primary"

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        retain_frames: int = DEFAULT_RETAIN_FRAMES,
        checkpoint_every: int = 0,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    ) -> None:
        self.db = db
        self.retain_frames = max(1, retain_frames)
        self.checkpoint_every = max(0, checkpoint_every)
        self.heartbeat_interval = heartbeat_interval
        # Retention buffer: (fseq, frame) in commit order, guarded by the
        # condition that wakes sender threads on every commit.
        self._cond = threading.Condition()
        self._frames: deque[tuple[int, dict[str, Any]]] = deque()
        self._fseq = 0
        self._stopped = False
        # Offsets below the floor cannot be served from the buffer and
        # fall back to a snapshot.  Attach the listener *before* reading
        # the floor under the write lock: with the lock held no commit is
        # in flight, so the floor is exact.
        self.db.add_commit_listener(self._on_commit)
        with self.db.lock.write():
            with self._cond:
                if self._frames:
                    self._floor = frame_start(self._frames[0][1])
                else:
                    self._floor = self.db.version
        # Counters (read without locks — approximate under concurrency).
        self.frames_shipped = 0
        self.snapshots_shipped = 0
        self.heartbeats_sent = 0
        self._connected = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(32)
        self._sock.settimeout(0.2)
        # Cached at bind time so status() keeps working after stop().
        self._address = self._sock.getsockname()[:2]
        self._accept_thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._address
        return host, port

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> "PrimaryShipper":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="carcs-shipper-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self.db.remove_commit_listener(self._on_commit)
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "PrimaryShipper":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- commit hook -------------------------------------------------------

    def _on_commit(self, frame: dict[str, Any]) -> None:
        with self._cond:
            self._fseq += 1
            self._frames.append((self._fseq, frame))
            while len(self._frames) > self.retain_frames:
                _, evicted = self._frames.popleft()
                self._floor = evicted["v"]
            self._cond.notify_all()

    # -- serving -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            with self._cond:
                if self._stopped:
                    return
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed by stop()
            threading.Thread(
                target=self._serve_replica, args=(conn,),
                name="carcs-shipper-conn", daemon=True,
            ).start()

    def _capture_snapshot(self) -> tuple[dict[str, Any], int]:
        """One consistent capture + the fseq it corresponds to.

        Taken under the write lock so no commit lands between the capture
        and the fseq read — frames after this fseq are exactly the
        frames after the capture's version.
        """
        with self.db.lock.write():
            data = database_to_dict(self.db)
            with self._cond:
                return data, self._fseq

    def _next_batch(
        self, sent_version: int,
    ) -> tuple[str, list[dict[str, Any]], int]:
        """What to send a replica that has everything up to
        ``sent_version``: ``("frames", batch, fseq)`` with the retained
        frames above it, ``("snapshot", [], 0)`` when retention has
        evicted past its offset, or ``("idle", [], fseq)``."""
        with self._cond:
            if self._stopped:
                return "stop", [], 0
            if sent_version < self._floor:
                return "snapshot", [], 0
            batch = [
                frame for _, frame in self._frames if frame["v"] > sent_version
            ]
            if not batch:
                self._cond.wait(self.heartbeat_interval)
                if self._stopped:
                    return "stop", [], 0
                if sent_version < self._floor:
                    return "snapshot", [], 0
                batch = [
                    frame for _, frame in self._frames
                    if frame["v"] > sent_version
                ]
            return ("frames" if batch else "idle"), batch, self._fseq

    def _serve_replica(self, conn: socket.socket) -> None:
        self._connected += 1
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = recv_message(conn)
            if hello is None or hello.get("type") != "hello":
                return
            sent = int(hello.get("offset", -1))
            # A replica from the future (diverged history, or offsets
            # from some other primary) re-bootstraps too — its snapshot
            # is tagged ``reset`` so the replica applies it even though
            # the version runs *backward* from its diverged state.
            if sent > self.db.version or sent < self._floor:
                sent = self._send_snapshot(conn, reset=sent > self.db.version)
            since_checkpoint = 0
            while True:
                kind, batch, fseq = self._next_batch(sent)
                if kind == "stop":
                    return
                if kind == "snapshot":
                    sent = self._send_snapshot(conn)
                    since_checkpoint = 0
                elif kind == "frames":
                    with _trace.span(
                        "replication.ship", frames=len(batch),
                    ):
                        send_message(conn, frames_message(
                            batch, self.db.version, time.time(),
                        ) | {"fseq": fseq})
                    sent = batch[-1]["v"]
                    self.frames_shipped += len(batch)
                    since_checkpoint += len(batch)
                    if (self.checkpoint_every
                            and since_checkpoint >= self.checkpoint_every):
                        # Periodic mid-stream checkpoint: bounds replay
                        # for replicas restarted from this point on.
                        sent = max(sent, self._send_snapshot(conn))
                        since_checkpoint = 0
                else:
                    send_message(conn, heartbeat_message(
                        self.db.version, time.time(),
                    ) | {"fseq": fseq})
                    self.heartbeats_sent += 1
        except (ProtocolError, OSError):
            pass  # replica hung up / transport tore; it will reconnect
        finally:
            self._connected -= 1
            try:
                conn.close()
            except OSError:
                pass

    def _send_snapshot(self, conn: socket.socket, *, reset: bool = False) -> int:
        data, fseq = self._capture_snapshot()
        extra: dict[str, Any] = {"fseq": fseq}
        if reset:
            extra["reset"] = True
        with _trace.span("replication.checkpoint", version=data["version"]):
            send_message(conn, snapshot_message(data, time.time()) | extra)
        self.snapshots_shipped += 1
        return data["version"]

    # -- observability -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        """The ``/api/v1/replication`` payload on a primary node."""
        with self._cond:
            retained = len(self._frames)
            floor = self._floor
            fseq = self._fseq
        host, port = self.address
        return {
            "role": self.role,
            "address": f"{host}:{port}",
            "version": self.db.version,
            "connected_replicas": self._connected,
            "frames_shipped": self.frames_shipped,
            "snapshots_shipped": self.snapshots_shipped,
            "heartbeats_sent": self.heartbeats_sent,
            "retained_frames": retained,
            "floor_version": floor,
            "fseq": fseq,
        }
