"""Length-prefixed, checksummed replication wire protocol.

WAL shipping runs over plain TCP.  Every message is one framed record —
the same shape as an on-disk WAL record, so the codec guarantees match::

    [4 bytes little-endian payload length][4 bytes CRC-32][payload]

where the payload is UTF-8 JSON.  A short read mid-message or a CRC
mismatch raises :class:`ProtocolError`; a clean EOF *between* messages
reads as ``None`` (the peer hung up at a frame boundary).

Message vocabulary (``type`` field):

* ``hello`` (replica → primary): ``{"type", "replica_id", "offset"}``.
  ``offset`` is the replica's current database version — the replication
  offset.  ``-1`` forces a snapshot bootstrap.
* ``snapshot`` (primary → replica): a full ``database_to_dict`` capture
  plus its version and ship timestamp.  Sent for bootstrap, for
  catch-up past the retained frame window, and periodically as a
  checkpoint mid-stream.
* ``frames`` (primary → replica): a batch of committed WAL frames in
  commit order, plus the primary's current version (``pv``) and ship
  timestamp — the numbers replica lag is computed from.
* ``heartbeat`` (primary → replica): ``pv`` + timestamp with no frames;
  keeps lag observable through write-idle periods.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Any

_HEADER = struct.Struct("<II")  # payload length, crc32

#: A message claiming more than this is treated as protocol corruption,
#: not allocated.  Snapshots of large corpora are the biggest messages;
#: this matches the WAL's own record bound.
MAX_MESSAGE_BYTES = 256 * 1024 * 1024


class ProtocolError(Exception):
    """Torn, corrupt or oversized replication message."""


def encode_message(message: dict[str, Any]) -> bytes:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def send_message(sock: socket.socket, message: dict[str, Any]) -> int:
    """Frame and send one message; returns its encoded size in bytes."""
    blob = encode_message(message)
    sock.sendall(blob)
    return len(blob)


def _recv_exact(sock: socket.socket, n: int, *, start: bool) -> bytes | None:
    """Read exactly ``n`` bytes.  ``None`` on clean EOF before the first
    byte of a message (``start=True``); :class:`ProtocolError` on EOF
    mid-message — the stream tore inside a record."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if start and remaining == n:
                return None
            raise ProtocolError(
                f"short read: peer closed {remaining} bytes before the "
                f"end of a {n}-byte segment"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict[str, Any] | None:
    """Receive one framed message; ``None`` on clean EOF at a boundary."""
    header = _recv_exact(sock, _HEADER.size, start=True)
    if header is None:
        return None
    length, crc = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message claims {length} bytes (corrupt length)")
    payload = _recv_exact(sock, length, start=False)
    assert payload is not None
    if zlib.crc32(payload) != crc:
        raise ProtocolError("message CRC mismatch")
    try:
        message = json.loads(payload.decode("utf-8"))
    except ValueError as exc:
        raise ProtocolError(f"malformed message payload: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("message must be an object with a 'type'")
    return message


# -- message constructors ---------------------------------------------------


def hello(replica_id: str, offset: int) -> dict[str, Any]:
    return {"type": "hello", "replica_id": replica_id, "offset": offset}


def snapshot_message(data: dict[str, Any], ts: float) -> dict[str, Any]:
    return {
        "type": "snapshot",
        "version": data.get("version", 0),
        "data": data,
        "ts": ts,
    }


def frames_message(
    items: list[dict[str, Any]], primary_version: int, ts: float,
) -> dict[str, Any]:
    return {"type": "frames", "items": items, "pv": primary_version, "ts": ts}


def heartbeat_message(primary_version: int, ts: float) -> dict[str, Any]:
    return {"type": "heartbeat", "pv": primary_version, "ts": ts}
