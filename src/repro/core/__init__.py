"""CAR-CS core: the paper's primary contribution.

Ontology trees, the material model, classification sets, the repository,
and the analyses built on them (coverage, similarity, gaps, search,
recommendation, reports).
"""

from .cache import AnalyticsCache, CacheStats, Memo
from .classification import (
    ClassificationItem,
    ClassificationSet,
    expand_to_ancestors,
    validate_against,
)
from .coverage import CoverageNode, CoverageReport, compare_coverage, compute_coverage
from .gaps import GapEntry, GapReport, alignment_score, curriculum_holes, find_gaps
from .material import CourseLevel, Material, MaterialKind, normalize_authors
from .ontology import BloomLevel, NodeKind, Ontology, OntologyNode, Tier
from .recommend import (
    CooccurrenceRecommender,
    HybridRecommender,
    Recommendation,
    TextKnnRecommender,
    TextNbRecommender,
    evaluate_knn_loo_fast,
    evaluate_leave_one_out,
)
from .report import ClassReport, class_report, coverage_summary_table
from .repository import PermissionError_, Repository, Role, SubmissionStatus
from .search import SearchEngine, SearchFilters, SearchHit
from .similarity import (
    MaterialVectorSpace,
    SimilarityEdge,
    clusters,
    edges_with_shared_keys,
    incidence,
    isolated_materials,
    jaccard_matrix,
    shared_item_matrix,
    similarity_graph,
)

__all__ = [
    "AnalyticsCache",
    "BloomLevel",
    "CacheStats",
    "ClassReport",
    "ClassificationItem",
    "ClassificationSet",
    "CooccurrenceRecommender",
    "CourseLevel",
    "CoverageNode",
    "CoverageReport",
    "GapEntry",
    "GapReport",
    "HybridRecommender",
    "Material",
    "MaterialKind",
    "MaterialVectorSpace",
    "Memo",
    "NodeKind",
    "Ontology",
    "OntologyNode",
    "PermissionError_",
    "Recommendation",
    "Repository",
    "Role",
    "SearchEngine",
    "SearchFilters",
    "SearchHit",
    "SimilarityEdge",
    "SubmissionStatus",
    "TextKnnRecommender",
    "TextNbRecommender",
    "Tier",
    "alignment_score",
    "class_report",
    "clusters",
    "compare_coverage",
    "compute_coverage",
    "coverage_summary_table",
    "curriculum_holes",
    "edges_with_shared_keys",
    "evaluate_knn_loo_fast",
    "evaluate_leave_one_out",
    "expand_to_ancestors",
    "find_gaps",
    "incidence",
    "isolated_materials",
    "jaccard_matrix",
    "normalize_authors",
    "shared_item_matrix",
    "similarity_graph",
    "validate_against",
]
