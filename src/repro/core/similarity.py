"""Similarity between materials via shared classification items.

Section IV-D / Figure 3: "A Nifty assignment and a Peachy assignment are
said to be similar if they share two classification items and this
similarity is represented by an edge."  This module generalizes that
rule: shared-item counts between two material sets (or within one set)
are computed with one vectorised binary-matrix multiply, then thresholded
into a :mod:`networkx` graph.  Jaccard and cosine weights are exposed for
the ablation study (why "two shared items"?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from .repository import Repository


@dataclass
class MaterialVectorSpace:
    """Binary material × ontology-entry incidence matrix."""

    material_ids: list[int]
    entry_keys: list[str]
    matrix: np.ndarray  # (n_materials, n_entries), float64 of {0.0, 1.0}

    @property
    def n(self) -> int:
        return len(self.material_ids)

    def row_of(self, material_id: int) -> np.ndarray:
        return self.matrix[self.material_ids.index(material_id)]


def incidence(
    repo: Repository,
    material_ids: Sequence[int],
    *,
    ontologies: Iterable[str] | None = None,
) -> MaterialVectorSpace:
    """Build the binary incidence matrix for the given materials.

    ``ontologies`` restricts which classification namespaces contribute
    (Figure 3 uses both; the ablation can isolate one).
    """
    onto_filter = set(ontologies) if ontologies is not None else None
    per_material: dict[int, set[str]] = {mid: set() for mid in material_ids}
    wanted = set(material_ids)
    for mid, key in repo.classification_pairs():
        if mid not in wanted:
            continue
        if onto_filter is not None:
            name = key.split("/", 1)[0]
            if name not in onto_filter:
                continue
        per_material[mid].add(key)
    entry_keys = sorted(set().union(*per_material.values()) if per_material else set())
    index = {k: i for i, k in enumerate(entry_keys)}
    matrix = np.zeros((len(material_ids), len(entry_keys)), dtype=np.float64)
    for row, mid in enumerate(material_ids):
        for key in per_material[mid]:
            matrix[row, index[key]] = 1.0
    return MaterialVectorSpace(list(material_ids), entry_keys, matrix)


def shared_item_matrix(
    a: MaterialVectorSpace, b: MaterialVectorSpace | None = None
) -> np.ndarray:
    """Pairwise counts of shared classification items.

    One matrix multiply over aligned binary matrices — the hot loop of the
    Figure 3 computation, vectorised per the HPC guide.
    """
    if b is None:
        return a.matrix @ a.matrix.T
    # Align the two entry vocabularies onto their union.
    union = sorted(set(a.entry_keys) | set(b.entry_keys))
    index = {k: i for i, k in enumerate(union)}

    def lift(space: MaterialVectorSpace) -> np.ndarray:
        lifted = np.zeros((space.n, len(union)), dtype=np.float64)
        cols = [index[k] for k in space.entry_keys]
        lifted[:, cols] = space.matrix
        return lifted

    return lift(a) @ lift(b).T


def jaccard_matrix(
    a: MaterialVectorSpace, b: MaterialVectorSpace | None = None
) -> np.ndarray:
    """Pairwise Jaccard similarity of classification sets."""
    shared = shared_item_matrix(a, b)
    sa = a.matrix.sum(axis=1)
    sb = sa if b is None else b.matrix.sum(axis=1)
    union = sa[:, None] + sb[None, :] - shared
    with np.errstate(invalid="ignore", divide="ignore"):
        jac = np.where(union > 0, shared / union, 0.0)
    return jac


@dataclass
class SimilarityEdge:
    left_id: int
    right_id: int
    shared: int
    shared_keys: tuple[str, ...]


# Tables whose mutation changes a similarity answer (titles come from
# materials; the incidence matrix from the classification link tables).
_SIMILARITY_TABLES = ("material_classifications", "ontology_entries", "materials")


def similarity_graph(
    repo: Repository,
    left_ids: Sequence[int],
    right_ids: Sequence[int] | None = None,
    *,
    threshold: int = 2,
    ontologies: Iterable[str] | None = None,
    left_group: str = "left",
    right_group: str = "right",
) -> nx.Graph:
    """The Figure 3 graph.

    Nodes are material ids annotated with ``group`` and ``title``; an edge
    joins a left and a right material sharing at least ``threshold``
    classification items (edge attributes: ``shared`` count and the
    ``shared_keys`` themselves).  With ``right_ids=None`` the graph is
    built within one set (self-pairs excluded).

    Results are memoized through ``repo.cache`` on the classification
    tables' mutation versions; every call returns a private
    ``Graph.copy()`` so callers may annotate the graph freely.
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    cache = getattr(repo, "cache", None)
    if cache is None:
        return _similarity_graph(
            repo, left_ids, right_ids, threshold=threshold,
            ontologies=ontologies, left_group=left_group, right_group=right_group,
        )
    key = (
        tuple(left_ids),
        tuple(right_ids) if right_ids is not None else None,
        threshold,
        tuple(sorted(ontologies)) if ontologies is not None else None,
        left_group,
        right_group,
    )
    return cache.get_or_compute(
        "similarity_graph", key, _SIMILARITY_TABLES,
        lambda: _similarity_graph(
            repo, left_ids, right_ids, threshold=threshold,
            ontologies=ontologies, left_group=left_group, right_group=right_group,
        ),
        copy=lambda g: g.copy(),
    )


def _similarity_graph(
    repo: Repository,
    left_ids: Sequence[int],
    right_ids: Sequence[int] | None = None,
    *,
    threshold: int = 2,
    ontologies: Iterable[str] | None = None,
    left_group: str = "left",
    right_group: str = "right",
) -> nx.Graph:
    cross = right_ids is not None
    a = incidence(repo, left_ids, ontologies=ontologies)
    b = incidence(repo, right_ids, ontologies=ontologies) if cross else None

    graph = nx.Graph()
    for mid in left_ids:
        graph.add_node(mid, group=left_group, title=repo.get_material(mid).title)
    if cross:
        assert right_ids is not None
        for mid in right_ids:
            graph.add_node(
                mid, group=right_group, title=repo.get_material(mid).title
            )

    shared = shared_item_matrix(a, b)
    rows, cols = np.nonzero(shared >= threshold)
    left_sets = {mid: set() for mid in a.material_ids}
    for row, mid in enumerate(a.material_ids):
        left_sets[mid] = {
            a.entry_keys[j] for j in np.nonzero(a.matrix[row])[0]
        }
    if cross:
        assert b is not None
        right_sets = {}
        for row, mid in enumerate(b.material_ids):
            right_sets[mid] = {
                b.entry_keys[j] for j in np.nonzero(b.matrix[row])[0]
            }
    else:
        right_sets = left_sets

    for r, c in zip(rows.tolist(), cols.tolist()):
        left_mid = a.material_ids[r]
        right_mid = (b or a).material_ids[c]
        if not cross:
            if left_mid >= right_mid:  # dedupe the symmetric matrix
                continue
        keys = tuple(sorted(left_sets[left_mid] & right_sets[right_mid]))
        graph.add_edge(
            left_mid, right_mid, shared=int(shared[r, c]), shared_keys=keys
        )
    return graph


def isolated_materials(graph: nx.Graph, group: str | None = None) -> list[int]:
    """Nodes with no edge — "most assignments have no similar assignment
    in the other set" (Section IV-D)."""
    out = []
    for node, data in graph.nodes(data=True):
        if group is not None and data.get("group") != group:
            continue
        if graph.degree(node) == 0:
            out.append(node)
    return sorted(out)


def clusters(graph: nx.Graph, *, min_size: int = 2) -> list[set[int]]:
    """Connected components with at least ``min_size`` nodes, largest first."""
    comps = [set(c) for c in nx.connected_components(graph) if len(c) >= min_size]
    comps.sort(key=lambda c: (-len(c), min(c)))
    return comps


def edges_with_shared_keys(graph: nx.Graph) -> list[SimilarityEdge]:
    out = []
    for u, v, data in graph.edges(data=True):
        out.append(
            SimilarityEdge(
                left_id=min(u, v),
                right_id=max(u, v),
                shared=data["shared"],
                shared_keys=data["shared_keys"],
            )
        )
    out.sort(key=lambda e: (-e.shared, e.left_id, e.right_id))
    return out
