"""Coverage analysis: how many materials touch each ontology entry.

This is the machinery behind Figure 2: "The classification are shown as a
tree where ... The color intensity of the node is proportional to the
number of material that matches that entry of the ontology ... Ontology
entry absent from the materials are transparent and their children are
not included."  The same counts drive the Section IV-B/IV-C narratives
(area rankings, untouched areas).

Counts are computed in one pass over the repository's classification
pairs; a node's count includes materials classified at the node itself
*or anywhere in its subtree* (classifying a topic means the knowledge
unit and area are touched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .ontology import NodeKind, Ontology, OntologyNode
from .repository import Repository


@dataclass
class CoverageNode:
    """One entry of a pruned coverage tree."""

    key: str
    label: str
    code: str
    depth: int
    count: int            # materials touching this entry or its subtree
    direct: int           # materials classified exactly at this entry
    children: list["CoverageNode"] = field(default_factory=list)


@dataclass
class CoverageReport:
    """Coverage of one material set against one ontology."""

    ontology: str
    n_materials: int
    direct_counts: dict[str, int]           # key -> #materials right here
    rollup_counts: dict[str, int]           # key -> #materials in subtree
    covered_material_ids: set[int]

    # -- ranking / rollups ---------------------------------------------------

    def area_ranking(self, ontology: Ontology) -> list[tuple[OntologyNode, int]]:
        """First-level areas ordered by descending material count.

        Reproduces statements like "Most of the classified topics falls in
        the Programming category, followed by the Algorithm category"
        (Section IV-B).
        """
        ranked = [
            (area, self.rollup_counts.get(area.key, 0))
            for area in ontology.areas()
        ]
        ranked.sort(key=lambda pair: (-pair[1], pair[0].key))
        return ranked

    def covered_areas(self, ontology: Ontology) -> list[OntologyNode]:
        return [a for a, c in self.area_ranking(ontology) if c > 0]

    def uncovered_areas(self, ontology: Ontology) -> list[OntologyNode]:
        """Areas with zero materials — the 'untouched' areas of IV-B."""
        return [a for a, c in self.area_ranking(ontology) if c == 0]

    def count(self, key: str) -> int:
        return self.rollup_counts.get(key, 0)

    def is_covered(self, key: str) -> bool:
        return self.rollup_counts.get(key, 0) > 0

    def kind_breakdown(self, ontology: Ontology) -> dict[NodeKind, int]:
        """Directly-classified entries per node kind.

        The schema "separat[es] topics and learning outcomes" (III-B);
        this shows how a corpus uses that distinction — e.g. whether
        curators select outcomes at all or stay at the topic level.
        """
        counts: dict[NodeKind, int] = {}
        for key in self.direct_counts:
            node = ontology.get(key)
            if node is None:
                continue
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    def coverage_ratio(self, ontology: Ontology, *, within: str | None = None) -> float:
        """Fraction of entries (optionally inside subtree ``within``)
        touched by at least one material."""
        keys = (
            ontology.subtree_keys(within)
            if within is not None
            else [n.key for n in ontology.nodes()]
        )
        keys = [k for k in keys if k != ontology.root.key]
        if not keys:
            return 0.0
        covered = sum(1 for k in keys if self.is_covered(k))
        return covered / len(keys)

    # -- tree building -----------------------------------------------------------

    def tree(self, ontology: Ontology, *, prune: bool = True,
             max_depth: int | None = None) -> CoverageNode:
        """The Figure 2 tree: rooted at the ontology root, children of
        uncovered entries pruned (``prune=True`` mirrors the figure's
        "their children are not included")."""

        def build(node: OntologyNode, depth: int) -> CoverageNode:
            cov = CoverageNode(
                key=node.key,
                label=node.label,
                code=node.code,
                depth=depth,
                count=self.rollup_counts.get(node.key, 0),
                direct=self.direct_counts.get(node.key, 0),
            )
            if max_depth is not None and depth >= max_depth:
                return cov
            for child in ontology.children(node.key):
                child_count = self.rollup_counts.get(child.key, 0)
                if prune and child_count == 0:
                    continue
                cov.children.append(build(child, depth + 1))
            return cov

        root = build(ontology.root, 0)
        root.count = len(self.covered_material_ids)
        return root


# Tables whose mutation changes a coverage answer.
_COVERAGE_TABLES = ("material_classifications", "ontology_entries", "materials")


def compute_coverage(
    repo: Repository,
    ontology_name: str,
    *,
    collection: str | None = None,
    material_ids: Iterable[int] | None = None,
) -> CoverageReport:
    """Coverage of a material set (a collection, explicit ids, or all
    materials) against one ontology.

    Results are memoized through ``repo.cache`` keyed on the
    classification tables' mutation versions (the ``material_ids`` form
    is not cached: ad-hoc id sets rarely repeat).  Cached reports are
    shared — treat them as read-only.
    """
    cache = getattr(repo, "cache", None)
    if cache is None or material_ids is not None:
        return _compute_coverage(
            repo, ontology_name, collection=collection, material_ids=material_ids
        )
    return cache.get_or_compute(
        "compute_coverage",
        (ontology_name, collection),
        _COVERAGE_TABLES,
        lambda: _compute_coverage(repo, ontology_name, collection=collection),
    )


def _compute_coverage(
    repo: Repository,
    ontology_name: str,
    *,
    collection: str | None = None,
    material_ids: Iterable[int] | None = None,
) -> CoverageReport:
    onto = repo.ontology(ontology_name)
    wanted = set(material_ids) if material_ids is not None else None

    # key -> set of material ids classified exactly there
    direct_sets: dict[str, set[int]] = {}
    for mid, key in repo.classification_pairs(collection):
        if wanted is not None and mid not in wanted:
            continue
        if key in onto:
            direct_sets.setdefault(key, set()).add(mid)

    # Roll material sets up the tree; sets (not counts) are propagated so a
    # material classified under two topics of the same unit counts once.
    rollup_sets: dict[str, set[int]] = {}

    def roll(key: str) -> set[int]:
        acc = set(direct_sets.get(key, ()))
        for child in onto.node(key).children:
            acc |= roll(child)
        if acc:
            rollup_sets[key] = acc
        return acc

    all_covered = roll(onto.root.key)

    n_materials = (
        len(wanted) if wanted is not None
        else repo.material_count(collection)
    )
    return CoverageReport(
        ontology=ontology_name,
        n_materials=n_materials,
        direct_counts={k: len(s) for k, s in direct_sets.items()},
        rollup_counts={
            k: len(s) for k, s in rollup_sets.items() if k != onto.root.key
        },
        covered_material_ids=all_covered,
    )


def compare_coverage(
    reports: Mapping[str, CoverageReport], ontology: Ontology
) -> list[tuple[str, list[tuple[str, int]]]]:
    """Side-by-side area rankings for several material sets.

    Returns ``[(set name, [(area label, count), ...]), ...]`` — the raw
    series behind the Figure 2 caption comparison and the IV-C argument.
    """
    out = []
    for name, report in reports.items():
        ranking = [
            (area.label, count)
            for area, count in report.area_ranking(ontology)
        ]
        out.append((name, ranking))
    return out
