"""Material ↔ ontology classification mappings.

A classification is the set of ontology entries a material covers.  The
paper additionally argues (Section IV-A) that "it would make sense to
classify materials with Bloom levels as well" — an optional
:class:`~repro.core.ontology.BloomLevel` is therefore carried on each
mapping, implementing that suggested extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .ontology import BloomLevel, Ontology


@dataclass(frozen=True)
class ClassificationItem:
    """One (ontology, entry) pair a material is classified under."""

    ontology: str
    key: str
    bloom: BloomLevel | None = None

    def __str__(self) -> str:
        suffix = f" @{self.bloom.value}" if self.bloom else ""
        return f"{self.key}{suffix}"


class ClassificationSet:
    """The full classification of one material across all ontologies.

    Thin wrapper over a dict ``ontology name -> {key: bloom-or-None}``
    with set-algebra helpers (shared items drive the Figure 3 similarity
    graph).
    """

    def __init__(self) -> None:
        self._items: dict[str, dict[str, BloomLevel | None]] = {}

    @classmethod
    def from_items(cls, items: Iterable[ClassificationItem]) -> "ClassificationSet":
        cs = cls()
        for item in items:
            cs.add(item.ontology, item.key, item.bloom)
        return cs

    def add(
        self, ontology: str, key: str, bloom: BloomLevel | None = None
    ) -> None:
        self._items.setdefault(ontology, {})[key] = bloom

    def remove(self, ontology: str, key: str) -> bool:
        bucket = self._items.get(ontology)
        if bucket is None or key not in bucket:
            return False
        del bucket[key]
        if not bucket:
            del self._items[ontology]
        return True

    def has(self, ontology: str, key: str) -> bool:
        return key in self._items.get(ontology, {})

    def bloom(self, ontology: str, key: str) -> BloomLevel | None:
        return self._items.get(ontology, {}).get(key)

    def keys(self, ontology: str) -> frozenset[str]:
        return frozenset(self._items.get(ontology, {}))

    def ontologies(self) -> list[str]:
        return sorted(self._items)

    def items(self) -> list[ClassificationItem]:
        out = []
        for onto in sorted(self._items):
            for key, bloom in sorted(self._items[onto].items()):
                out.append(ClassificationItem(onto, key, bloom))
        return out

    def __len__(self) -> int:
        return sum(len(b) for b in self._items.values())

    def __bool__(self) -> bool:
        return bool(self._items)

    # -- set algebra -----------------------------------------------------------

    def shared_with(self, other: "ClassificationSet", ontology: str) -> frozenset[str]:
        """Entries both sets carry in ``ontology`` — the paper's similarity
        signal ("share two classification items", Section IV-D)."""
        return self.keys(ontology) & other.keys(ontology)

    def shared_count(self, other: "ClassificationSet") -> int:
        """Shared entries across all ontologies."""
        total = 0
        for onto in self._items:
            total += len(self.shared_with(other, onto))
        return total

    def union_count(self, other: "ClassificationSet") -> int:
        ontos = set(self._items) | set(other._items)
        return sum(len(self.keys(o) | other.keys(o)) for o in ontos)

    def jaccard(self, other: "ClassificationSet") -> float:
        union = self.union_count(other)
        if union == 0:
            return 0.0
        return self.shared_count(other) / union


def validate_against(
    cs: ClassificationSet, ontologies: Mapping[str, Ontology]
) -> list[str]:
    """Return problems (empty list = valid): unknown ontology names or keys.

    The repository's editorial workflow ("an editor ... can appropriately
    edit or fix classification issues") calls this before accepting a
    submission.
    """
    problems = []
    for onto_name in cs.ontologies():
        onto = ontologies.get(onto_name)
        if onto is None:
            problems.append(f"unknown ontology {onto_name!r}")
            continue
        for key in sorted(cs.keys(onto_name)):
            if key not in onto:
                problems.append(f"{onto_name}: unknown entry {key!r}")
    return problems


def expand_to_ancestors(
    cs: ClassificationSet, ontologies: Mapping[str, Ontology]
) -> ClassificationSet:
    """A new set where every classified entry also implies its ancestors.

    Selecting a topic implies its knowledge unit and area are touched;
    the coverage trees of Figure 2 color interior nodes this way.
    """
    out = ClassificationSet()
    for item in cs.items():
        onto = ontologies[item.ontology]
        out.add(item.ontology, item.key, item.bloom)
        for ancestor in onto.ancestors(item.key):
            if ancestor.parent is not None:  # skip the synthetic root
                if not out.has(item.ontology, ancestor.key):
                    out.add(item.ontology, ancestor.key, None)
    return out
