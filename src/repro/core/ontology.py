"""Curriculum ontology trees.

The paper classifies materials against two "well accepted content
ontologies" — ACM/IEEE CS2013 and NSF/IEEE-TCPP PDC2012 — and stores each
classification entry "with a key, the key of the parent, a string
description, and type (separating topics and learning outcomes)"
(Section III-B).  This module provides exactly that representation plus
the tree operations every analysis in the paper relies on: ancestor and
subtree traversal, per-area rollups, depth, and phrase search (the tree
widget in Figure 1b highlights entries matching a typed word or phrase).

Both classifications "are usually hierarchical"; the paper notes the model
"could be extended if the classifications were DAGs instead of trees" —
that extension is implemented here as optional ``cross_links`` (PDC12's
cross-cutting topics reference their sibling areas without breaking the
tree shape).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator


class NodeKind(enum.Enum):
    """What an ontology entry is.

    CS13 divides the body of knowledge into knowledge *areas*, then
    knowledge *units*, which contain *topics* and *learning outcomes*.
    PDC12 uses areas, sub-areas (modelled as UNIT), and topics whose
    learning outcomes are folded into the topic text.
    """

    ROOT = "root"
    AREA = "area"
    UNIT = "unit"
    TOPIC = "topic"
    LEARNING_OUTCOME = "learning_outcome"


class Tier(enum.Enum):
    """Coverage requirement tier.

    CS13: core-1 (must cover 100%), core-2 (should cover ≥80%), elective.
    PDC12 "only exposes two levels: core and elective" — mapped to CORE
    and ELECTIVE here.
    """

    CORE1 = "core1"
    CORE2 = "core2"
    CORE = "core"
    ELECTIVE = "elective"
    NONE = "none"


class BloomLevel(enum.Enum):
    """Expected mastery level attached to entries.

    PDC12 uses Know / Comprehend / Apply; CS13 expresses its learning
    outcomes as Familiarity / Usage / Assessment.  Both are kept in one
    enum with an explicit ordering so coverage analyses can compare a
    material's demonstrated level with the curriculum's expectation.
    """

    KNOW = "know"
    COMPREHEND = "comprehend"
    APPLY = "apply"
    FAMILIARITY = "familiarity"
    USAGE = "usage"
    ASSESSMENT = "assessment"

    def rank(self) -> int:
        """Position within the level's own scale (both scales are 3 deep)."""
        order = {
            BloomLevel.KNOW: 0,
            BloomLevel.FAMILIARITY: 0,
            BloomLevel.COMPREHEND: 1,
            BloomLevel.USAGE: 1,
            BloomLevel.APPLY: 2,
            BloomLevel.ASSESSMENT: 2,
        }
        return order[self]


@dataclass
class OntologyNode:
    """One entry of a classification ontology.

    ``key`` is the stable hierarchical identifier (e.g. ``"CS13/PD/PD.2/t3"``),
    ``code`` the short display code for tagged first-level nodes in
    Figure 2 (e.g. ``"PD"``), and ``label`` the human-readable description.
    """

    key: str
    label: str
    kind: NodeKind
    parent: str | None = None
    code: str = ""
    tier: Tier = Tier.NONE
    bloom: BloomLevel | None = None
    hours: float = 0.0
    cross_links: tuple[str, ...] = ()
    children: list[str] = field(default_factory=list)

    def is_leaf(self) -> bool:
        return not self.children


class Ontology:
    """An immutable-after-build classification tree with fast lookups."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._nodes: dict[str, OntologyNode] = {}
        root = OntologyNode(key=name, label=name, kind=NodeKind.ROOT)
        self._nodes[name] = root
        self.root = root

    # -- construction -------------------------------------------------------

    def add(
        self,
        key: str,
        label: str,
        kind: NodeKind,
        parent: str | None = None,
        *,
        code: str = "",
        tier: Tier = Tier.NONE,
        bloom: BloomLevel | None = None,
        hours: float = 0.0,
        cross_links: tuple[str, ...] = (),
    ) -> OntologyNode:
        """Insert a node under ``parent`` (default: the root)."""
        if key in self._nodes:
            raise ValueError(f"duplicate ontology key {key!r}")
        parent_key = parent if parent is not None else self.root.key
        if parent_key not in self._nodes:
            raise KeyError(f"unknown parent {parent_key!r} for {key!r}")
        node = OntologyNode(
            key=key,
            label=label,
            kind=kind,
            parent=parent_key,
            code=code,
            tier=tier,
            bloom=bloom,
            hours=hours,
            cross_links=cross_links,
        )
        self._nodes[key] = node
        self._nodes[parent_key].children.append(key)
        return node

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation.

        Invariants: single root; every non-root node has an existing
        parent that lists it as a child exactly once; no cycles; every
        cross link resolves.
        """
        seen: set[str] = set()
        stack = [self.root.key]
        while stack:
            key = stack.pop()
            if key in seen:
                raise ValueError(f"cycle or duplicate reachability at {key!r}")
            seen.add(key)
            node = self._nodes[key]
            for child in node.children:
                if child not in self._nodes:
                    raise ValueError(f"{key!r} lists unknown child {child!r}")
                if self._nodes[child].parent != key:
                    raise ValueError(f"parent/child mismatch at {child!r}")
                stack.append(child)
        unreachable = set(self._nodes) - seen
        if unreachable:
            raise ValueError(f"unreachable nodes: {sorted(unreachable)[:5]}")
        for node in self._nodes.values():
            for link in node.cross_links:
                if link not in self._nodes:
                    raise ValueError(
                        f"{node.key!r} cross-links to unknown {link!r}"
                    )

    # -- lookups --------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        """Number of entries, excluding the synthetic root.

        The paper reports "the CS13 classification contains about 3000
        entries" — this is the count that claim refers to.
        """
        return len(self._nodes) - 1

    def node(self, key: str) -> OntologyNode:
        try:
            return self._nodes[key]
        except KeyError:
            raise KeyError(f"{self.name} has no entry {key!r}") from None

    def get(self, key: str) -> OntologyNode | None:
        return self._nodes.get(key)

    def children(self, key: str) -> list[OntologyNode]:
        return [self._nodes[c] for c in self.node(key).children]

    def parent(self, key: str) -> OntologyNode | None:
        p = self.node(key).parent
        return self._nodes[p] if p is not None else None

    def areas(self) -> list[OntologyNode]:
        """First-level nodes (the tagged nodes of Figure 2)."""
        return self.children(self.root.key)

    # -- traversal --------------------------------------------------------------

    def walk(self, start: str | None = None) -> Iterator[OntologyNode]:
        """Pre-order traversal from ``start`` (default: root), root included."""
        start_key = start if start is not None else self.root.key
        stack = [start_key]
        while stack:
            key = stack.pop()
            node = self._nodes[key]
            yield node
            stack.extend(reversed(node.children))

    def subtree_keys(self, key: str) -> list[str]:
        return [n.key for n in self.walk(key)]

    def ancestors(self, key: str) -> list[OntologyNode]:
        """Path from the node's parent up to (and including) the root."""
        out = []
        current = self.node(key).parent
        while current is not None:
            node = self._nodes[current]
            out.append(node)
            current = node.parent
        return out

    def path(self, key: str) -> list[OntologyNode]:
        """Root-to-node path, node included."""
        chain = list(reversed(self.ancestors(key)))
        chain.append(self.node(key))
        return chain

    def path_string(self, key: str, separator: str = "::") -> str:
        """Human-readable path like the paper's
        ``Programming::Performance Issue::Data`` notation (root omitted)."""
        return separator.join(n.label for n in self.path(key)[1:])

    def depth(self, key: str) -> int:
        """Root has depth 0; areas depth 1; and so on."""
        return len(self.ancestors(key))

    def area_of(self, key: str) -> OntologyNode | None:
        """The first-level ancestor a node rolls up to (itself if an area)."""
        node = self.node(key)
        if node.kind is NodeKind.ROOT:
            return None
        while node.parent is not None and node.parent != self.root.key:
            node = self._nodes[node.parent]
        return node

    def leaves(self, start: str | None = None) -> list[OntologyNode]:
        return [n for n in self.walk(start) if n.is_leaf()]

    def nodes(self) -> list[OntologyNode]:
        """All entries except the synthetic root, in pre-order."""
        return [n for n in self.walk() if n.kind is not NodeKind.ROOT]

    # -- search --------------------------------------------------------------

    def search(
        self,
        phrase: str,
        *,
        kinds: Iterable[NodeKind] | None = None,
        limit: int | None = None,
    ) -> list[OntologyNode]:
        """Case-insensitive substring search over entry labels.

        This backs the Figure 1b interaction: "Entries can be searched for
        by entering a word or phrase that becomes highlighted in the
        classification."
        """
        needle = phrase.lower().strip()
        if not needle:
            return []
        wanted = set(kinds) if kinds is not None else None
        out = []
        for node in self.walk():
            if node.kind is NodeKind.ROOT:
                continue
            if wanted is not None and node.kind not in wanted:
                continue
            if needle in node.label.lower():
                out.append(node)
                if limit is not None and len(out) >= limit:
                    break
        return out

    def count_by_kind(self) -> dict[NodeKind, int]:
        counts: dict[NodeKind, int] = {}
        for node in self.nodes():
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Ontology {self.name!r}: {len(self)} entries>"
