"""Mutation-versioned memoization for repository analytics.

Coverage, similarity, search and recommendation all run full passes over
the classification pairs; on a read-heavy deployment (the paper's hosted
prototype, the ROADMAP's production target) the repository mutates rarely
between those reads, so the passes are almost always recomputing an
identical answer.  :class:`AnalyticsCache` memoizes such results keyed on
``(function, arguments, versions of the tables the function reads)``.
The version counters live in :mod:`repro.db` and are bumped on every
committed mutation, so invalidation is automatic and exact: a cached
entry is served only while every table it was derived from is untouched.

Correctness rules:

* **A thread inside its own transaction bypasses the cache entirely**
  (both lookups and stores).  Rollback restores version counters, so a
  value computed from uncommitted state could otherwise be served later
  under a re-used version number.  Concurrent *readers* are unaffected
  by other threads' transactions: they read committed pinned snapshots
  (:meth:`repro.db.Database.pinned`), whose versions are durable.
* Cached values are **shared**: callers must treat them as read-only.
  Call sites whose callers historically mutated results pass ``copy=`` so
  every lookup returns a private copy.
* The cache is LRU-bounded (``maxsize`` distinct keys); stale entries are
  replaced in place and counted as invalidations.

The global kill switch honours the ``CARCS_CACHE`` environment variable
(``CARCS_CACHE=off`` disables every cache in the process) so benchmarks
can measure cold behaviour without code changes.

Scope note: this cache invalidates **whole entries** on any dependency
version drift, which is the right contract for results that genuinely
depend on the full corpus (coverage, similarity, the recommender fit).
State that can be repaired per document — the search engine's inverted
index — deliberately lives *outside* this cache: it subscribes to the
database change journal (:meth:`repro.db.Database.changes_since`) and
patches only the touched documents' postings instead of discarding
everything (see :mod:`repro.core.index`).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.obs import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db import Database

ENV_FLAG = "CARCS_CACHE"
_FALSEY = {"off", "0", "false", "no", "disabled"}


def env_enabled() -> bool:
    """Does the ``CARCS_CACHE`` environment variable allow caching?"""
    return os.environ.get(ENV_FLAG, "on").strip().lower() not in _FALSEY


_GLOBAL_ENABLED = env_enabled()


def set_global_enabled(on: bool) -> None:
    """Process-wide override (used by the benchmark harness)."""
    global _GLOBAL_ENABLED
    _GLOBAL_ENABLED = bool(on)


def global_enabled() -> bool:
    return _GLOBAL_ENABLED


def reset_global_enabled() -> None:
    """Re-derive the process-wide flag from the environment."""
    set_global_enabled(env_enabled())


def freeze(value: Any) -> Any:
    """Canonical hashable form of ``value`` (for cache keys).

    Lists/tuples become tuples, sets frozensets, dicts sorted item
    tuples; everything else must already be hashable.
    """
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, freeze(v)) for k, v in value.items()))
    return value


@dataclass
class CacheStats:
    """Counters exposed through ``Repository.stats()`` and ``/stats``."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0   # stale entry replaced by a fresh recompute
    evictions: int = 0       # LRU bound enforced
    bypasses: int = 0        # disabled or inside a transaction

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.invalidations

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.invalidations = 0
        self.evictions = self.bypasses = 0


class AnalyticsCache:
    """LRU memo keyed on ``(function, args, relevant table versions)``."""

    def __init__(self, db: "Database", *, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.db = db
        self.maxsize = maxsize
        self.enabled = True
        self.stats = CacheStats()
        # Serializes bookkeeping *and* computes: concurrent readers asking
        # for the same cold entry produce one compute, not a thundering
        # herd.  Reentrant because memoized computations call other
        # memoized computations (coverage -> classification_pairs).
        self._lock = threading.RLock()
        # (name, frozen key) -> (table-version tuple, value)
        self._entries: "OrderedDict[tuple, tuple[tuple, Any]]" = OrderedDict()

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[tuple]:
        return list(self._entries)

    @property
    def active(self) -> bool:
        return self.enabled and global_enabled()

    # -- core -------------------------------------------------------------

    def table_versions(self, tables: Sequence[str]) -> tuple:
        """Version of each dependency table (-1 when dropped/absent).

        Pin-aware: inside a pinned snapshot scope the versions come from
        the snapshot, so a cached entry computed from pinned state is
        stamped with (and validated against) that same state."""
        pin = self.db._pin()
        source: Any = pin.tables if pin is not None else self.db._tables
        out = []
        for name in tables:
            table = source.get(name)
            out.append(table.version if table is not None else -1)
        return tuple(out)

    def get_or_compute(
        self,
        name: str,
        key: Any,
        tables: Sequence[str],
        compute: Callable[[], Any],
        *,
        copy: Callable[[Any], Any] | None = None,
    ) -> Any:
        """Return the memoized result of ``compute``.

        ``name`` identifies the computation (usually the qualified
        function name), ``key`` its arguments, and ``tables`` the tables
        whose mutation would change the answer.  ``copy``, when given, is
        applied to the stored value on *every* return so callers can
        safely mutate what they receive.
        """
        # Readers take no database lock: computes run against the pinned
        # snapshot (or live state for unpinned callers).  The cache lock
        # alone serializes bookkeeping and computes — concurrent readers
        # asking for the same cold entry still produce one compute.
        # The span's ``key`` attribute is the raw (hashable) key object,
        # not its repr: stringification happens if and when the trace is
        # rendered, so traced lookups never pay repr() on the hot path.
        with _trace.span("cache.get", name=name) as span_:
            with self._lock:
                in_writer_tx = (
                    self.db.lock.write_held and self.db.in_transaction
                )
                if not self.active or in_writer_tx:
                    # Inside this thread's own transaction versions
                    # are not yet durable (rollback restores them),
                    # so neither lookups nor stores are safe.  Other
                    # threads' transactions don't matter: they read
                    # committed pinned snapshots.
                    self.stats.bypasses += 1
                    if span_:
                        span_.set(outcome="bypass", key=key)
                    return compute()
                versions = self.table_versions(tables)
                full_key = (name, freeze(key))
                entry = self._entries.get(full_key)
                if entry is not None and entry[0] == versions:
                    self.stats.hits += 1
                    if span_:
                        span_.set(outcome="hit", key=key)
                    self._entries.move_to_end(full_key)
                    value = entry[1]
                    return copy(value) if copy is not None else value
                value = compute()
                if span_:
                    span_.set(key=key)
                if entry is not None:
                    self.stats.invalidations += 1
                    span_.set(outcome="invalidation")
                else:
                    self.stats.misses += 1
                    span_.set(outcome="miss")
                self._entries[full_key] = (versions, value)
                self._entries.move_to_end(full_key)
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
                return copy(value) if copy is not None else value

    # -- maintenance ------------------------------------------------------

    def invalidate(self, name: str | None = None, key: Any = None) -> int:
        """Drop entries and return how many were dropped.

        With no arguments everything goes; with ``name`` every entry of
        that function; with ``name`` *and* ``key`` exactly one memoized
        call (``key`` is frozen the same way lookups freeze arguments).
        """
        with self._lock:
            if name is None:
                dropped = len(self._entries)
                self._entries.clear()
                return dropped
            if key is not None:
                return 1 if self._entries.pop((name, freeze(key)), None) else 0
            victims = [k for k in self._entries if k[0] == name]
            for k in victims:
                del self._entries[k]
            return len(victims)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats.reset()


class Memo:
    """Decorator memoizing a method through its owner's ``cache`` attribute.

    ::

        class Repository:
            @Memo("materials", "material_classifications")
            def classification_pairs(self, collection=None): ...

    The wrapped call becomes an :class:`AnalyticsCache` lookup keyed on
    the method's qualified name and its (frozen) arguments, depending on
    the named tables.  Owners without a cache attribute fall through to a
    plain call, so the decorator is inert on detached objects.
    """

    def __init__(
        self,
        *tables: str,
        cache_attr: str = "cache",
        copy: Callable[[Any], Any] | None = None,
    ) -> None:
        self.tables = tables
        self.cache_attr = cache_attr
        self.copy = copy

    def __call__(self, fn: Callable) -> Callable:
        import functools

        @functools.wraps(fn)
        def wrapper(owner: Any, *args: Any, **kwargs: Any) -> Any:
            cache = getattr(owner, self.cache_attr, None)
            if cache is None:
                return fn(owner, *args, **kwargs)
            key = (args, tuple(sorted(kwargs.items())))
            return cache.get_or_compute(
                fn.__qualname__,
                key,
                self.tables,
                lambda: fn(owner, *args, **kwargs),
                copy=self.copy,
            )

        wrapper.__wrapped__ = fn
        return wrapper
