"""Classification suggestion — the paper's proposed curation accelerator.

Conclusion: "once more material is classified using the system, we should
be able to suggest classifications to save time for the user"; Section
IV-A: "we would be able to leverage existing classification to provide
recommendation on topics commonly used together."

Three complementary recommenders are implemented:

* **Text kNN** — TF-IDF over title+description, labels voted by the
  nearest already-classified materials (:class:`repro.text.KnnClassifier`).
* **Text naive Bayes** — one-vs-rest multinomial NB over term counts.
* **Co-occurrence** — given a *partial* classification, suggest entries
  that frequently co-occur with the already-selected ones (normalized
  pointwise co-occurrence), exactly the "topics commonly used together"
  idea.

:class:`HybridRecommender` merges text and co-occurrence evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.text import (
    KnnClassifier,
    NaiveBayesClassifier,
    TfidfVectorizer,
    Vocabulary,
    count_matrix,
    preprocess,
)

from .classification import ClassificationSet
from .material import Material
from .repository import Repository


@dataclass
class Recommendation:
    key: str
    score: float
    source: str  # "knn" | "nb" | "cooccurrence" | "hybrid"


def _training_data(
    repo: Repository, *, exclude: set[int] | None = None
) -> tuple[list[Material], list[list[str]]]:
    """Classified materials and their label (entry-key) lists."""
    materials, labels = [], []
    for material in repo.materials():
        assert material.id is not None
        if exclude and material.id in exclude:
            continue
        cs = repo.classification_of(material.id)
        keys = [str(item.key) for item in cs.items()]
        if keys:
            materials.append(material)
            labels.append(keys)
    return materials, labels


class TextKnnRecommender:
    """Suggest entries for new material text from its nearest neighbours."""

    def __init__(self, repo: Repository, *, k: int = 5, threshold: float = 0.2):
        self.repo = repo
        self.k = k
        self.threshold = threshold
        self._fitted = False
        self._vectorizer: TfidfVectorizer | None = None
        self._knn: KnnClassifier | None = None

    def fit(self, *, exclude: set[int] | None = None) -> "TextKnnRecommender":
        materials, labels = _training_data(self.repo, exclude=exclude)
        if not materials:
            raise ValueError("no classified materials to learn from")
        self._vectorizer = TfidfVectorizer(min_df=1)
        X = self._vectorizer.fit_transform([m.text() for m in materials])
        self._knn = KnnClassifier(k=self.k, threshold=self.threshold).fit(
            X, labels
        )
        self._fitted = True
        return self

    def recommend(self, text: str, *, top: int = 10) -> list[Recommendation]:
        if not self._fitted:
            self.fit()
        assert self._vectorizer is not None and self._knn is not None
        qvec = self._vectorizer.transform([text])
        suggestions = self._knn.suggest(qvec)[0]
        return [
            Recommendation(s.label, s.score, "knn") for s in suggestions[:top]
        ]


class TextNbRecommender:
    """Naive-Bayes variant of the text recommender."""

    def __init__(self, repo: Repository, *, min_label_count: int = 2):
        self.repo = repo
        self.min_label_count = min_label_count
        self._fitted = False
        self._vocab: Vocabulary | None = None
        self._nb: NaiveBayesClassifier | None = None

    def fit(self, *, exclude: set[int] | None = None) -> "TextNbRecommender":
        materials, labels = _training_data(self.repo, exclude=exclude)
        if not materials:
            raise ValueError("no classified materials to learn from")
        docs = [preprocess(m.text()) for m in materials]
        self._vocab = Vocabulary.build(docs)
        counts = count_matrix(docs, self._vocab)
        self._nb = NaiveBayesClassifier(
            min_label_count=self.min_label_count
        ).fit(counts, labels)
        self._fitted = True
        return self

    def recommend(self, text: str, *, top: int = 10) -> list[Recommendation]:
        if not self._fitted:
            self.fit()
        assert self._vocab is not None and self._nb is not None
        counts = count_matrix([preprocess(text)], self._vocab)
        suggestions = self._nb.suggest(counts, top=top)[0]
        # Squash unbounded log-odds into (0, 1) for comparability.
        return [
            Recommendation(
                s.label, float(1.0 / (1.0 + np.exp(-s.log_odds / 10.0))), "nb"
            )
            for s in suggestions
        ]


class CooccurrenceRecommender:
    """Complete a partial classification from corpus co-occurrence.

    Score of entry *e* given selected set *S*:
    ``mean over s in S of  P(e | s)`` estimated from classified materials.
    """

    def __init__(self, repo: Repository):
        self.repo = repo
        self._fitted = False
        self._keys: list[str] = []
        self._index: dict[str, int] = {}
        self._cond: np.ndarray | None = None  # P(col | row)

    def fit(self, *, exclude: set[int] | None = None) -> "CooccurrenceRecommender":
        _, labels = _training_data(self.repo, exclude=exclude)
        keys = sorted({k for ls in labels for k in ls})
        index = {k: i for i, k in enumerate(keys)}
        m = np.zeros((len(labels), len(keys)), dtype=np.float64)
        for row, ls in enumerate(labels):
            for k in ls:
                m[row, index[k]] = 1.0
        joint = m.T @ m                     # co-occurrence counts
        diag = np.diag(joint).copy()
        with np.errstate(invalid="ignore", divide="ignore"):
            cond = np.where(diag[:, None] > 0, joint / diag[:, None], 0.0)
        np.fill_diagonal(cond, 0.0)
        self._keys, self._index, self._cond = keys, index, cond
        self._fitted = True
        return self

    def recommend(
        self, selected: Sequence[str], *, top: int = 10, min_score: float = 0.2
    ) -> list[Recommendation]:
        if not self._fitted:
            self.fit()
        assert self._cond is not None
        rows = [self._index[k] for k in selected if k in self._index]
        if not rows:
            return []
        scores = self._cond[rows].mean(axis=0)
        for k in selected:  # never re-suggest what is already selected
            if k in self._index:
                scores[self._index[k]] = 0.0
        order = np.argsort(-scores, kind="stable")[:top]
        return [
            Recommendation(self._keys[int(i)], float(scores[int(i)]), "cooccurrence")
            for i in order
            if scores[int(i)] >= min_score
        ]


class HybridRecommender:
    """Blend text-kNN and co-occurrence evidence.

    Intended interactive flow (Section IV-A's 15-25 minutes per item):
    the curator types the metadata, text suggestions seed the selection,
    then co-occurrence suggestions complete it.
    """

    def __init__(self, repo: Repository, *, text_weight: float = 0.6):
        if not 0.0 <= text_weight <= 1.0:
            raise ValueError("text_weight must be in [0, 1]")
        self.text = TextKnnRecommender(repo)
        self.cooc = CooccurrenceRecommender(repo)
        self.text_weight = text_weight

    def fit(self, *, exclude: set[int] | None = None) -> "HybridRecommender":
        self.text.fit(exclude=exclude)
        self.cooc.fit(exclude=exclude)
        return self

    def recommend(
        self,
        text: str,
        selected: Sequence[str] = (),
        *,
        top: int = 10,
    ) -> list[Recommendation]:
        merged: dict[str, float] = {}
        for rec in self.text.recommend(text, top=top * 2):
            merged[rec.key] = merged.get(rec.key, 0.0) + self.text_weight * rec.score
        for rec in self.cooc.recommend(selected, top=top * 2, min_score=0.0):
            merged[rec.key] = (
                merged.get(rec.key, 0.0) + (1.0 - self.text_weight) * rec.score
            )
        for key in selected:
            merged.pop(key, None)
        ranked = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        return [Recommendation(k, s, "hybrid") for k, s in ranked if s > 0.0]


def evaluate_knn_loo_fast(
    repo: Repository,
    *,
    k: int = 5,
    threshold: float = 0.2,
    top: int = 10,
) -> dict[str, float]:
    """Vectorised leave-one-out for the kNN recommender.

    Algorithmically equivalent to refitting :class:`TextKnnRecommender`
    once per material (as :func:`evaluate_leave_one_out` does) but
    computed from a single TF-IDF matrix: the full cosine similarity is
    one BLAS multiply, and holding material *i* out is masking the
    diagonal — the HPC-guide "compute less" optimization.  The IDF model
    is fitted on the full corpus (the one, negligible, difference from
    strict per-fold refitting).
    """
    from repro.text.similarity import top_k_neighbors

    materials, labels = _training_data(repo)
    if not materials:
        raise ValueError("no classified materials to evaluate")
    vectorizer = TfidfVectorizer(min_df=1)
    X = vectorizer.fit_transform([m.text() for m in materials])
    from repro.text.similarity import cosine_matrix

    sims = cosine_matrix(X)
    neighbor_lists = top_k_neighbors(sims, k, exclude_self=True)

    label_sets = [frozenset(ls) for ls in labels]
    precisions, recalls = [], []
    for i, neighbors in enumerate(neighbor_lists):
        votes: dict[str, float] = {}
        total = sum(max(s, 0.0) for _, s in neighbors)
        for j, sim in neighbors:
            weight = max(sim, 0.0)
            if weight == 0.0:
                continue
            for label in label_sets[j]:
                votes[label] = votes.get(label, 0.0) + weight
        suggested = set()
        if total > 0:
            ranked = sorted(
                ((score / total, label) for label, score in votes.items()),
                key=lambda t: (-t[0], t[1]),
            )
            suggested = {
                label for score, label in ranked[:top] if score >= threshold
            }
        truth = set(label_sets[i])
        if not suggested:
            precisions.append(0.0)
            recalls.append(0.0)
            continue
        hit = len(suggested & truth)
        precisions.append(hit / len(suggested))
        recalls.append(hit / len(truth))
    p = float(np.mean(precisions))
    r = float(np.mean(recalls))
    f1 = 2 * p * r / (p + r) if (p + r) > 0 else 0.0
    return {"precision": p, "recall": r, "f1": f1, "n": float(len(materials))}


def evaluate_leave_one_out(
    repo: Repository,
    recommender_factory,
    *,
    top: int = 10,
    limit: int | None = None,
) -> dict[str, float]:
    """Leave-one-out evaluation of a recommender over classified materials.

    ``recommender_factory(exclude)`` must return a fitted object with a
    ``recommend(text, top=...)`` method.  Reports precision/recall/F1 of
    the top-``top`` suggestions against the held-out true classification
    — the ABL-2 experiment of DESIGN.md.
    """
    materials, labels = _training_data(repo)
    if limit is not None:
        materials, labels = materials[:limit], labels[:limit]
    precisions, recalls = [], []
    for material, true_keys in zip(materials, labels):
        assert material.id is not None
        rec = recommender_factory({material.id})
        suggested = {r.key for r in rec.recommend(material.text(), top=top)}
        truth = set(true_keys)
        if not suggested:
            precisions.append(0.0)
            recalls.append(0.0)
            continue
        hit = len(suggested & truth)
        precisions.append(hit / len(suggested))
        recalls.append(hit / len(truth))
    p = float(np.mean(precisions)) if precisions else 0.0
    r = float(np.mean(recalls)) if recalls else 0.0
    f1 = 2 * p * r / (p + r) if (p + r) > 0 else 0.0
    return {"precision": p, "recall": r, "f1": f1, "n": float(len(materials))}
