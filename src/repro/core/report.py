"""Course coverage reports — the Section IV-B "take home message" engine.

Produces, for a class's material set: the ranked areas it covers, the
areas it leaves untouched, unit-level highlights inside covered areas,
and "adjacent opportunity" areas (touched as side notes, candidates for
engagement — the paper's Graphics/Intelligent Systems observation for
ITCS 3145).
"""

from __future__ import annotations

from dataclasses import dataclass

from .coverage import CoverageReport, compute_coverage
from .ontology import NodeKind, Ontology
from .repository import Repository


@dataclass
class AreaSummary:
    code: str
    label: str
    count: int
    units_covered: list[tuple[str, int]]  # (unit label, count), desc


@dataclass
class ClassReport:
    collection: str
    ontology: str
    n_materials: int
    ranked_areas: list[AreaSummary]       # covered, most-touched first
    untouched_areas: list[str]            # area labels with zero coverage
    lightly_touched: list[AreaSummary]    # covered but below threshold
    core_holes: list[str]                 # core topics nothing covers

    def format(self, *, top_units: int = 3) -> str:
        """Human-readable report, as an instructor would read it."""
        lines = [
            f"Coverage of {self.collection!r} against {self.ontology} "
            f"({self.n_materials} materials)",
            "=" * 72,
            "",
            "Covered areas (most-touched first):",
        ]
        for area in self.ranked_areas:
            lines.append(f"  {area.code:4s} {area.label:<48s} {area.count:3d}")
            for unit, count in area.units_covered[:top_units]:
                lines.append(f"        - {unit:<44s} {count:3d}")
        if self.lightly_touched:
            lines.append("")
            lines.append("Touched only as side notes (engagement opportunities):")
            for area in self.lightly_touched:
                lines.append(f"  {area.code:4s} {area.label:<48s} {area.count:3d}")
        if self.untouched_areas:
            lines.append("")
            lines.append("Untouched areas:")
            for label in self.untouched_areas:
                lines.append(f"  - {label}")
        if self.core_holes:
            lines.append("")
            lines.append("Core topics not covered by any material (first 10):")
            for label in self.core_holes[:10]:
                lines.append(f"  - {label}")
        return "\n".join(lines)


def class_report(
    repo: Repository,
    collection: str,
    ontology_name: str,
    *,
    light_threshold: int = 2,
) -> ClassReport:
    """Build the full IV-B style report for one collection."""
    onto = repo.ontology(ontology_name)
    coverage = compute_coverage(repo, ontology_name, collection=collection)
    ranked, light = [], []
    for area, count in coverage.area_ranking(onto):
        if count == 0:
            continue
        units = []
        for unit in onto.children(area.key):
            c = coverage.count(unit.key)
            if c > 0:
                units.append((unit.label, c))
        units.sort(key=lambda pair: (-pair[1], pair[0]))
        summary = AreaSummary(
            code=area.code or area.label[:4],
            label=area.label,
            count=count,
            units_covered=units,
        )
        if count <= light_threshold:
            light.append(summary)
        else:
            ranked.append(summary)

    from .gaps import curriculum_holes
    from .ontology import Tier

    holes = curriculum_holes(onto, coverage, tiers=(Tier.CORE1, Tier.CORE))
    return ClassReport(
        collection=collection,
        ontology=ontology_name,
        n_materials=coverage.n_materials,
        ranked_areas=ranked,
        untouched_areas=[a.label for a in coverage.uncovered_areas(onto)],
        lightly_touched=light,
        core_holes=[onto.path_string(n.key) for n in holes],
    )


def coverage_summary_table(
    repo: Repository, collections: list[str], ontology_name: str
) -> list[dict]:
    """One row per collection: material count, entries touched, top area.

    The tabular companion to Figure 2 used by benchmarks and EXPERIMENTS.md.
    """
    onto = repo.ontology(ontology_name)
    rows = []
    for collection in collections:
        coverage = compute_coverage(repo, ontology_name, collection=collection)
        ranking = coverage.area_ranking(onto)
        top_area, top_count = ranking[0] if ranking else (None, 0)
        rows.append(
            {
                "collection": collection,
                "ontology": ontology_name,
                "materials": coverage.n_materials,
                "entries_touched": len(coverage.rollup_counts),
                "areas_covered": len(coverage.covered_areas(onto)),
                "top_area": top_area.label if top_area and top_count else "-",
                "top_area_count": top_count,
            }
        )
    return rows
