"""Gap identification between material communities (Section IV-C).

"Classification helps PDC educational experts identify where more efforts
are needed to improve adoption" — operationally: compare the coverage of
a reference corpus (what early-CS instructors already use, e.g. Nifty)
with a candidate corpus (what the PDC community offers, e.g. Peachy) and
report (1) entries common in the reference but absent from the candidate
(assignments the PDC community should develop), (2) entries unique to the
candidate (systems-oriented materials with no early-CS anchor), and (3)
an alignment score between the two communities ("Using standard
classification is a way to measure the alignment between different
communities and set of assignments").
"""

from __future__ import annotations

from dataclasses import dataclass

from .coverage import CoverageReport
from .ontology import NodeKind, Ontology, OntologyNode


@dataclass
class GapEntry:
    """One ontology entry where the two corpora diverge."""

    key: str
    label: str
    path: str
    reference_count: int
    candidate_count: int

    @property
    def deficit(self) -> int:
        return self.reference_count - self.candidate_count


@dataclass
class GapReport:
    ontology: str
    reference_name: str
    candidate_name: str
    missing_in_candidate: list[GapEntry]   # popular in ref, absent in cand
    unique_to_candidate: list[GapEntry]    # present in cand, absent in ref
    alignment: float                       # weighted overlap in [0, 1]

    def top_development_targets(self, n: int = 10) -> list[GapEntry]:
        """The entries the candidate community should write materials for,
        by how popular they are in the reference corpus."""
        return self.missing_in_candidate[:n]


def _leafish(onto: Ontology, key: str) -> bool:
    """Entries worth reporting: topics and learning outcomes (not areas)."""
    return onto.node(key).kind in (NodeKind.TOPIC, NodeKind.LEARNING_OUTCOME)


def find_gaps(
    ontology: Ontology,
    reference: CoverageReport,
    candidate: CoverageReport,
    *,
    reference_name: str = "reference",
    candidate_name: str = "candidate",
    min_reference_count: int = 2,
) -> GapReport:
    """Compare two coverage reports over the same ontology."""
    if reference.ontology != ontology.name or candidate.ontology != ontology.name:
        raise ValueError("coverage reports must target the given ontology")

    missing: list[GapEntry] = []
    unique: list[GapEntry] = []
    keys = {*reference.direct_counts, *candidate.direct_counts}
    for key in keys:
        if key not in ontology or not _leafish(ontology, key):
            continue
        ref_n = reference.direct_counts.get(key, 0)
        cand_n = candidate.direct_counts.get(key, 0)
        entry = GapEntry(
            key=key,
            label=ontology.node(key).label,
            path=ontology.path_string(key),
            reference_count=ref_n,
            candidate_count=cand_n,
        )
        if ref_n >= min_reference_count and cand_n == 0:
            missing.append(entry)
        elif cand_n >= 1 and ref_n == 0:
            unique.append(entry)

    missing.sort(key=lambda e: (-e.reference_count, e.key))
    unique.sort(key=lambda e: (-e.candidate_count, e.key))
    return GapReport(
        ontology=ontology.name,
        reference_name=reference_name,
        candidate_name=candidate_name,
        missing_in_candidate=missing,
        unique_to_candidate=unique,
        alignment=alignment_score(ontology, reference, candidate),
    )


def alignment_score(
    ontology: Ontology,
    a: CoverageReport,
    b: CoverageReport,
) -> float:
    """Weighted cosine between the two corpora's per-entry coverage
    profiles, over topic/outcome entries.  1.0 = identical emphasis,
    0.0 = disjoint communities.
    """
    keys = sorted(
        k for k in ({*a.direct_counts, *b.direct_counts})
        if k in ontology and _leafish(ontology, k)
    )
    if not keys:
        return 0.0
    import numpy as np

    va = np.array([a.direct_counts.get(k, 0) for k in keys], dtype=np.float64)
    vb = np.array([b.direct_counts.get(k, 0) for k in keys], dtype=np.float64)
    na, nb = np.linalg.norm(va), np.linalg.norm(vb)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(va, vb) / (na * nb))


def curriculum_holes(
    ontology: Ontology,
    coverage: CoverageReport,
    *,
    tiers: tuple = (),
) -> list[OntologyNode]:
    """Core curriculum entries *no* material covers — where "pedagogical
    material does not exist and ... should be developed" (Section I).

    ``tiers`` restricts to specific requirement tiers (e.g. core-1 only);
    empty means any tier.
    """
    holes = []
    for node in ontology.nodes():
        if node.kind not in (NodeKind.TOPIC,):
            continue
        if tiers and node.tier not in tiers:
            continue
        if not coverage.is_covered(node.key):
            holes.append(node)
    return holes
