"""The CAR-CS repository: materials + ontologies + classifications.

This is the system of Section III: a relational store of pedagogical
materials where "tags, items in the classification, dataset used, and
authors are associated with an assignment using a many-to-many
relationship", plus the user-account/role machinery the conclusion calls
for ("a proper user account system, and roles (editor, submitter, user)
need to be integrated to enable a larger scale curation") — implemented
here rather than left as future work.

The web layer (:mod:`repro.web`) and every analysis (coverage, gaps,
similarity) run on top of this facade.
"""

from __future__ import annotations

import enum
import threading
from typing import Iterable, Mapping

from repro.db import Column, Database, ForeignKey, ManyToMany, TableSchema
from repro.db import query as db_query
from repro.db.errors import RowNotFound
from repro.obs import trace as _trace

from .cache import AnalyticsCache, Memo
from .classification import ClassificationSet, validate_against
from .material import CourseLevel, Material, MaterialKind, normalize_authors
from .ontology import BloomLevel, NodeKind, Ontology, Tier

# Tables whose mutation changes the classification-pair export (and with
# it every coverage/similarity/recommendation result derived from it).
_CLASSIFICATION_TABLES = (
    "material_classifications", "ontology_entries", "materials",
)


class Role(enum.Enum):
    """User roles from the paper's curation model (Section III-A)."""

    EDITOR = "editor"
    SUBMITTER = "submitter"
    USER = "user"


class SubmissionStatus(enum.Enum):
    PENDING = "pending"
    APPROVED = "approved"
    REJECTED = "rejected"


class PermissionError_(Exception):
    """An operation requires a role the acting user does not have."""


#: System account the automatic classification service suggests as.
MACHINE_USER = "carcs-ml"
#: System editor used by the unauthenticated review endpoints.
SYSTEM_EDITOR = "carcs-editor"


class Repository:
    """Facade over the relational engine implementing the CAR-CS model."""

    def __init__(self, db: Database | None = None) -> None:
        self.db = db if db is not None else Database("carcs")
        self._ontologies: dict[str, Ontology] = {}
        self._create_schema()
        # Version-keyed memo for the analytics hot paths (coverage,
        # similarity, recommendation, classification-pair export).
        self.cache = AnalyticsCache(self.db)
        self._search_engine = None
        self._engine_init_lock = threading.Lock()

    @property
    def version(self) -> int:
        """Monotonic mutation counter of the underlying database.

        Any committed insert/update/delete (materials, classifications,
        users, …) bumps it; rollback restores it.  The web layer derives
        HTTP ETags from this value.
        """
        return self.db.version

    # ------------------------------------------------------------------ DDL

    def _create_schema(self) -> None:
        db = self.db
        if "materials" in db:
            # Reattaching to a restored/recovered database
            # (Database.open(), persist.import_repository): the tables
            # already exist — bind the link-table helpers and reload the
            # ontology trees instead of re-creating the schema.
            self._bind_link_tables(db)
            self._load_ontologies()
            return
        db.create_table(TableSchema(
            "authors",
            columns=(Column("id", int), Column("name", str)),
            unique=(("name",),),
        ))
        db.create_table(TableSchema(
            "tags",
            columns=(Column("id", int), Column("name", str)),
            unique=(("name",),),
        ))
        db.create_table(TableSchema(
            "datasets",
            columns=(Column("id", int), Column("name", str)),
            unique=(("name",),),
        ))
        db.create_table(TableSchema(
            "languages",
            columns=(Column("id", int), Column("name", str)),
            unique=(("name",),),
        ))
        db.create_table(TableSchema(
            "users",
            columns=(
                Column("id", int),
                Column("name", str),
                Column("role", str),
            ),
            unique=(("name",),),
        ))
        db.create_table(TableSchema(
            "materials",
            columns=(
                Column("id", int),
                Column("title", str),
                Column("description", str, default=""),
                Column("kind", str, default=MaterialKind.ASSIGNMENT.value),
                Column("url", str, default=""),
                Column("course_level", str, nullable=True, default=None),
                Column("collection", str, default=""),
                Column("year", int, nullable=True, default=None),
            ),
        ))
        # Ontology entries mirrored relationally, exactly as Section III-B
        # describes: "a key, the key of the parent, a string description,
        # and type (separating topics and learning outcomes)".
        db.create_table(TableSchema(
            "ontology_entries",
            columns=(
                Column("id", int),
                Column("ontology", str),
                Column("key", str),
                Column("parent_key", str, nullable=True, default=None),
                Column("label", str),
                Column("kind", str),
                Column("tier", str, default=Tier.NONE.value),
                Column("bloom", str, nullable=True, default=None),
            ),
            unique=(("key",),),
        ))
        db.table("ontology_entries").create_index("ontology")
        db.table("ontology_entries").create_index("parent_key")
        db.table("ontology_entries").create_index("key")  # entry_id() hot path
        db.table("materials").create_index("collection")
        # Sorted: ordered material listings and year-range analytics go
        # through planner index scans instead of full sorts.
        db.table("materials").create_sorted_index("title")
        db.table("materials").create_sorted_index("year")

        self._bind_link_tables(db)
        db.create_table(TableSchema(
            "submissions",
            columns=(
                Column("id", int),
                Column("material_id", int),
                Column("submitted_by", int),
                Column("status", str, default=SubmissionStatus.PENDING.value),
                Column("reviewed_by", int, nullable=True, default=None),
                Column("note", str, default=""),
            ),
            foreign_keys=(
                ForeignKey("material_id", "materials", on_delete="cascade"),
                ForeignKey("submitted_by", "users"),
            ),
        ))
        db.table("submissions").create_index("status")
        db.create_table(TableSchema(
            "suggestions",
            columns=(
                Column("id", int),
                Column("material_id", int),
                Column("suggested_by", int),
                Column("ontology_key", str),
                Column("action", str),  # "add" | "remove"
                Column("status", str, default=SubmissionStatus.PENDING.value),
                Column("reviewed_by", int, nullable=True, default=None),
                # Machine-assist metadata: the classifier's confidence in
                # [0, 1] and which model produced it ("nb", "knn",
                # "nb+knn"); human suggestions leave both at defaults.
                Column("confidence", float, nullable=True, default=None),
                Column("origin", str, default="human"),
            ),
            foreign_keys=(
                ForeignKey("material_id", "materials", on_delete="cascade"),
                ForeignKey("suggested_by", "users"),
            ),
        ))
        db.table("suggestions").create_index("status")

    def _bind_link_tables(self, db: Database) -> None:
        """Bind the many-to-many helpers (creating their tables only when
        they don't already exist — ManyToMany reattaches otherwise)."""
        self.material_authors = ManyToMany(db, "material_authors", "materials", "authors")
        self.material_tags = ManyToMany(db, "material_tags", "materials", "tags")
        self.material_datasets = ManyToMany(db, "material_datasets", "materials", "datasets")
        self.material_languages = ManyToMany(db, "material_languages", "materials", "languages")
        self.material_classifications = ManyToMany(
            db, "material_classifications", "materials", "ontology_entries",
            extra_columns=(Column("bloom", str, nullable=True, default=None),),
        )

    def refresh_bindings(self) -> None:
        """Re-bind to the database after its state was replaced in place
        (:meth:`Database.load_state` — a replica applying a snapshot
        checkpoint).

        Link-table helpers resolve through the database by name, so they
        only need re-binding when the incoming state introduced tables;
        the ontology trees are rebuilt from the mirrored rows because
        the loaded corpus may carry different ontologies.  Version-keyed
        caches (analytics memos, the search index) notice the version
        jump on their next read and rebuild themselves.
        """
        self._bind_link_tables(self.db)
        self._ontologies.clear()
        self._load_ontologies()

    def _load_ontologies(self) -> None:
        """Reload ontology trees for a reattached database.

        Built-in ontologies come back from the registry with full
        fidelity (hours, codes, cross-links); unknown names rebuild a
        best-effort tree from the mirrored ``ontology_entries`` rows.
        Format-2 persist dumps overwrite both with the exact serialized
        trees afterwards."""
        entries = self.db.table("ontology_entries")
        names = sorted({row["ontology"] for row in entries})
        for name in names:
            try:
                from repro.ontologies import load as load_builtin

                self._ontologies[name] = load_builtin(name)
            except Exception:
                self._ontologies[name] = self._ontology_from_rows(name)

    def _ontology_from_rows(self, name: str) -> Ontology:
        rows = sorted(
            self.db.table("ontology_entries").find(ontology=name),
            key=lambda r: r["id"],
        )
        onto = Ontology(name)
        for row in rows:
            onto.add(
                row["key"], row["label"], NodeKind(row["kind"]),
                row["parent_key"],
                tier=Tier(row["tier"]),
                bloom=BloomLevel(row["bloom"]) if row["bloom"] else None,
            )
        onto.validate()
        return onto

    # ----------------------------------------------------------- ontologies

    def add_ontology(self, ontology: Ontology) -> int:
        """Mirror an ontology tree into the relational store.

        Returns the number of entries inserted.  Idempotent per ontology
        name (re-adding the same ontology raises).
        """
        if ontology.name in self._ontologies:
            raise ValueError(f"ontology {ontology.name!r} already loaded")
        inserted = 0
        with self.db.transaction():
            for node in ontology.nodes():
                parent = node.parent
                self.db.insert(
                    "ontology_entries",
                    ontology=ontology.name,
                    key=node.key,
                    parent_key=None if parent == ontology.root.key else parent,
                    label=node.label,
                    kind=node.kind.value,
                    tier=node.tier.value,
                    bloom=node.bloom.value if node.bloom else None,
                )
                inserted += 1
        self._ontologies[ontology.name] = ontology
        return inserted

    @property
    def ontologies(self) -> Mapping[str, Ontology]:
        return dict(self._ontologies)

    def ontology(self, name: str) -> Ontology:
        try:
            return self._ontologies[name]
        except KeyError:
            raise KeyError(
                f"ontology {name!r} not loaded; have {sorted(self._ontologies)}"
            ) from None

    def entry_id(self, key: str) -> int:
        row = self.db.table("ontology_entries").find_one(key=key)
        if row is None:
            raise KeyError(f"no ontology entry with key {key!r}")
        return row["id"]

    # ------------------------------------------------------------ materials

    def _link_named(self, m2m: ManyToMany, table: str, material_id: int,
                    names: Iterable[str]) -> None:
        for name in names:
            existing = self.db.table(table).find_one(name=name)
            row = existing if existing is not None else self.db.insert(table, name=name)
            m2m.add(material_id, row["id"])

    def add_material(
        self,
        material: Material,
        classification: ClassificationSet | None = None,
    ) -> Material:
        """Insert a material (and its relations); returns it with an id."""
        if classification is not None:
            problems = validate_against(classification, self._ontologies)
            if problems:
                raise ValueError(
                    f"invalid classification for {material.title!r}: {problems}"
                )
        with self.db.transaction():
            row = self.db.insert(
                "materials",
                title=material.title,
                description=material.description,
                kind=material.kind.value,
                url=material.url,
                course_level=(
                    material.course_level.value if material.course_level else None
                ),
                collection=material.collection,
                year=material.year,
            )
            mid = row["id"]
            self._link_named(
                self.material_authors, "authors", mid,
                normalize_authors(material.authors),
            )
            self._link_named(self.material_tags, "tags", mid, material.tags)
            self._link_named(
                self.material_datasets, "datasets", mid, material.datasets
            )
            self._link_named(
                self.material_languages, "languages", mid, material.languages
            )
            if classification is not None:
                for item in classification.items():
                    self.classify(
                        mid, item.ontology, item.key, bloom=item.bloom
                    )
        return material.with_id(mid)

    def _row_to_material(self, row: dict) -> Material:
        mid = row["id"]
        authors = tuple(
            self.db.table("authors").get(aid)["name"]
            for aid in sorted(self.material_authors.right_of(mid))
        )
        tags = tuple(
            self.db.table("tags").get(tid)["name"]
            for tid in sorted(self.material_tags.right_of(mid))
        )
        datasets = tuple(
            self.db.table("datasets").get(did)["name"]
            for did in sorted(self.material_datasets.right_of(mid))
        )
        languages = tuple(
            self.db.table("languages").get(lid)["name"]
            for lid in sorted(self.material_languages.right_of(mid))
        )
        return Material(
            id=mid,
            title=row["title"],
            description=row["description"],
            kind=MaterialKind(row["kind"]),
            url=row["url"],
            course_level=(
                CourseLevel(row["course_level"]) if row["course_level"] else None
            ),
            collection=row["collection"],
            year=row["year"],
            authors=authors,
            tags=tags,
            datasets=datasets,
            languages=languages,
        )

    def get_material(self, material_id: int) -> Material:
        with self.db.pinned():
            return self._row_to_material(
                self.db.table("materials").get(material_id)
            )

    def materials(self, collection: str | None = None) -> list[Material]:
        with self.db.pinned():
            q = db_query(self.db, "materials")
            if collection:
                q = q.filter(collection=collection)
            return [
                self._row_to_material(r) for r in q.order_by("id").all()
            ]

    def material_count(self, collection: str | None = None) -> int:
        if collection is None:
            return len(self.db.table("materials"))
        return self.db.table("materials").count(collection=collection)

    def collections(self) -> list[str]:
        return sorted(
            {r["collection"] for r in self.db.table("materials") if r["collection"]}
        )

    def delete_material(self, material_id: int) -> None:
        # m2m link tables cascade; submissions/suggestions cascade.
        self.db.delete("materials", material_id)

    def update_material(self, material_id: int, **changes) -> Material:
        allowed = {"title", "description", "url", "collection", "year"}
        bad = set(changes) - allowed
        if bad:
            raise ValueError(f"cannot update column(s) {sorted(bad)}")
        self.db.update("materials", material_id, **changes)
        return self.get_material(material_id)

    # -------------------------------------------------------- classification

    def classify(
        self,
        material_id: int,
        ontology: str,
        key: str,
        *,
        bloom: BloomLevel | None = None,
    ) -> None:
        """Attach one ontology entry to a material (idempotent)."""
        onto = self.ontology(ontology)
        if key not in onto:
            raise KeyError(f"{ontology} has no entry {key!r}")
        self.db.table("materials").get(material_id)  # raises if missing
        self.material_classifications.add(
            material_id,
            self.entry_id(key),
            bloom=bloom.value if bloom else None,
        )

    def declassify(self, material_id: int, key: str) -> bool:
        try:
            eid = self.entry_id(key)
        except KeyError:
            return False
        return self.material_classifications.remove(material_id, eid)

    def classification_of(self, material_id: int) -> ClassificationSet:
        with self.db.pinned():
            cs = ClassificationSet()
            entries = self.db.table("ontology_entries")
            for link in self.material_classifications.links_of(material_id):
                entry = entries.get(link["ontology_entries_id"])
                bloom = BloomLevel(link["bloom"]) if link["bloom"] else None
                cs.add(entry["ontology"], entry["key"], bloom)
            return cs

    def materials_with(self, key: str) -> list[Material]:
        """All materials classified under the ontology entry ``key``.

        Runs as a planner semi-join: the entry resolves through the
        ``key`` hash index and the link table is probed per entry pk,
        never materialized."""
        with self.db.pinned():
            rows = db_query(self.db, "ontology_entries").filter(
                key=key
            ).join_via(
                "material_classifications",
                local_column="ontology_entries_id",
                remote_column="materials_id",
                remote_table="materials",
            )
            return [self._row_to_material(r) for r in rows]

    @Memo(*_CLASSIFICATION_TABLES, copy=list)
    def classification_pairs(
        self, collection: str | None = None
    ) -> list[tuple[int, str]]:
        """(material_id, ontology key) pairs — the bulk export the
        coverage/similarity analyses consume in one pass.

        Memoized on the classification tables' versions; callers get a
        fresh list (the pairs themselves are immutable tuples)."""
        with _trace.span(
            "repo.classification_pairs", collection=collection or "*"
        ) as span_:
            entries = self.db.table("ontology_entries")
            wanted: set[int] | None = None
            if collection is not None:
                wanted = set(
                    db_query(self.db, "materials").filter(
                        collection=collection
                    ).values("id")
                )
            out = []
            for mid, eid in self.material_classifications.pairs():
                if wanted is not None and mid not in wanted:
                    continue
                out.append((mid, entries.get(eid)["key"]))
            span_.set(pairs=len(out))
            return out

    @Memo(*_CLASSIFICATION_TABLES)
    def classification_keys(self) -> dict[int, frozenset[str]]:
        """Material id → frozenset of classified ontology keys, for every
        material, loaded in one pass over the link table.

        This is the batch form of :meth:`classification_of` that the
        search paths use: one call per query/rebuild instead of one
        link-table query per material.  The result is memoized on the
        classification tables' versions and **shared** — treat it as
        read-only (keys are frozensets, so accidental mutation is hard).
        """
        with _trace.span("repo.classification_keys") as span_:
            entries = self.db.table("ontology_entries")
            keys: dict[int, set[str]] = {
                r["id"]: set() for r in self.db.table("materials")
            }
            for mid, eid in self.material_classifications.pairs():
                keys.setdefault(mid, set()).add(str(entries.get(eid)["key"]))
            span_.set(materials=len(keys))
            return {mid: frozenset(ks) for mid, ks in keys.items()}

    # ------------------------------------------------------ users & curation

    def add_user(self, name: str, role: Role) -> int:
        return self.db.insert("users", name=name, role=role.value)["id"]

    def user_role(self, user_id: int) -> Role:
        return Role(self.db.table("users").get(user_id)["role"])

    def _require_role(self, user_id: int, *roles: Role) -> None:
        role = self.user_role(user_id)
        if role not in roles:
            raise PermissionError_(
                f"user {user_id} has role {role.value!r}; needs one of "
                f"{[r.value for r in roles]}"
            )

    def submit_material(
        self,
        material: Material,
        classification: ClassificationSet | None,
        *,
        submitted_by: int,
    ) -> int:
        """Crowdsourced path: any registered user may submit; the material
        is stored but flagged pending until an editor approves it."""
        self._require_role(
            submitted_by, Role.SUBMITTER, Role.EDITOR, Role.USER
        )
        stored = self.add_material(material, classification)
        sub = self.db.insert(
            "submissions", material_id=stored.id, submitted_by=submitted_by
        )
        return sub["id"]

    def review_submission(
        self, submission_id: int, *, editor: int, approve: bool, note: str = ""
    ) -> SubmissionStatus:
        """Editors 'can appropriately edit or fix classification issues
        with a submitted material' — or reject it (deleting the material)."""
        self._require_role(editor, Role.EDITOR)
        sub = self.db.table("submissions").get(submission_id)
        if sub["status"] != SubmissionStatus.PENDING.value:
            raise ValueError("submission already reviewed")
        status = SubmissionStatus.APPROVED if approve else SubmissionStatus.REJECTED
        self.db.update(
            "submissions", submission_id,
            status=status.value, reviewed_by=editor, note=note,
        )
        if not approve:
            # Deleting the material cascades into the submission row too,
            # so record the review *then* delete.
            self.db.delete("materials", sub["material_id"])
        return status

    def pending_submissions(self) -> list[dict]:
        return db_query(self.db, "submissions").filter(
            status=SubmissionStatus.PENDING.value
        ).order_by("id").all()

    def approved_material_ids(self) -> set[int]:
        return set(
            db_query(self.db, "submissions").filter(
                status=SubmissionStatus.APPROVED.value
            ).values("material_id")
        )

    def suggest_classification(
        self, material_id: int, key: str, *, action: str, suggested_by: int
    ) -> int:
        """'Less knowledgeable users can suggest changes to the metadata
        which must be verified by an editor.'"""
        if action not in ("add", "remove"):
            raise ValueError("action must be 'add' or 'remove'")
        self.entry_id(key)  # must exist
        self.db.table("materials").get(material_id)
        return self.db.insert(
            "suggestions",
            material_id=material_id,
            suggested_by=suggested_by,
            ontology_key=key,
            action=action,
        )["id"]

    def review_suggestion(
        self, suggestion_id: int, *, editor: int, approve: bool
    ) -> SubmissionStatus:
        self._require_role(editor, Role.EDITOR)
        sug = self.db.table("suggestions").get(suggestion_id)
        if sug["status"] != SubmissionStatus.PENDING.value:
            raise ValueError("suggestion already reviewed")
        status = SubmissionStatus.APPROVED if approve else SubmissionStatus.REJECTED
        self.db.update(
            "suggestions", suggestion_id,
            status=status.value, reviewed_by=editor,
        )
        if approve:
            entry = self.db.table("ontology_entries").find_one(
                key=sug["ontology_key"]
            )
            assert entry is not None
            if sug["action"] == "add":
                self.classify(
                    sug["material_id"], entry["ontology"], sug["ontology_key"]
                )
            else:
                self.declassify(sug["material_id"], sug["ontology_key"])
        return status

    # ------------------------------------------- machine-assist suggestions

    def ensure_user(self, name: str, role: Role) -> int:
        """Find-or-create a (system) user account; returns its id."""
        with self.db.transaction():
            row = self.db.table("users").find_one(name=name)
            if row is not None:
                return row["id"]
            return self.add_user(name, role)

    def machine_suggest(
        self, material_id: int, key: str, *,
        confidence: float, source: str = "nb+knn",
    ) -> int | None:
        """File a machine ``add`` suggestion, idempotently.

        Returns the new suggestion id, or ``None`` when the write would
        duplicate existing state: the material is already classified
        under ``key``, or an equivalent suggestion is already pending /
        was already machine-filed.  This per-``(material, key)``
        idempotency is what makes classification jobs safe to re-run
        after a worker crash or lease re-issue.
        """
        self.entry_id(key)  # must exist
        self.db.table("materials").get(material_id)
        with self.db.transaction():
            if key in self.classification_keys().get(material_id, frozenset()):
                return None
            for row in self.db.table("suggestions").find(
                material_id=material_id, ontology_key=key,
            ):
                if row["action"] != "add":
                    continue
                if (row["status"] == SubmissionStatus.PENDING.value
                        or row.get("origin") == "machine"):
                    return None
            suggested_by = self.ensure_user(MACHINE_USER, Role.USER)
            return self.db.insert(
                "suggestions",
                material_id=material_id,
                suggested_by=suggested_by,
                ontology_key=key,
                action="add",
                confidence=float(confidence),
                origin="machine",
            )["id"]

    def suggestions(
        self, *, status: str | None = None,
        material_id: int | None = None, origin: str | None = None,
    ) -> list[dict]:
        """Suggestion rows, highest confidence first (``None`` last).

        Filters compose; each row additionally carries the entry's
        ontology name (joined from ``ontology_entries``)."""
        with self.db.pinned():
            q = db_query(self.db, "suggestions")
            if status is not None:
                q = q.filter(status=status)
            if material_id is not None:
                q = q.filter(material_id=material_id)
            if origin is not None:
                # Residual predicate (tolerates rows restored from dumps
                # that predate the origin column).
                q = q.where(
                    lambda r: r.get("origin", "human") == origin
                )
            rows = q.all()
            entries = self.db.table("ontology_entries")
            out = []
            for row in rows:
                enriched = dict(row)
                entry = entries.find_one(key=row["ontology_key"])
                enriched["ontology"] = entry["ontology"] if entry else None
                out.append(enriched)
            out.sort(key=lambda r: (
                -(r.get("confidence") if r.get("confidence") is not None
                  else -1.0),
                r["id"],
            ))
            return out

    def accept_suggestion(self, suggestion_id: int,
                          *, editor: int | None = None) -> SubmissionStatus:
        """Approve a pending suggestion (applying it) as ``editor``, or
        as the system editor account when none is given."""
        if editor is None:
            editor = self.ensure_user(SYSTEM_EDITOR, Role.EDITOR)
        return self.review_suggestion(suggestion_id, editor=editor,
                                      approve=True)

    def reject_suggestion(self, suggestion_id: int,
                          *, editor: int | None = None) -> SubmissionStatus:
        if editor is None:
            editor = self.ensure_user(SYSTEM_EDITOR, Role.EDITOR)
        return self.review_suggestion(suggestion_id, editor=editor,
                                      approve=False)

    # ------------------------------------------------- cached analytics

    def coverage(self, ontology_name: str, *, collection: str | None = None,
                 material_ids: Iterable[int] | None = None):
        """Memoized :func:`repro.core.coverage.compute_coverage`.

        Treat the returned report as read-only: hits share one object.
        """
        from .coverage import compute_coverage

        with _trace.span(
            "repo.coverage", ontology=ontology_name, collection=collection or "*"
        ):
            with self.db.pinned():
                return compute_coverage(
                    self, ontology_name,
                    collection=collection, material_ids=material_ids,
                )

    def similarity(self, left_ids, right_ids=None, *, threshold: int = 2,
                   ontologies: Iterable[str] | None = None,
                   left_group: str = "left", right_group: str = "right"):
        """Memoized :func:`repro.core.similarity.similarity_graph`.

        Every call returns a private copy of the cached graph, so callers
        may annotate or mutate it freely.
        """
        from .similarity import similarity_graph

        with _trace.span("repo.similarity", threshold=threshold):
            with self.db.pinned():
                return similarity_graph(
                    self, left_ids, right_ids,
                    threshold=threshold, ontologies=ontologies,
                    left_group=left_group, right_group=right_group,
                )

    def search_engine(self):
        """The repository's shared, version-tracking search engine."""
        from .search import SearchEngine

        if self._search_engine is None:
            with self._engine_init_lock:
                if self._search_engine is None:
                    self._search_engine = SearchEngine(self)
        return self._search_engine

    def search(self, text: str = "", filters=None, *, limit: int = 20):
        """Facet + full-text search.  The BM25 inverted index catches up
        incrementally from the db change journal when the repository
        version has moved; ``CARCS_SEARCH=dense`` selects the legacy
        TF-IDF path, which refits on version drift instead."""
        return self.search_engine().search(text, filters, limit=limit)

    def recommender(self):
        """A fitted :class:`~repro.core.recommend.HybridRecommender`,
        memoized until the classification tables mutate (fitting is the
        dominant cost of the ``/recommend`` endpoint)."""
        from .recommend import HybridRecommender

        return self.cache.get_or_compute(
            "Repository.recommender", (), _CLASSIFICATION_TABLES,
            lambda: HybridRecommender(self).fit(),
        )

    def recommend(self, text: str = "", selected=(), *, top: int = 10):
        selected = tuple(selected)
        with _trace.span("repo.recommend", top=top, selected=len(selected)):
            with self.db.pinned():
                return self.recommender().recommend(text, selected, top=top)

    # ------------------------------------------------------------- summary

    def stats(self) -> dict[str, int]:
        """Row counts of the main tables (used by reports and benches),
        plus the repository version, the analytics-cache counters, the
        change-journal and WAL counters, and — once a search engine
        exists — the search-index counters."""
        with self.db.pinned():
            base = self.db.stats()
            base["classification_links"] = len(self.material_classifications)
            base["version"] = self.db.version
            base["cache_entries"] = len(self.cache)
        for key, value in self.cache.stats.as_dict().items():
            base[f"cache_{key}"] = value
        for key, value in self.db.changelog_stats().items():
            base[f"changelog_{key}"] = value
        for key, value in self.db.wal_stats().items():
            base[f"wal_{key}"] = value
        for key, value in self.db.storage_stats().items():
            base[f"storage_{key}"] = value
        if self._search_engine is not None:
            for key, value in self._search_engine.stats().items():
                base[f"search_{key}"] = value
        return base
