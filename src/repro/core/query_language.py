"""A small query language for expressive material search.

Section II-A motivates "a more expansive, fine-grained classification
system that allows for greater expressiveness in assignment search
queries"; this module provides the textual form.  A query is free text
plus ``field:value`` facets::

    language:python level:cs1 monte carlo simulation
    under:PDC12/PROG kind:assignment collection:peachy
    year:2015..2018 dataset:yes tag:sorting

Recognized facets: ``language:``, ``level:``, ``kind:``, ``collection:``,
``tag:``, ``under:`` (ontology subtree key), ``year:`` (single year or
``a..b`` range), ``dataset:yes|no``.  Unknown facet names raise
:class:`QuerySyntaxError` (silent typos would turn facets into free
text); everything else is free text passed to the TF-IDF ranker.
"""

from __future__ import annotations

from dataclasses import dataclass

from .material import CourseLevel, MaterialKind
from .search import SearchFilters


class QuerySyntaxError(ValueError):
    """The query string contains an unknown facet or malformed value."""


@dataclass(frozen=True)
class ParsedQuery:
    text: str
    filters: SearchFilters


_FACETS = {
    "language", "level", "kind", "collection", "tag", "under", "year",
    "dataset",
}


def _parse_year(value: str) -> tuple[int, int]:
    if ".." in value:
        lo_s, hi_s = value.split("..", 1)
    else:
        lo_s = hi_s = value
    try:
        lo, hi = int(lo_s), int(hi_s)
    except ValueError:
        raise QuerySyntaxError(
            f"year facet expects YYYY or YYYY..YYYY, got {value!r}"
        ) from None
    if lo > hi:
        raise QuerySyntaxError(f"empty year range {value!r}")
    return lo, hi


def parse_query(query: str) -> ParsedQuery:
    """Split a query string into free text and :class:`SearchFilters`."""
    text_terms: list[str] = []
    languages: list[str] = []
    levels: list[CourseLevel] = []
    kinds: list[MaterialKind] = []
    collections: list[str] = []
    tags: list[str] = []
    under: list[str] = []
    years: tuple[int, int] | None = None
    datasets_required: bool | None = None

    for token in query.split():
        if ":" not in token:
            text_terms.append(token)
            continue
        field, _, value = token.partition(":")
        field = field.lower()
        if field not in _FACETS:
            raise QuerySyntaxError(
                f"unknown facet {field!r}; known: {sorted(_FACETS)}"
            )
        if not value:
            raise QuerySyntaxError(f"facet {field!r} needs a value")
        if field == "language":
            languages.append(value)
        elif field == "level":
            try:
                levels.append(CourseLevel(value.lower()))
            except ValueError:
                raise QuerySyntaxError(
                    f"unknown course level {value!r}"
                ) from None
        elif field == "kind":
            try:
                kinds.append(MaterialKind(value.lower()))
            except ValueError:
                raise QuerySyntaxError(
                    f"unknown material kind {value!r}"
                ) from None
        elif field == "collection":
            collections.append(value)
        elif field == "tag":
            tags.append(value)
        elif field == "under":
            under.append(value)
        elif field == "year":
            years = _parse_year(value)
        elif field == "dataset":
            lowered = value.lower()
            if lowered in ("yes", "true", "1"):
                datasets_required = True
            elif lowered in ("no", "false", "0"):
                datasets_required = False
            else:
                raise QuerySyntaxError(
                    f"dataset facet expects yes/no, got {value!r}"
                )

    filters = SearchFilters(
        kinds=tuple(kinds),
        course_levels=tuple(levels),
        languages=tuple(languages),
        datasets_required=datasets_required,
        collections=tuple(collections),
        years=years,
        under=tuple(under),
        tags=tuple(tags),
    )
    return ParsedQuery(text=" ".join(text_terms), filters=filters)
