"""Faceted and full-text search over materials.

Section III-A: "one can explicitly filter against a group of features
that is of interest to an instructor looking for material" — course
level, language, dataset use, kind, collection, and (most importantly)
classification under an ontology subtree.  Full-text ranking answers the
"traditional search tools" queries.

Two interchangeable backends live behind one :class:`SearchEngine`
surface, selected by the ``CARCS_SEARCH`` environment variable:

* ``bm25`` (default) — the incrementally maintained inverted index of
  :mod:`repro.core.index`: facet posting sets intersected before BM25
  scoring, kept current by replaying the database **change journal**
  (:meth:`repro.db.Database.changes_since`).  A single insert or PATCH
  re-indexes only the affected document; a full rebuild happens only
  when the bounded journal has been outrun or a non-delta-able change
  (DDL, ontology edit, facet-name rename) appears.
* ``dense`` — the original TF-IDF + cosine path, retained as an escape
  hatch and as the reference the benchmarks compare against.  It refits
  the vectorizer whenever the repository version moves.

Both modes share tokenization (:func:`repro.core.index.text_tokens`)
and both guard against the aborted-transaction trap: an index built from
uncommitted state is never kept, because rollback would re-use its
version numbers for different content.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.db.errors import RowNotFound
from repro.obs import trace as _trace
from repro.text import TfidfVectorizer, cosine_matrix

from .index import MaterialIndex, text_tokens
from .material import CourseLevel, Material, MaterialKind
from .repository import Repository

#: Environment variable selecting the backend (``bm25`` | ``dense``).
ENV_MODE = "CARCS_SEARCH"
MODE_BM25 = "bm25"
MODE_DENSE = "dense"

#: Tables whose change-journal entries map to one affected material and
#: are therefore delta-maintainable (column holding the material id is
#: ``materials_id`` for every link table, ``id`` for materials itself).
_LINK_TABLES = frozenset((
    "material_authors", "material_tags", "material_datasets",
    "material_languages", "material_classifications",
))

#: Tables whose mutations cannot change any search result: skipping them
#: means user sign-ups and curation-workflow writes no longer invalidate
#: the index at all (the dense path rebuilt on *every* version bump).
_IRRELEVANT_TABLES = frozenset(
    ("users", "submissions", "suggestions", "_jobs")
)

#: Facet-name tables: inserts are inert (a name row affects nothing
#: until a link row references it, and that link has its own journal
#: entry); updates/deletes would rename facets under indexed documents,
#: which no repository API currently does — full rebuild if ever seen.
_NAME_TABLES = frozenset(("authors", "tags", "datasets", "languages"))


def env_mode() -> str:
    """Backend selected by ``CARCS_SEARCH`` (unset/unknown → ``bm25``)."""
    raw = os.environ.get(ENV_MODE, MODE_BM25).strip().lower()
    return MODE_DENSE if raw == MODE_DENSE else MODE_BM25


@dataclass
class SearchFilters:
    """Conjunction of facet constraints; ``None``/empty means 'any'."""

    kinds: tuple[MaterialKind, ...] = ()
    course_levels: tuple[CourseLevel, ...] = ()
    languages: tuple[str, ...] = ()
    datasets_required: bool | None = None
    collections: tuple[str, ...] = ()
    years: tuple[int, int] | None = None           # inclusive range
    under: tuple[str, ...] = ()                    # ontology subtree keys
    tags: tuple[str, ...] = ()

    def matches(self, material: Material, classified_keys: frozenset[str],
                subtree_sets: Sequence[frozenset[str]]) -> bool:
        if self.kinds and material.kind not in self.kinds:
            return False
        if self.course_levels and material.course_level not in self.course_levels:
            return False
        if self.languages and not (
            set(l.lower() for l in self.languages)
            & set(l.lower() for l in material.languages)
        ):
            return False
        if self.datasets_required is True and not material.datasets:
            return False
        if self.datasets_required is False and material.datasets:
            return False
        if self.collections and material.collection not in self.collections:
            return False
        if self.years is not None:
            lo, hi = self.years
            if material.year is None or not (lo <= material.year <= hi):
                return False
        if self.tags and not (set(self.tags) & set(material.tags)):
            return False
        # Every requested subtree must be touched by the classification.
        for subtree in subtree_sets:
            if not (classified_keys & subtree):
                return False
        return True


@dataclass
class SearchHit:
    material: Material
    score: float


class SearchEngine:
    """Combined facet + full-text search over one repository.

    The index is maintained lazily: a query first reconciles with the
    repository's mutation version.  In ``bm25`` mode reconciliation is
    incremental (replay the change journal, re-resolve only the touched
    materials); in ``dense`` mode it is a full refit.  :meth:`refresh`
    forces an eager full rebuild in either mode.

    Attach a :class:`repro.obs.MetricsRegistry` via :attr:`metrics` (the
    API layer does) to get index-size gauges, incremental-vs-full
    rebuild counters and a search latency histogram.
    """

    def __init__(self, repo: Repository, *, mode: str | None = None) -> None:
        self.repo = repo
        self.mode = mode if mode in (MODE_BM25, MODE_DENSE) else env_mode()
        #: Optional MetricsRegistry; set by the web layer.
        self.metrics = None
        # dense-mode state
        self._materials: list[Material] = []
        self._vectorizer: TfidfVectorizer | None = None
        self._matrix: np.ndarray | None = None
        # bm25-mode state
        self._index = MaterialIndex()
        self._indexed_version: int | None = None
        # maintenance counters (numeric only; merged into Repository.stats)
        self.full_rebuilds = 0
        self.delta_catchups = 0
        self.docs_reindexed = 0
        self.searches = 0
        # The engine is shared (Repository.search_engine memoizes one
        # instance) and reconciliation swaps several fields; a reentrant
        # mutex keeps concurrent searches from observing a half-built
        # index.
        self._engine_lock = threading.RLock()

    # ------------------------------------------------------------ stats

    def stats(self) -> dict[str, int]:
        """Numeric maintenance/size counters (``Repository.stats`` merges
        these under a ``search_`` prefix; ``/api/v1/metrics`` re-exports
        them as gauges)."""
        out = {
            "full_rebuilds": self.full_rebuilds,
            "delta_catchups": self.delta_catchups,
            "docs_reindexed": self.docs_reindexed,
            "searches": self.searches,
        }
        if self.mode == MODE_BM25:
            out.update(self._index.stats())
        else:
            out["docs"] = len(self._materials)
            vocab = self._vectorizer.vocabulary if self._vectorizer else None
            out["terms"] = len(vocab) if vocab is not None else 0
        return out

    def _record_rebuild(self, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "carcs_search_rebuilds_total", kind=kind
            ).inc()
            for name, value in self._index.stats().items():
                self.metrics.gauge(f"carcs_search_index_{name}").set(value)

    # ------------------------------------------------------- maintenance

    def refresh(self) -> None:
        """Force a full rebuild of the active backend's index."""
        with self._engine_lock:
            self._refresh_locked()

    def _refresh_locked(self) -> None:
        with _trace.span("search.rebuild", mode=self.mode) as span_:
            if self.mode == MODE_BM25:
                index = MaterialIndex()
                keys_by_id = self.repo.classification_keys()
                for material in self.repo.materials():
                    assert material.id is not None
                    index.add(material, keys_by_id.get(material.id, frozenset()))
                self._index = index
                span_.set(docs=len(index.docs))
            else:
                self._materials = self.repo.materials()
                texts = [m.text() for m in self._materials]
                if texts:
                    self._vectorizer = TfidfVectorizer(min_df=1)
                    self._matrix = self._vectorizer.fit_transform(texts)
                else:
                    self._vectorizer = None
                    self._matrix = None
                span_.set(docs=len(self._materials))
        self.full_rebuilds += 1
        self._record_rebuild("full")
        # An index built from uncommitted state must not survive the
        # transaction: rollback restores version counters, so keeping it
        # could serve phantom rows under a re-used version number.  Only
        # this thread's own transaction matters — concurrent readers run
        # against committed pinned snapshots.
        if self.repo.db.lock.write_held and self.repo.db.in_transaction:
            self._indexed_version = None
        else:
            self._indexed_version = self.repo.version

    def ensure_fresh(self) -> None:
        """Reconcile the index with the repository version (public form
        of the lazy step every query performs; benchmarks time this)."""
        with self.repo.db.pinned(), self._engine_lock:
            self._ensure_index()

    def _ensure_index(self) -> None:
        version = self.repo.version
        # An index built inside a transaction records no version, so a
        # non-None indexed version can only describe committed state.  A
        # pinned reader may also find the shared index *ahead* of its pin
        # (another thread reconciled after a newer commit); serving the
        # fresher index is the right call — rebuilding would regress the
        # shared index for everyone else.
        if self._indexed_version is not None and self._indexed_version >= version:
            return
        in_writer_tx = (
            self.repo.db.lock.write_held and self.repo.db.in_transaction
        )
        if (
            self.mode == MODE_BM25
            and self._indexed_version is not None
            and not in_writer_tx
        ):
            changes = self.repo.db.changes_since(
                self._indexed_version, upto=version
            )
            if changes is not None:
                with _trace.span(
                    "search.delta", changes=len(changes)
                ) as span_:
                    before = self.docs_reindexed
                    applied = self._apply_changes(changes)
                    span_.set(
                        applied=applied, docs=self.docs_reindexed - before
                    )
                if applied:
                    self._indexed_version = version
                    self.delta_catchups += 1
                    self._record_rebuild("delta")
                    return
        self._refresh_locked()

    def _apply_changes(self, changes) -> bool:
        """Catch the index up by re-resolving only the touched materials.

        Returns ``False`` when a change cannot be mapped to a bounded set
        of materials (DDL, ontology-entry or facet-name edits) — the
        caller then falls back to a full rebuild.
        """
        affected: set[int] = set()
        for change in changes:
            if change.table in _IRRELEVANT_TABLES:
                continue
            if change.table == "materials":
                affected.add(change.pk)
            elif change.table in _LINK_TABLES:
                assert change.row is not None
                affected.add(change.row["materials_id"])
            elif (
                change.op == "insert"
                and (change.table in _NAME_TABLES
                     or change.table == "ontology_entries")
            ):
                continue  # inert until something links to the new row
            else:
                return False
        keys_of = None
        if len(affected) > 1:
            # One batched pass beats per-material link-table queries as
            # soon as several documents changed together (bulk imports).
            keys_of = self.repo.classification_keys()
        for mid in affected:
            try:
                material = self.repo.get_material(mid)
            except RowNotFound:
                self._index.remove(mid)
            else:
                keys = (
                    keys_of.get(mid, frozenset()) if keys_of is not None
                    else frozenset(
                        str(item.key)
                        for item in self.repo.classification_of(mid).items()
                    )
                )
                self._index.reindex(material, keys)
            self.docs_reindexed += 1
        return True

    # ------------------------------------------------------------ search

    def _subtree_sets(self, filters: SearchFilters) -> list[frozenset[str]]:
        sets = []
        for key in filters.under:
            onto_name = key.split("/", 1)[0]
            onto = self.repo.ontology(onto_name)
            sets.append(frozenset(onto.subtree_keys(key)))
        return sets

    def search(
        self,
        text: str = "",
        filters: SearchFilters | None = None,
        *,
        limit: int = 20,
    ) -> list[SearchHit]:
        """Ranked results; with empty ``text`` returns facet matches with
        score 1.0 in repository (id) order."""
        started = time.perf_counter()
        with _trace.span("search.query", mode=self.mode, limit=limit) as span_:
            with self.repo.db.pinned(), self._engine_lock:
                hits = self._search_locked(text, filters, limit=limit)
            span_.set(hits=len(hits))
        if self.metrics is not None:
            self.metrics.histogram(
                "carcs_search_seconds", mode=self.mode
            ).observe(time.perf_counter() - started)
        return hits

    def _search_locked(
        self,
        text: str = "",
        filters: SearchFilters | None = None,
        *,
        limit: int = 20,
    ) -> list[SearchHit]:
        self._ensure_index()
        self.searches += 1
        filters = filters or SearchFilters()
        subtree_sets = self._subtree_sets(filters)
        if self.mode == MODE_BM25:
            return self._bm25_search(text, filters, subtree_sets, limit)
        return self._dense_search(text, filters, subtree_sets, limit)

    def _bm25_search(
        self, text: str, filters: SearchFilters,
        subtree_sets: list[frozenset[str]], limit: int,
    ) -> list[SearchHit]:
        candidates = self._index.candidates(filters, subtree_sets)
        if not text.strip():
            return [
                SearchHit(self._index.docs[i], 1.0)
                for i in sorted(candidates)[:limit]
            ]
        scores = self._index.score(text_tokens(text), candidates)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            SearchHit(self._index.docs[i], s) for i, s in ranked if s > 0.0
        ][:limit]

    def _dense_search(
        self, text: str, filters: SearchFilters,
        subtree_sets: list[frozenset[str]], limit: int,
    ) -> list[SearchHit]:
        # Classification key sets batch-loaded in one pass (previously one
        # link-table query per material per search).
        keys_by_id = self.repo.classification_keys()
        candidates: list[tuple[int, Material]] = []
        for idx, material in enumerate(self._materials):
            assert material.id is not None
            keys = keys_by_id.get(material.id, frozenset())
            if filters.matches(material, keys, subtree_sets):
                candidates.append((idx, material))

        if not text.strip():
            return [SearchHit(m, 1.0) for _, m in candidates[:limit]]

        if self._vectorizer is None or self._matrix is None or not candidates:
            return []
        qvec = self._vectorizer.transform([text])
        rows = np.array([idx for idx, _ in candidates])
        sims = cosine_matrix(qvec, self._matrix[rows]).ravel()
        order = np.argsort(-sims, kind="stable")
        hits = [
            SearchHit(candidates[int(i)][1], float(sims[int(i)]))
            for i in order
            if sims[int(i)] > 0.0
        ]
        return hits[:limit]

    # --------------------------------------------------------- similar-to

    def similar_to(
        self, material_id: int, *, limit: int = 10
    ) -> list[SearchHit]:
        """Text-level nearest neighbours of a material (complements the
        classification-level similarity of :mod:`repro.core.similarity`)."""
        with _trace.span("search.similar", material_id=material_id):
            with self.repo.db.pinned(), self._engine_lock:
                return self._similar_to_locked(material_id, limit=limit)

    def _similar_to_locked(
        self, material_id: int, *, limit: int = 10
    ) -> list[SearchHit]:
        self._ensure_index()
        if self.mode == MODE_BM25:
            if material_id not in self._index:
                raise KeyError(f"no material with id {material_id}")
            tokens = self._index.doc_tokens(material_id)
            candidates = set(self._index.docs)
            candidates.discard(material_id)
            scores = self._index.score(tokens, candidates)
            ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
            return [
                SearchHit(self._index.docs[i], s)
                for i, s in ranked if s > 0.0
            ][:limit]
        if self._matrix is None:
            raise KeyError(f"no material with id {material_id}")
        try:
            row = next(
                i for i, m in enumerate(self._materials) if m.id == material_id
            )
        except StopIteration:
            raise KeyError(f"no material with id {material_id}") from None
        sims = cosine_matrix(
            self._matrix[row : row + 1], self._matrix
        ).ravel()
        sims[row] = -1.0
        order = np.argsort(-sims, kind="stable")[:limit]
        return [
            SearchHit(self._materials[int(i)], float(sims[int(i)]))
            for i in order
            if sims[int(i)] > 0.0
        ]
