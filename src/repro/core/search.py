"""Faceted and full-text search over materials.

Section III-A: "one can explicitly filter against a group of features
that is of interest to an instructor looking for material" — course
level, language, dataset use, kind, collection, and (most importantly)
classification under an ontology subtree.  Full-text ranking uses the
TF-IDF substrate so "traditional search tools" queries work too.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.text import TfidfVectorizer, cosine_matrix

from .material import CourseLevel, Material, MaterialKind
from .repository import Repository


@dataclass
class SearchFilters:
    """Conjunction of facet constraints; ``None``/empty means 'any'."""

    kinds: tuple[MaterialKind, ...] = ()
    course_levels: tuple[CourseLevel, ...] = ()
    languages: tuple[str, ...] = ()
    datasets_required: bool | None = None
    collections: tuple[str, ...] = ()
    years: tuple[int, int] | None = None           # inclusive range
    under: tuple[str, ...] = ()                    # ontology subtree keys
    tags: tuple[str, ...] = ()

    def matches(self, material: Material, classified_keys: frozenset[str],
                subtree_sets: Sequence[frozenset[str]]) -> bool:
        if self.kinds and material.kind not in self.kinds:
            return False
        if self.course_levels and material.course_level not in self.course_levels:
            return False
        if self.languages and not (
            set(l.lower() for l in self.languages)
            & set(l.lower() for l in material.languages)
        ):
            return False
        if self.datasets_required is True and not material.datasets:
            return False
        if self.datasets_required is False and material.datasets:
            return False
        if self.collections and material.collection not in self.collections:
            return False
        if self.years is not None:
            lo, hi = self.years
            if material.year is None or not (lo <= material.year <= hi):
                return False
        if self.tags and not (set(self.tags) & set(material.tags)):
            return False
        # Every requested subtree must be touched by the classification.
        for subtree in subtree_sets:
            if not (classified_keys & subtree):
                return False
        return True


@dataclass
class SearchHit:
    material: Material
    score: float


class SearchEngine:
    """Combined facet + full-text search over one repository.

    The TF-IDF index is built lazily from material titles/descriptions and
    rebuilt automatically whenever the repository's mutation version has
    moved since the last query — no manual invalidation needed (the old
    row-count heuristic missed in-place edits such as a PATCHed title).
    :meth:`refresh` remains available to force an eager rebuild.
    """

    def __init__(self, repo: Repository) -> None:
        self.repo = repo
        self._materials: list[Material] = []
        self._vectorizer: TfidfVectorizer | None = None
        self._matrix: np.ndarray | None = None
        self._indexed_version: int | None = None
        # The engine is shared (Repository.search_engine memoizes one
        # instance) and the lazy rebuild swaps several fields; a reentrant
        # mutex keeps concurrent searches from observing a half-built
        # index.
        self._engine_lock = threading.RLock()

    def refresh(self) -> None:
        with self._engine_lock:
            self._materials = self.repo.materials()
            texts = [m.text() for m in self._materials]
            if texts:
                self._vectorizer = TfidfVectorizer(min_df=1)
                self._matrix = self._vectorizer.fit_transform(texts)
            else:
                self._vectorizer = None
                self._matrix = None
            self._indexed_version = getattr(self.repo, "version", None)

    def _ensure_index(self) -> None:
        version = getattr(self.repo, "version", None)
        if (
            self._indexed_version is None
            or version is None
            or version != self._indexed_version
        ):
            self.refresh()

    def _subtree_sets(self, filters: SearchFilters) -> list[frozenset[str]]:
        sets = []
        for key in filters.under:
            onto_name = key.split("/", 1)[0]
            onto = self.repo.ontology(onto_name)
            sets.append(frozenset(onto.subtree_keys(key)))
        return sets

    def search(
        self,
        text: str = "",
        filters: SearchFilters | None = None,
        *,
        limit: int = 20,
    ) -> list[SearchHit]:
        """Ranked results; with empty ``text`` returns facet matches with
        score 1.0 in repository order."""
        with self.repo.db.lock.read(), self._engine_lock:
            return self._search_locked(text, filters, limit=limit)

    def _search_locked(
        self,
        text: str = "",
        filters: SearchFilters | None = None,
        *,
        limit: int = 20,
    ) -> list[SearchHit]:
        self._ensure_index()
        filters = filters or SearchFilters()
        subtree_sets = self._subtree_sets(filters)

        candidates: list[tuple[int, Material]] = []
        for idx, material in enumerate(self._materials):
            assert material.id is not None
            keys = frozenset(
                str(item.key)
                for item in self.repo.classification_of(material.id).items()
            )
            if filters.matches(material, keys, subtree_sets):
                candidates.append((idx, material))

        if not text.strip():
            return [SearchHit(m, 1.0) for _, m in candidates[:limit]]

        if self._vectorizer is None or self._matrix is None or not candidates:
            return []
        qvec = self._vectorizer.transform([text])
        rows = np.array([idx for idx, _ in candidates])
        sims = cosine_matrix(qvec, self._matrix[rows]).ravel()
        order = np.argsort(-sims, kind="stable")
        hits = [
            SearchHit(candidates[int(i)][1], float(sims[int(i)]))
            for i in order
            if sims[int(i)] > 0.0
        ]
        return hits[:limit]

    def similar_to(
        self, material_id: int, *, limit: int = 10
    ) -> list[SearchHit]:
        """Text-level nearest neighbours of a material (complements the
        classification-level similarity of :mod:`repro.core.similarity`)."""
        with self.repo.db.lock.read(), self._engine_lock:
            return self._similar_to_locked(material_id, limit=limit)

    def _similar_to_locked(
        self, material_id: int, *, limit: int = 10
    ) -> list[SearchHit]:
        self._ensure_index()
        if self._matrix is None:
            return []
        try:
            row = next(
                i for i, m in enumerate(self._materials) if m.id == material_id
            )
        except StopIteration:
            raise KeyError(f"no material with id {material_id}") from None
        sims = cosine_matrix(
            self._matrix[row : row + 1], self._matrix
        ).ravel()
        sims[row] = -1.0
        order = np.argsort(-sims, kind="stable")[:limit]
        return [
            SearchHit(self._materials[int(i)], float(sims[int(i)]))
            for i in order
            if sims[int(i)] > 0.0
        ]
