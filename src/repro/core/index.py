"""Incremental inverted index over materials: BM25 text + facet postings.

The dense TF-IDF path in :mod:`repro.core.search` refits a vectorizer
over the whole corpus on *any* repository mutation and scans every
material per query — O(corpus) work on both the write and the read side.
This module is the scalable replacement behind the paper's use case A
("explicitly filter against a group of features ... traditional search
tools", Section III-A):

* a **token → postings** inverted index (``{token: {doc_id: tf}}``) with
  cached per-document lengths, scored with BM25 at query time;
* **per-facet posting sets** (kind, course level, language, collection,
  tag, dataset presence, classification key) intersected *before*
  scoring, replacing the linear ``SearchFilters.matches`` scan;
* O(changed document) **delta maintenance**: :meth:`MaterialIndex.add`,
  :meth:`~MaterialIndex.remove` and :meth:`~MaterialIndex.reindex`
  touch only one document's postings, never the rest of the corpus.

Every piece of scoring state is either an exact integer (term counts,
document lengths, their running total) or derived from those integers at
query time, so an incrementally maintained index returns *bit-identical*
scores to one rebuilt from scratch — the invariant the property tests in
``tests/core/test_search_index.py`` enforce over randomized mutation
sequences.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.text import preprocess

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .material import Material
    from .search import SearchFilters

# Standard BM25 constants (Robertson et al.): k1 saturates term
# frequency, b scales the document-length normalization.
BM25_K1 = 1.5
BM25_B = 0.75


def text_tokens(text: str) -> list[str]:
    """The index's tokenization: tokenize → stopwords → stemming.

    Shared with the dense TF-IDF path (both call
    :func:`repro.text.preprocess`), so switching ``CARCS_SEARCH`` modes
    never changes which terms a document is findable under.
    """
    return preprocess(text)


class MaterialIndex:
    """Inverted text + facet index over one set of materials.

    Not thread-safe on its own: :class:`repro.core.search.SearchEngine`
    serializes every call under its engine lock.
    """

    def __init__(self) -> None:
        # token -> {doc_id: term frequency}
        self._postings: dict[str, dict[int, int]] = {}
        # doc_id -> {token: term frequency}; the reverse mapping that
        # makes removal O(document tokens) instead of O(vocabulary).
        self._doc_terms: dict[int, dict[str, int]] = {}
        self._doc_lengths: dict[int, int] = {}
        self._total_length = 0  # exact int: parity under any op order
        # Documents by id — the hit payload, kept current by reindex().
        self.docs: dict[int, "Material"] = {}
        # Facet posting sets: facet value -> doc ids.
        self._by_kind: dict[str, set[int]] = {}
        self._by_level: dict[str, set[int]] = {}
        self._by_language: dict[str, set[int]] = {}   # lowercased
        self._by_collection: dict[str, set[int]] = {}
        self._by_tag: dict[str, set[int]] = {}
        self._by_key: dict[str, set[int]] = {}        # classification keys
        self._with_datasets: set[int] = set()
        self._year_of: dict[int, int | None] = {}
        self.keys_of: dict[int, frozenset[str]] = {}

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.docs)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self.docs

    def doc_tokens(self, doc_id: int) -> list[str]:
        """Distinct indexed tokens of one document (similar-to queries)."""
        return list(self._doc_terms[doc_id])

    def stats(self) -> dict[str, int]:
        """Size gauges: documents, distinct terms, text/facet postings."""
        return {
            "docs": len(self.docs),
            "terms": len(self._postings),
            "postings": sum(len(p) for p in self._postings.values()),
            "facet_postings": sum(
                len(s)
                for index in (
                    self._by_kind, self._by_level, self._by_language,
                    self._by_collection, self._by_tag, self._by_key,
                )
                for s in index.values()
            ) + len(self._with_datasets),
        }

    # -- maintenance ------------------------------------------------------

    @staticmethod
    def _facet_add(index: dict[str, set[int]], value: str, doc_id: int) -> None:
        index.setdefault(value, set()).add(doc_id)

    @staticmethod
    def _facet_remove(index: dict[str, set[int]], value: str, doc_id: int) -> None:
        bucket = index.get(value)
        if bucket is not None:
            bucket.discard(doc_id)
            if not bucket:
                del index[value]

    def add(self, material: "Material", keys: frozenset[str]) -> None:
        """Index one material (text + facets); O(material tokens)."""
        doc_id = material.id
        assert doc_id is not None
        if doc_id in self.docs:
            raise ValueError(f"material {doc_id} already indexed")
        terms: dict[str, int] = {}
        for token in text_tokens(material.text()):
            terms[token] = terms.get(token, 0) + 1
        length = sum(terms.values())
        for token, tf in terms.items():
            self._postings.setdefault(token, {})[doc_id] = tf
        self._doc_terms[doc_id] = terms
        self._doc_lengths[doc_id] = length
        self._total_length += length
        self.docs[doc_id] = material

        self._facet_add(self._by_kind, material.kind.value, doc_id)
        if material.course_level is not None:
            self._facet_add(self._by_level, material.course_level.value, doc_id)
        for lang in material.languages:
            self._facet_add(self._by_language, lang.lower(), doc_id)
        if material.collection:
            self._facet_add(self._by_collection, material.collection, doc_id)
        for tag in material.tags:
            self._facet_add(self._by_tag, tag, doc_id)
        for key in keys:
            self._facet_add(self._by_key, key, doc_id)
        if material.datasets:
            self._with_datasets.add(doc_id)
        self._year_of[doc_id] = material.year
        self.keys_of[doc_id] = keys

    def remove(self, doc_id: int) -> bool:
        """Drop one material from every posting; O(material tokens)."""
        material = self.docs.pop(doc_id, None)
        if material is None:
            return False
        terms = self._doc_terms.pop(doc_id)
        self._total_length -= self._doc_lengths.pop(doc_id)
        for token in terms:
            plist = self._postings[token]
            del plist[doc_id]
            if not plist:
                del self._postings[token]

        self._facet_remove(self._by_kind, material.kind.value, doc_id)
        if material.course_level is not None:
            self._facet_remove(self._by_level, material.course_level.value, doc_id)
        for lang in material.languages:
            self._facet_remove(self._by_language, lang.lower(), doc_id)
        if material.collection:
            self._facet_remove(self._by_collection, material.collection, doc_id)
        for tag in material.tags:
            self._facet_remove(self._by_tag, tag, doc_id)
        for key in self.keys_of.pop(doc_id):
            self._facet_remove(self._by_key, key, doc_id)
        self._with_datasets.discard(doc_id)
        del self._year_of[doc_id]
        return True

    def reindex(self, material: "Material", keys: frozenset[str]) -> None:
        """Replace one material's postings with its current state."""
        assert material.id is not None
        self.remove(material.id)
        self.add(material, keys)

    # -- faceted candidate selection --------------------------------------

    def candidates(
        self,
        filters: "SearchFilters",
        subtree_sets: Sequence[frozenset[str]] = (),
    ) -> set[int]:
        """Doc ids satisfying every facet constraint, via posting-set
        intersection (no per-material scan)."""
        cand: set[int] | None = None

        def narrow(matching: set[int]) -> None:
            nonlocal cand
            cand = set(matching) if cand is None else cand & matching

        def union(index: Mapping[str, set[int]], values: Iterable[str]) -> set[int]:
            out: set[int] = set()
            for value in values:
                out |= index.get(value, set())
            return out

        if filters.kinds:
            narrow(union(self._by_kind, (k.value for k in filters.kinds)))
        if filters.course_levels:
            narrow(union(self._by_level, (c.value for c in filters.course_levels)))
        if filters.languages:
            narrow(union(self._by_language, (l.lower() for l in filters.languages)))
        if filters.collections:
            narrow(union(self._by_collection, filters.collections))
        if filters.tags:
            narrow(union(self._by_tag, filters.tags))
        if filters.datasets_required is True:
            narrow(self._with_datasets)
        elif filters.datasets_required is False:
            narrow(set(self.docs) - self._with_datasets)
        for subtree in subtree_sets:
            # Conjunctive across subtrees, disjunctive within one: the
            # material must touch every requested subtree somewhere.
            narrow(union(self._by_key, subtree))
        if cand is None:
            cand = set(self.docs)
        if filters.years is not None:
            lo, hi = filters.years
            cand = {
                i for i in cand
                if self._year_of[i] is not None and lo <= self._year_of[i] <= hi
            }
        return cand

    # -- BM25 scoring ------------------------------------------------------

    def score(
        self, tokens: Iterable[str], candidates: set[int]
    ) -> dict[int, float]:
        """BM25 scores of ``candidates`` against the (deduplicated) query
        tokens; documents matching no token are absent from the result.

        All inputs to the float arithmetic (tf, df, N, document lengths,
        their running total) are exact integers maintained identically by
        incremental and from-scratch builds, and per-document
        contributions accumulate in query-token order — so scores are
        reproducible bit-for-bit across build histories.
        """
        n_docs = len(self.docs)
        if n_docs == 0 or not candidates:
            return {}
        avgdl = self._total_length / n_docs
        scores: dict[int, float] = {}
        seen: set[str] = set()
        for token in tokens:
            if token in seen:
                continue
            seen.add(token)
            plist = self._postings.get(token)
            if not plist:
                continue
            df = len(plist)
            idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
            # Iterate the smaller side of the (postings, candidates) pair.
            if len(candidates) < len(plist):
                pairs = ((d, plist[d]) for d in candidates if d in plist)
            else:
                pairs = ((d, tf) for d, tf in plist.items() if d in candidates)
            for doc_id, tf in pairs:
                if avgdl > 0.0:
                    norm = 1.0 - BM25_B + BM25_B * (self._doc_lengths[doc_id] / avgdl)
                else:
                    norm = 1.0
                gain = idf * (tf * (BM25_K1 + 1.0)) / (tf + BM25_K1 * norm)
                scores[doc_id] = scores.get(doc_id, 0.0) + gain
        return scores
