"""Classification migration between ontology editions.

When a curriculum is revised (PDC12 → PDC19), every stored classification
must be carried over or flagged for editorial review — the CAR-CS system
"is highly extensible" and its crowdsourced model depends on not losing
curation work across editions.  :func:`migrate_classifications` applies a
key-translation function to all of a repository's links for one ontology
and produces an auditable report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .ontology import Ontology
from .repository import Repository

#: Maps an old-edition key to its new-edition key(s); empty tuple = the
#: entry was dropped and the link needs editorial attention.
KeyTranslator = Callable[[str], Sequence[str]]


@dataclass
class MigrationReport:
    old_ontology: str
    new_ontology: str
    migrated_links: int = 0            # 1:1 carried over
    expanded_links: int = 0            # 1:N (e.g. split topics)
    dropped_links: list[tuple[int, str]] = field(default_factory=list)
    materials_touched: set[int] = field(default_factory=set)

    def summary(self) -> dict[str, int]:
        return {
            "migrated": self.migrated_links,
            "expanded": self.expanded_links,
            "dropped": len(self.dropped_links),
            "materials": len(self.materials_touched),
        }


def migrate_classifications(
    repo: Repository,
    old_name: str,
    new_ontology: Ontology,
    translate: KeyTranslator,
    *,
    keep_old: bool = False,
) -> MigrationReport:
    """Re-classify every material from ``old_name`` to ``new_ontology``.

    ``new_ontology`` is loaded into the repository if not yet present.
    Each existing (material, old key) link is translated; translated keys
    missing from the new edition, or translations returning no keys, are
    recorded as dropped (for an editor to fix) and the old link is kept
    in that case regardless of ``keep_old``.  With ``keep_old=False``
    successfully migrated old links are removed.
    """
    repo.ontology(old_name)  # must exist
    if new_ontology.name not in repo.ontologies:
        repo.add_ontology(new_ontology)

    report = MigrationReport(
        old_ontology=old_name, new_ontology=new_ontology.name
    )
    # Snapshot first: we mutate links while iterating.
    links = [
        (mid, key)
        for mid, key in repo.classification_pairs()
        if key.split("/", 1)[0] == old_name
    ]
    for mid, old_key in links:
        bloom = repo.classification_of(mid).bloom(old_name, old_key)
        new_keys = [
            k for k in translate(old_key) if k in new_ontology
        ]
        if not new_keys:
            report.dropped_links.append((mid, old_key))
            continue
        for new_key in new_keys:
            repo.classify(mid, new_ontology.name, new_key, bloom=bloom)
        if len(new_keys) == 1:
            report.migrated_links += 1
        else:
            report.expanded_links += 1
        report.materials_touched.add(mid)
        if not keep_old:
            repo.declassify(mid, old_key)
    return report
