"""Self-contained JSON persistence for a CAR-CS repository.

The prototype kept its state in PostgreSQL; this substrate is in-memory,
so deployments need a durable snapshot format.  The dump is fully
self-contained — ontology trees are serialized alongside materials and
classifications — so a snapshot restores bit-for-bit even if the code's
built-in ontologies change later (exactly the cross-edition safety the
migration tooling is about).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .classification import ClassificationSet
from .material import CourseLevel, Material, MaterialKind
from .ontology import BloomLevel, NodeKind, Ontology, Tier
from .repository import Repository

FORMAT_VERSION = 1


def _ontology_to_dict(onto: Ontology) -> dict[str, Any]:
    return {
        "name": onto.name,
        "description": onto.description,
        "nodes": [
            {
                "key": n.key,
                "label": n.label,
                "kind": n.kind.value,
                "parent": n.parent,
                "code": n.code,
                "tier": n.tier.value,
                "bloom": n.bloom.value if n.bloom else None,
                "hours": n.hours,
                "cross_links": list(n.cross_links),
            }
            for n in onto.nodes()
        ],
    }


def _ontology_from_dict(data: dict[str, Any]) -> Ontology:
    onto = Ontology(data["name"], data.get("description", ""))
    for node in data["nodes"]:
        onto.add(
            node["key"],
            node["label"],
            NodeKind(node["kind"]),
            node["parent"] if node["parent"] != data["name"] else None,
            code=node.get("code", ""),
            tier=Tier(node.get("tier", "none")),
            bloom=BloomLevel(node["bloom"]) if node.get("bloom") else None,
            hours=node.get("hours", 0.0),
            cross_links=tuple(node.get("cross_links", ())),
        )
    onto.validate()
    return onto


def export_repository(repo: Repository) -> dict[str, Any]:
    """The full repository state as one JSON-serializable dict."""
    materials = []
    for material in repo.materials():
        assert material.id is not None
        cs = repo.classification_of(material.id)
        materials.append({
            "id": material.id,
            "title": material.title,
            "description": material.description,
            "kind": material.kind.value,
            "authors": list(material.authors),
            "url": material.url,
            "course_level": (
                material.course_level.value if material.course_level else None
            ),
            "languages": list(material.languages),
            "datasets": list(material.datasets),
            "tags": list(material.tags),
            "collection": material.collection,
            "year": material.year,
            "classifications": [
                {
                    "ontology": item.ontology,
                    "key": item.key,
                    "bloom": item.bloom.value if item.bloom else None,
                }
                for item in cs.items()
            ],
        })
    users = repo.db.table("users").find()
    return {
        "format_version": FORMAT_VERSION,
        "ontologies": [
            _ontology_to_dict(o) for _, o in sorted(repo.ontologies.items())
        ],
        "materials": materials,
        "users": users,
    }


def import_repository(data: dict[str, Any]) -> Repository:
    """Rebuild a repository from :func:`export_repository` output.

    Material ids are preserved (the dump is the source of truth for
    cross-references like similarity-graph node ids).
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported snapshot format {version!r}; expected {FORMAT_VERSION}"
        )
    repo = Repository()
    for onto_data in data["ontologies"]:
        repo.add_ontology(_ontology_from_dict(onto_data))
    for user in data.get("users", []):
        repo.db.insert("users", **user)
    for m in data["materials"]:
        cs = ClassificationSet()
        for c in m["classifications"]:
            cs.add(
                c["ontology"], c["key"],
                BloomLevel(c["bloom"]) if c.get("bloom") else None,
            )
        material = Material(
            title=m["title"],
            description=m["description"],
            kind=MaterialKind(m["kind"]),
            authors=tuple(m["authors"]),
            url=m.get("url", ""),
            course_level=(
                CourseLevel(m["course_level"]) if m.get("course_level") else None
            ),
            languages=tuple(m.get("languages", ())),
            datasets=tuple(m.get("datasets", ())),
            tags=tuple(m.get("tags", ())),
            collection=m.get("collection", ""),
            year=m.get("year"),
        )
        # Preserve the original id by inserting the row explicitly first.
        with repo.db.transaction():
            row = repo.db.insert(
                "materials",
                id=m["id"],
                title=material.title,
                description=material.description,
                kind=material.kind.value,
                url=material.url,
                course_level=(
                    material.course_level.value if material.course_level else None
                ),
                collection=material.collection,
                year=material.year,
            )
            mid = row["id"]
            repo._link_named(
                repo.material_authors, "authors", mid, material.authors
            )
            repo._link_named(repo.material_tags, "tags", mid, material.tags)
            repo._link_named(
                repo.material_datasets, "datasets", mid, material.datasets
            )
            repo._link_named(
                repo.material_languages, "languages", mid, material.languages
            )
            for item in cs.items():
                repo.classify(mid, item.ontology, item.key, bloom=item.bloom)
    return repo


def save_json(repo: Repository, path: str | Path) -> Path:
    """Write the snapshot to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(export_repository(repo), indent=1, sort_keys=True)
    )
    return path


def load_json(path: str | Path) -> Repository:
    """Read a snapshot produced by :func:`save_json`."""
    return import_repository(json.loads(Path(path).read_text()))
