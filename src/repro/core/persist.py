"""Self-contained JSON persistence for a CAR-CS repository.

The prototype kept its state in PostgreSQL; this substrate is in-memory,
so deployments need a durable dump format.  Since format 2 the dump is a
thin wrapper over the storage engine's own snapshot serialization
(:func:`repro.db.database_to_dict`): the relational state round-trips
bit-for-bit (ids, version counters, indexes), and the ontology trees are
serialized alongside so a dump restores exactly even if the code's
built-in ontologies change later — the cross-edition safety the
migration tooling is about.

Format history / migration path:

* **1** — application-level dump (materials + classifications re-played
  through the repository API).  Still importable: :func:`import_repository`
  detects the version and routes v1 dumps through the legacy loader, so
  upgrading is "load the old file, save the new one".
* **2** — engine-level dump (``database`` key) + exact ontology trees.

Writes are atomic: :func:`save_json` streams to a sibling temp file,
fsyncs, then ``os.replace``\\ s it over the target, so a crash mid-save
leaves the previous dump intact rather than a truncated JSON file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.db import database_to_dict, restore_database

from .classification import ClassificationSet
from .material import CourseLevel, Material, MaterialKind
from .ontology import BloomLevel, NodeKind, Ontology, Tier
from .repository import Repository

FORMAT_VERSION = 2

#: Dump versions :func:`import_repository` can still read.
SUPPORTED_VERSIONS = (1, 2)


def _ontology_to_dict(onto: Ontology) -> dict[str, Any]:
    return {
        "name": onto.name,
        "description": onto.description,
        "nodes": [
            {
                "key": n.key,
                "label": n.label,
                "kind": n.kind.value,
                "parent": n.parent,
                "code": n.code,
                "tier": n.tier.value,
                "bloom": n.bloom.value if n.bloom else None,
                "hours": n.hours,
                "cross_links": list(n.cross_links),
            }
            for n in onto.nodes()
        ],
    }


def _ontology_from_dict(data: dict[str, Any]) -> Ontology:
    onto = Ontology(data["name"], data.get("description", ""))
    for node in data["nodes"]:
        onto.add(
            node["key"],
            node["label"],
            NodeKind(node["kind"]),
            node["parent"] if node["parent"] != data["name"] else None,
            code=node.get("code", ""),
            tier=Tier(node.get("tier", "none")),
            bloom=BloomLevel(node["bloom"]) if node.get("bloom") else None,
            hours=node.get("hours", 0.0),
            cross_links=tuple(node.get("cross_links", ())),
        )
    onto.validate()
    return onto


def export_repository(repo: Repository) -> dict[str, Any]:
    """The full repository state as one JSON-serializable dict (format 2).

    The relational state is the engine's own snapshot serialization, so
    restore is exact: ids, per-table version counters and secondary
    indexes all survive, and no repository-level write path is re-run.
    """
    return {
        "format_version": FORMAT_VERSION,
        "ontologies": [
            _ontology_to_dict(o) for _, o in sorted(repo.ontologies.items())
        ],
        "database": database_to_dict(repo.db),
    }


def import_repository(data: dict[str, Any]) -> Repository:
    """Rebuild a repository from :func:`export_repository` output.

    Dispatches on ``format_version``: current (2) dumps restore through
    the engine's snapshot loader; legacy (1) dumps re-play through the
    repository API.  Material ids are preserved either way (the dump is
    the source of truth for cross-references like similarity-graph node
    ids).
    """
    version = data.get("format_version")
    if version == 1:
        return _import_v1(data)
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported snapshot format {version!r}; "
            f"supported: {SUPPORTED_VERSIONS}"
        )
    db = restore_database(data["database"])
    repo = Repository(db)  # reattach path: schema exists, helpers rebind
    # The dump's trees are the source of truth — overwrite whatever the
    # reattach reconstructed (built-ins may have changed across editions).
    repo._ontologies = {
        o["name"]: _ontology_from_dict(o) for o in data["ontologies"]
    }
    return repo


def _import_v1(data: dict[str, Any]) -> Repository:
    """Legacy (format 1) loader: re-play the dump through the API."""
    repo = Repository()
    for onto_data in data["ontologies"]:
        repo.add_ontology(_ontology_from_dict(onto_data))
    for user in data.get("users", []):
        repo.db.insert("users", **user)
    for m in data["materials"]:
        cs = ClassificationSet()
        for c in m["classifications"]:
            cs.add(
                c["ontology"], c["key"],
                BloomLevel(c["bloom"]) if c.get("bloom") else None,
            )
        material = Material(
            title=m["title"],
            description=m["description"],
            kind=MaterialKind(m["kind"]),
            authors=tuple(m["authors"]),
            url=m.get("url", ""),
            course_level=(
                CourseLevel(m["course_level"]) if m.get("course_level") else None
            ),
            languages=tuple(m.get("languages", ())),
            datasets=tuple(m.get("datasets", ())),
            tags=tuple(m.get("tags", ())),
            collection=m.get("collection", ""),
            year=m.get("year"),
        )
        # Preserve the original id by inserting the row explicitly first.
        with repo.db.transaction():
            row = repo.db.insert(
                "materials",
                id=m["id"],
                title=material.title,
                description=material.description,
                kind=material.kind.value,
                url=material.url,
                course_level=(
                    material.course_level.value if material.course_level else None
                ),
                collection=material.collection,
                year=material.year,
            )
            mid = row["id"]
            repo._link_named(
                repo.material_authors, "authors", mid, material.authors
            )
            repo._link_named(repo.material_tags, "tags", mid, material.tags)
            repo._link_named(
                repo.material_datasets, "datasets", mid, material.datasets
            )
            repo._link_named(
                repo.material_languages, "languages", mid, material.languages
            )
            for item in cs.items():
                repo.classify(mid, item.ontology, item.key, bloom=item.bloom)
    return repo


def save_json(repo: Repository, path: str | Path) -> Path:
    """Write the dump to ``path`` atomically; returns the path.

    The JSON is streamed straight to a sibling temp file (never
    materialized as one big string), fsynced, and renamed over the
    target — readers see either the old dump or the complete new one.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(export_repository(repo), fh, indent=1, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_json(path: str | Path) -> Repository:
    """Read a dump produced by :func:`save_json` (any supported format)."""
    return import_repository(json.loads(Path(path).read_text()))
