"""Pedagogical material model.

"In the database, each assignment is associated with a title, authors, URL
and description" (Section III-B); CAR-CS additionally "uses classic
material descriptors, such as course-level, programming language, and
datasets" (Section III-A).  The paper's material kinds — "assignments,
lecture slides, exams, video lectures, book chapters, etc." — are the
:class:`MaterialKind` enum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable


class MaterialKind(enum.Enum):
    """The kinds of pedagogical material the paper enumerates."""

    ASSIGNMENT = "assignment"
    LECTURE_SLIDES = "lecture_slides"
    EXAM = "exam"
    VIDEO_LECTURE = "video_lecture"
    BOOK_CHAPTER = "book_chapter"
    COURSE_DESCRIPTION = "course_description"
    DEMO = "demo"


class CourseLevel(enum.Enum):
    """Target course level descriptor (CS0/CS1/CS2 plus later levels)."""

    CS0 = "cs0"
    CS1 = "cs1"
    CS2 = "cs2"
    INTERMEDIATE = "intermediate"
    ADVANCED = "advanced"


@dataclass(frozen=True)
class Material:
    """An immutable pedagogical material record.

    Identity (``id``) is assigned by the repository on insertion;
    materials constructed by hand for seeding carry ``id=None``.
    """

    title: str
    description: str
    kind: MaterialKind = MaterialKind.ASSIGNMENT
    authors: tuple[str, ...] = ()
    url: str = ""
    course_level: CourseLevel | None = None
    languages: tuple[str, ...] = ()
    datasets: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()
    collection: str = ""
    year: int | None = None
    id: int | None = None

    def __post_init__(self) -> None:
        if not self.title.strip():
            raise ValueError("material title must be non-empty")

    def with_id(self, new_id: int) -> "Material":
        return replace(self, id=new_id)

    def text(self) -> str:
        """Title + description, the searchable full text of the material."""
        return f"{self.title}\n{self.description}"

    def summary(self, width: int = 70) -> str:
        """One-line display string used by reports and examples."""
        desc = self.description.replace("\n", " ")
        if len(desc) > width:
            desc = desc[: width - 1] + "…"
        return f"[{self.kind.value}] {self.title} — {desc}"


def normalize_authors(authors: Iterable[str]) -> tuple[str, ...]:
    """Strip whitespace, drop empties, and deduplicate preserving order."""
    seen: set[str] = set()
    out: list[str] = []
    for author in authors:
        name = " ".join(author.split())
        if name and name.lower() not in seen:
            seen.add(name.lower())
            out.append(name)
    return tuple(out)
