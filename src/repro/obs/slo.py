"""Windowed SLOs with multi-window burn rates over the live registry.

The metrics layer (PR 2) exports *cumulative* counters and histograms —
`http_requests_total` only ever grows, so it can say "42 errors since
boot" but never "are we burning error budget **right now**?".  This
module adds the rate layer on top without touching the hot path: a
:class:`SloMonitor` snapshots the registry's request counters and
latency histograms whenever it is read (at most once per
``min_sample_interval``), keeps a bounded ring of samples, and derives
per-window rates by diffing the freshest sample against the one closest
to each window's start.

Two objectives, in the shape SRE practice expects:

* **Availability** — the fraction of requests that did not answer 5xx
  (4xx is the client's budget, not ours).  Target
  ``CARCS_SLO_AVAILABILITY`` (default 0.999).
* **Latency** — the fraction of requests at or under
  ``CARCS_SLO_LATENCY_MS`` (default 100 ms, a bucket bound of the
  default latency histogram), target ``CARCS_SLO_LATENCY_TARGET``
  (default 0.95).

Each objective reports per window (default 5 m and 1 h) its ratio and
its **burn rate** — bad-event ratio divided by the budget ``1 −
target``.  Burn 1.0 means the budget exactly lasts the SLO period;
a sustained 5-minute burn above ~14 pages, a 1-hour burn above ~2
warns: the classic fast/slow multi-window policy falls out of the two
windows without any extra machinery.  ``GET /api/v2/slo`` serves
:meth:`SloMonitor.report` and :meth:`SloMonitor.export` mirrors it into
``carcs_slo_*`` gauges on every metrics scrape.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Callable

from .metrics import MetricsRegistry

ENV_AVAILABILITY = "CARCS_SLO_AVAILABILITY"
ENV_LATENCY_MS = "CARCS_SLO_LATENCY_MS"
ENV_LATENCY_TARGET = "CARCS_SLO_LATENCY_TARGET"

DEFAULT_AVAILABILITY_TARGET = 0.999
DEFAULT_LATENCY_THRESHOLD_MS = 100.0
DEFAULT_LATENCY_TARGET = 0.95

#: (label, seconds) — the short window catches fast budget burn, the
#: long one filters noise; both serve from the same sample ring.
DEFAULT_WINDOWS = (("5m", 300.0), ("1h", 3600.0))

#: Series the monitor reads (produced by the web metrics middleware).
REQUESTS_METRIC = "http_requests_total"
LATENCY_METRIC = "http_request_seconds"


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


class _Sample:
    """One point-in-time aggregation of the request counters."""

    __slots__ = ("ts", "requests", "errors", "latency_total",
                 "latency_fast", "cumulative")

    def __init__(self, ts: float, requests: int, errors: int,
                 latency_total: int, latency_fast: int,
                 cumulative: dict[float, int]) -> None:
        self.ts = ts
        self.requests = requests
        self.errors = errors
        self.latency_total = latency_total
        self.latency_fast = latency_fast
        #: histogram upper bound -> cumulative count, summed over routes.
        self.cumulative = cumulative


class SloMonitor:
    """Derive windowed availability/latency SLOs from a registry.

    Reading (:meth:`report` / :meth:`export`) is what advances the
    sample ring — the request hot path is never touched.  The clock is
    injectable so tests drive windows deterministically.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        availability_target: float | None = None,
        latency_target: float | None = None,
        latency_threshold_ms: float | None = None,
        windows: tuple[tuple[str, float], ...] = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
        min_sample_interval: float = 1.0,
        max_samples: int = 4096,
    ) -> None:
        self.registry = registry
        self.availability_target = (
            availability_target if availability_target is not None
            else _env_float(ENV_AVAILABILITY, DEFAULT_AVAILABILITY_TARGET)
        )
        self.latency_target = (
            latency_target if latency_target is not None
            else _env_float(ENV_LATENCY_TARGET, DEFAULT_LATENCY_TARGET)
        )
        self.latency_threshold_ms = (
            latency_threshold_ms if latency_threshold_ms is not None
            else _env_float(ENV_LATENCY_MS, DEFAULT_LATENCY_THRESHOLD_MS)
        )
        self.windows = tuple(windows)
        self.clock = clock
        self.min_sample_interval = float(min_sample_interval)
        self._samples: deque[_Sample] = deque(maxlen=max_samples)
        self._lock = threading.Lock()
        # Seed a baseline at construction so the very first scrape of a
        # long-running server reports its traffic since start instead
        # of an empty two-sample-minimum window.
        self._samples.append(self._collect())

    # -- collection --------------------------------------------------------

    def _collect(self) -> _Sample:
        threshold_s = self.latency_threshold_ms * 1e-3
        requests = errors = 0
        latency_total = latency_fast = 0
        cumulative: dict[float, int] = {}
        for name, labels, metric in self.registry.series():
            if name == REQUESTS_METRIC and metric.kind == "counter":
                requests += metric.value
                if dict(labels).get("status") == "5xx":
                    errors += metric.value
            elif name == LATENCY_METRIC and metric.kind == "histogram":
                fast = 0
                for bound, cum in metric.cumulative():
                    cumulative[bound] = cumulative.get(bound, 0) + cum
                    if bound <= threshold_s:
                        # Cumulative counts grow with the bound, so the
                        # last bound at/under the threshold wins.
                        fast = cum
                latency_total += metric.count
                latency_fast += fast
        return _Sample(
            self.clock(), requests, errors,
            latency_total, latency_fast, cumulative,
        )

    def sample(self, *, force: bool = False) -> _Sample:
        """Append a fresh sample unless one was taken within
        ``min_sample_interval``; returns the freshest sample."""
        with self._lock:
            samples = self._samples
            now = self.clock()
            if samples and not force \
                    and now - samples[-1].ts < self.min_sample_interval:
                return samples[-1]
            current = self._collect()
            samples.append(current)
            return current

    # -- derivation --------------------------------------------------------

    def _baseline(self, now: float, seconds: float) -> _Sample | None:
        """The oldest sample still inside the window (or the oldest we
        have, when history is shorter than the window)."""
        with self._lock:
            base = None
            for s in reversed(self._samples):
                if now - s.ts > seconds:
                    break
                base = s
            if base is None and self._samples:
                base = self._samples[0]
            return base

    @staticmethod
    def _p99_ms(current: _Sample, base: _Sample) -> float:
        """Bucket-resolution p99 of the window's latency diff."""
        bounds = sorted(
            b for b in current.cumulative if b != float("inf")
        )
        total = (
            current.cumulative.get(float("inf"), 0)
            - base.cumulative.get(float("inf"), 0)
        )
        if total <= 0:
            return 0.0
        target = 0.99 * total
        for bound in bounds:
            diff = (
                current.cumulative.get(bound, 0)
                - base.cumulative.get(bound, 0)
            )
            if diff >= target:
                return round(bound * 1e3, 3)
        return round(bounds[-1] * 1e3, 3) if bounds else 0.0

    def _window_report(self, label: str, seconds: float,
                       current: _Sample) -> dict[str, Any]:
        base = self._baseline(current.ts, seconds) or current
        span = max(current.ts - base.ts, 0.0)
        requests = max(current.requests - base.requests, 0)
        errors = max(current.errors - base.errors, 0)
        lat_total = max(current.latency_total - base.latency_total, 0)
        lat_fast = max(current.latency_fast - base.latency_fast, 0)
        availability = 1.0 - (errors / requests) if requests else 1.0
        ok_ratio = (lat_fast / lat_total) if lat_total else 1.0
        avail_budget = max(1.0 - self.availability_target, 1e-9)
        lat_budget = max(1.0 - self.latency_target, 1e-9)
        return {
            "window": label,
            "seconds": seconds,
            "span_s": round(span, 3),
            "requests": requests,
            "req_s": round(requests / span, 3) if span else 0.0,
            "errors": errors,
            "availability": round(availability, 6),
            "availability_burn": round(
                (1.0 - availability) / avail_budget, 3
            ),
            "slow": lat_total - lat_fast,
            "latency_ok_ratio": round(ok_ratio, 6),
            "latency_burn": round((1.0 - ok_ratio) / lat_budget, 3),
            "p99_ms": self._p99_ms(current, base),
        }

    def report(self) -> dict[str, Any]:
        """The ``GET /api/v2/slo`` payload: targets, per-window rates,
        lifetime totals.  Taking the report is what samples the
        registry, so burn rates always reflect the live histograms."""
        current = self.sample()
        return {
            "targets": {
                "availability": self.availability_target,
                "latency_target": self.latency_target,
                "latency_threshold_ms": self.latency_threshold_ms,
            },
            "windows": {
                label: self._window_report(label, seconds, current)
                for label, seconds in self.windows
            },
            "totals": {
                "requests": current.requests,
                "errors": current.errors,
                "samples": len(self._samples),
            },
        }

    def export(self, registry: MetricsRegistry | None = None) -> dict[str, Any]:
        """Mirror the report into ``carcs_slo_*`` gauges (on ``registry``
        or the monitored one) and return it — called at scrape time so
        one exposition carries objectives beside the raw series."""
        target = registry if registry is not None else self.registry
        report = self.report()
        target.gauge("carcs_slo_target", slo="availability").set(
            report["targets"]["availability"]
        )
        target.gauge("carcs_slo_target", slo="latency").set(
            report["targets"]["latency_target"]
        )
        for label, window in report["windows"].items():
            target.gauge(
                "carcs_slo_ratio", slo="availability", window=label,
            ).set(window["availability"])
            target.gauge(
                "carcs_slo_burn_rate", slo="availability", window=label,
            ).set(window["availability_burn"])
            target.gauge(
                "carcs_slo_ratio", slo="latency", window=label,
            ).set(window["latency_ok_ratio"])
            target.gauge(
                "carcs_slo_burn_rate", slo="latency", window=label,
            ).set(window["latency_burn"])
        return report


__all__ = [
    "DEFAULT_AVAILABILITY_TARGET",
    "DEFAULT_LATENCY_TARGET",
    "DEFAULT_LATENCY_THRESHOLD_MS",
    "DEFAULT_WINDOWS",
    "SloMonitor",
]
