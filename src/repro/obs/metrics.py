"""Thread-safe in-process metrics: counters, gauges, histograms.

Deliberately Prometheus-shaped (names + label sets, cumulative-bucket
histograms) but dependency-free and JSON-exportable, so the registry can
be served straight from ``GET /api/v1/metrics`` and scraped, diffed or
asserted on in tests.  All mutation goes through per-metric locks; the
registry itself locks only metric creation, so hot-path increments never
contend on a global lock.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable

# Upper bounds (seconds) tuned for an in-process API: sub-millisecond
# cache hits up to multi-second cold similarity passes.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

Labels = tuple[tuple[str, str], ...]


def _freeze_labels(labels: dict[str, Any]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, double quote, newline.

    Without this, a label value containing ``"`` or a newline (route
    labels are derived from request data) produces exposition output no
    scraper can parse.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_suffix(labels: Labels, extra: Labels = ()) -> str:
    items = (*labels, *extra)
    if not items:
        return ""
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in items)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def as_dict(self) -> dict[str, Any]:
        return {"value": self._value}


class Gauge:
    """A value that can go up and down (queue depth, cache size, ...)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> dict[str, Any]:
        return {"value": self._value}


class Histogram:
    """Fixed-bucket histogram (latencies, sizes).

    ``bounds`` are inclusive upper edges; one implicit +inf bucket catches
    the overflow.  ``observe`` is O(log buckets); export reports both raw
    per-bucket counts and Prometheus-style cumulative counts.
    """

    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # last slot = +inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def counts(self) -> list[int]:
        """Raw per-bucket counts (last element is the +inf bucket)."""
        return list(self._counts)

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, count_at_or_below)`` pairs, ending at +inf."""
        out = []
        running = 0
        with self._lock:
            for bound, n in zip(self.bounds, self._counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        containing the q-th observation); +inf observations report the
        largest finite bound."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            running = 0
            for bound, n in zip(self.bounds, self._counts):
                running += n
                if running >= target:
                    return bound
        return self.bounds[-1]

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self._count,
            "sum": self._sum,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self.bounds, self._counts)
            ] + [{"le": "+inf", "count": self._counts[-1]}],
        }


class MetricsRegistry:
    """Named, labelled metrics with get-or-create semantics.

    ``registry.counter("http_requests_total", route="GET /api/v1/stats",
    status="2xx").inc()`` — the (name, labels) pair identifies the series;
    re-registering the same series with a different metric kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, Labels], Any] = {}

    def _get_or_create(self, name: str, labels: dict[str, Any],
                       factory, kind: str):
        key = (name, _freeze_labels(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(name, labels, Counter, "counter")

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(name, labels, Gauge, "gauge")

    def histogram(self, name: str, *, buckets: Iterable[float] | None = None,
                  **labels: Any) -> Histogram:
        factory = (lambda: Histogram(buckets)) if buckets is not None else Histogram
        return self._get_or_create(name, labels, factory, "histogram")

    def series(self) -> list[tuple[str, Labels, Any]]:
        with self._lock:
            return [(name, labels, metric)
                    for (name, labels), metric in sorted(self._metrics.items())]

    def __len__(self) -> int:
        return len(self._metrics)

    def export(self) -> dict[str, dict[str, Any]]:
        """JSON-ready snapshot grouped by metric kind; series keys are
        ``name{label=value,...}`` strings."""
        out: dict[str, dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name, labels, metric in self.series():
            key = name + _label_suffix(labels)
            out[metric.kind + "s"][key] = metric.as_dict()
        return out

    def reset(self) -> None:
        """Drop every series (tests and bench harnesses)."""
        with self._lock:
            self._metrics.clear()


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition (format 0.0.4) of the whole registry.

    Histograms expand to cumulative ``_bucket`` series (``le`` upper
    bounds, ``+Inf`` last) plus ``_sum``/``_count``; label values are
    escaped so routes containing quotes or newlines stay parseable.
    Served by ``GET /api/v1/metrics?format=prometheus``.
    """
    lines: list[str] = []
    typed: set[str] = set()
    for name, labels, metric in registry.series():
        if name not in typed:
            lines.append(f"# TYPE {name} {metric.kind}")
            typed.add(name)
        if metric.kind == "histogram":
            for bound, cum in metric.cumulative():
                le = (("le", _format_number(bound)),)
                lines.append(
                    f"{name}_bucket{_label_suffix(labels, le)} {cum}"
                )
            lines.append(
                f"{name}_sum{_label_suffix(labels)} "
                f"{_format_number(metric.sum)}"
            )
            lines.append(
                f"{name}_count{_label_suffix(labels)} {metric.count}"
            )
        else:
            lines.append(
                f"{name}{_label_suffix(labels)} "
                f"{_format_number(metric.value)}"
            )
    return "\n".join(lines) + "\n"
