"""Hierarchical request tracing: spans, context propagation, storage.

PR 2 gave the system counters and latency histograms; they answer *how
slow* a route is, never *where the time went*.  This module adds the
attribution layer: a :class:`Tracer` produces hierarchical
:class:`Span`\\ s (trace/span/parent ids, wall + CPU time, status,
structured attributes) carried through a ``contextvars.ContextVar`` so
nested calls attach to the active request automatically — the web
middleware opens the root, and the instrumentation points in
``core/cache.py``, ``core/repository.py``, ``core/search.py`` and
``db/engine.py`` hang their spans underneath without any plumbing.

Design rules, in overhead order:

* **The hot path is a flight recorder.**  While a trace is live, spans
  are flat list records (name, parent index, clocks, attrs) appended to
  a per-trace buffer; the :class:`Span` tree the API serves is built
  lazily on first read.  Call sites interact through small per-thread
  pooled handles, so opening+closing a span costs two clock reads, one
  list allocation and a few appends — no tree bookkeeping, no
  per-span context-variable writes, no id minting (span ids mint
  lazily when something asks for them).
* **The context is module-global.**  ``span(name, ...)`` (the function
  every instrumented layer calls) consults one ``ContextVar``; with no
  active trace it returns a shared no-op span, so un-traced work — bulk
  seeding, unit tests, CLI analytics — pays one dictionary-free lookup
  per instrumentation point and nothing else.
* **Spans are single-threaded.**  A trace belongs to the thread (more
  precisely: the context) that opened its root; the threaded HTTP
  server gives every request its own thread and therefore its own
  context, which is what keeps concurrent requests' spans disjoint.
* **Head sampling, with safety overrides.**  ``CARCS_TRACE`` selects
  ``off`` / ``sampled`` / ``all``.  In ``sampled`` mode every Nth trace
  (``CARCS_TRACE_SAMPLE``, default 1 = every trace) is retained — but a
  trace containing an error span or a span slower than
  ``CARCS_TRACE_SLOW_MS`` (default 100) is *always* retained, so the
  traces you need most never fall to the sampler.
* **Completed traces are bounded.**  The thread-safe
  :class:`TraceStore` keeps the newest ``capacity`` retained traces;
  ``GET /api/v1/traces`` pages over summaries and
  ``GET /api/v1/traces/<id>`` returns the full span tree.
* **Context propagates across processes.**  A W3C-``traceparent``-style
  header (``00-<trace id>-<span id>-01``) carries the active span's
  identity over every proxied hop: the front tier injects it
  (:func:`current_traceparent` / :func:`format_traceparent`), the web
  middleware extracts it (:func:`parse_traceparent`) and opens its root
  with the *propagated* trace id plus a ``remote_parent`` attribute
  naming the caller's span.  Each process still records only its own
  spans; :func:`stitch_trace` reassembles the per-process segments into
  one tree by attaching every remote root under the span whose id it
  names.  The same mechanism links asynchronous work: the job queue
  persists the enqueuing request's traceparent in the ``_jobs`` row and
  the worker opens its ``job.run`` root from it — so one trace id covers
  router → primary → worker.
* **Metrics cross-reference.**  Every finished trace feeds per-span-name
  duration histograms (``carcs_span_seconds{span=...}``) into an
  attached :class:`~repro.obs.metrics.MetricsRegistry`, and the tracer
  remembers one exemplar trace id per span name — the metrics export
  links a histogram back to a concrete retrievable trace.  Feeding is
  buffered: requests append ``(span name, wall seconds)`` pairs and the
  buffer drains into the registry on :meth:`Tracer.flush_metrics`
  (called by every ``stats()`` read, i.e. every metrics scrape) — the
  registry's label freezing and bucket search run per scrape, not per
  span.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import OrderedDict
from contextvars import ContextVar
from typing import Any, Iterator

ENV_MODE = "CARCS_TRACE"
ENV_SAMPLE = "CARCS_TRACE_SAMPLE"
ENV_SLOW_MS = "CARCS_TRACE_SLOW_MS"

MODE_OFF = "off"
MODE_SAMPLED = "sampled"
MODE_ALL = "all"

DEFAULT_SLOW_MS = 100.0
DEFAULT_CAPACITY = 512


def env_mode() -> str:
    """Tracing mode from ``CARCS_TRACE`` (unset/unknown → ``sampled``)."""
    raw = os.environ.get(ENV_MODE, MODE_SAMPLED).strip().lower()
    return raw if raw in (MODE_OFF, MODE_SAMPLED, MODE_ALL) else MODE_SAMPLED


def env_sample_every() -> int:
    """Head-sampling stride from ``CARCS_TRACE_SAMPLE`` (default 1)."""
    try:
        return max(1, int(os.environ.get(ENV_SAMPLE, "1")))
    except ValueError:
        return 1


def env_slow_ms() -> float:
    try:
        return float(os.environ.get(ENV_SLOW_MS, DEFAULT_SLOW_MS))
    except ValueError:
        return DEFAULT_SLOW_MS


# Ids come from a PRNG seeded once from the OS, not uuid4: a span id is
# minted on the request hot path and uuid4's per-call urandom read costs
# more than the rest of the span put together.  getrandbits is C-level
# and atomic under the GIL.
_ids = random.Random()


def new_trace_id() -> str:
    """A trace id in the same shape as request ids (96 random bits)."""
    return f"{_ids.getrandbits(96):024x}"


def new_span_id() -> str:
    return f"{_ids.getrandbits(64):016x}"


# -- cross-process context propagation ------------------------------------

#: Header carrying the caller's trace context over proxied hops
#: (W3C-traceparent-shaped; carcs trace ids are 24 hex chars, not 32).
TRACEPARENT_HEADER = "traceparent"

#: Root-span attribute naming the *remote* parent span id — the span in
#: the calling process this segment hangs under when stitched.
REMOTE_PARENT_ATTR = "remote_parent"

_HEX = frozenset("0123456789abcdef")


def format_traceparent(trace_id: str, span_id: str) -> str:
    """``00-<trace id>-<span id>-01``: the outbound header value."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(value: str | None) -> tuple[str, str] | None:
    """``(trace_id, parent_span_id)`` from a traceparent header, or
    ``None`` when the header is absent/malformed (a bad value from an
    arbitrary client must never break dispatch — it just starts a fresh
    trace)."""
    if not value:
        return None
    parts = value.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or not (2 <= len(flags) <= 2):
        return None
    if not (16 <= len(trace_id) <= 32 and 8 <= len(span_id) <= 16):
        return None
    for field in (version, trace_id, span_id, flags):
        if not set(field) <= _HEX:
            return None
    return trace_id, span_id


def current_traceparent() -> str | None:
    """The header value for the innermost open span of this context
    (``None`` outside any trace).  This mints the span id — the callee
    names it as ``remote_parent``, so it has to be pinned now."""
    handle = current_span()
    if handle is None:
        return None
    return format_traceparent(handle.trace_id, handle.span_id)


# -- request deadlines ------------------------------------------------------
#
# The admission middleware parses a client deadline and plants it here as
# an *absolute* monotonic instant; every instrumented layer below (db
# entry points, block page-ins, planner scan loops, job drains) calls
# check_deadline() at its natural abort points.  Work a client has
# already given up on is the cheapest load to shed — cancelling it frees
# capacity for requests that can still succeed, which is the whole
# graceful-degradation story docs/capacity.md tells.


class DeadlineExceeded(RuntimeError):
    """The context's request deadline has passed; abort and shed."""


#: Absolute ``perf_counter`` instant after which the current context's
#: work is abandoned (``None`` = no deadline).
_DEADLINE: ContextVar[float | None] = ContextVar(
    "carcs_deadline", default=None
)


def set_deadline(seconds: float):
    """Arm a deadline ``seconds`` from now; returns the reset token."""
    return _DEADLINE.set(_perf_counter() + seconds)


def clear_deadline(token: Any) -> None:
    _DEADLINE.reset(token)


def deadline_remaining() -> float | None:
    """Seconds until the ambient deadline (negative = past it), or
    ``None`` when no deadline is armed."""
    deadline = _DEADLINE.get()
    if deadline is None:
        return None
    return deadline - _perf_counter()


def check_deadline(what: str = "request") -> None:
    """Raise :class:`DeadlineExceeded` if the ambient deadline passed.

    One ContextVar read on the no-deadline path — cheap enough for
    per-operation call sites (db entry points, block page-ins, planner
    scan strides)."""
    deadline = _DEADLINE.get()
    if deadline is not None and _perf_counter() > deadline:
        raise DeadlineExceeded(f"deadline exceeded before {what}")


class no_deadline:
    """Scope that masks any ambient deadline — for work that must run to
    completion once started (replication apply, WAL checkpointing),
    where a leaked client deadline aborting midway would cost far more
    than it saves."""

    __slots__ = ("_token",)

    def __enter__(self) -> "no_deadline":
        self._token = _DEADLINE.set(None)
        return self

    def __exit__(self, *exc: Any) -> bool:
        _DEADLINE.reset(self._token)
        return False


#: Maps ``perf_counter`` readings onto the wall clock so spans need only
#: one monotonic read at open time instead of two clock syscalls.
_EPOCH = time.time() - time.perf_counter()

# Bound as globals: the clock pair runs twice per span, and LOAD_GLOBAL
# beats the attribute lookup on the time module.
_perf_counter = time.perf_counter
_thread_time = time.thread_time


# -- the flight-recorder hot path -----------------------------------------
#
# A live trace is a list of flat records, one per span.  Record slots:

_R_NAME = 0       # span name (str; the root is renamed after dispatch)
_R_PARENT = 1     # index of the parent record, -1 for the root
_R_ATTRS = 2      # structured attributes (dict)
_R_T0 = 3         # perf_counter at open
_R_CPU0 = 4       # thread_time at open
_R_WALL = 5       # wall seconds (None while open)
_R_CPU = 6        # CPU seconds (None while open)
_R_STATUS = 7     # "ok" | "error"
_R_ERROR = 8      # error detail (str | None)
_R_SPAN_ID = 9    # lazily minted span id (str | None)


class _Trace:
    """Mutable per-thread recorder for the one live trace of a context.

    Pooled in a ``threading.local`` and reset per root span: the
    ``records`` list is the only allocation that escapes (it becomes the
    retained trace), while the handle pool is reused request after
    request.
    """

    __slots__ = ("trace_id", "records", "stack", "handles")

    def __init__(self) -> None:
        self.trace_id = ""
        self.records: list[list[Any]] = []
        self.stack: list[int] = []
        self.handles: list["_Handle"] = []

    def open(self, name: str, attributes: dict[str, Any]) -> "_Handle":
        stack = self.stack
        depth = len(stack)
        records = self.records
        rec = [
            name, stack[depth - 1] if depth else -1, attributes,
            _perf_counter(), _thread_time(), None, None, "ok", None, None,
        ]
        stack.append(len(records))
        records.append(rec)
        handles = self.handles
        if depth < len(handles):
            handle = handles[depth]
        else:
            handle = _Handle(self)
            handles.append(handle)
        handle.rec = rec
        return handle


class _Handle:
    """The live-span object call sites see (``with span(...) as s:``).

    One handle per nesting depth per thread, reused across spans and
    requests — so a handle is only valid inside its ``with`` block;
    holding one past the block's end may alias a later span's record.
    """

    __slots__ = ("_trace", "rec")

    def __init__(self, trace: _Trace) -> None:
        self._trace = trace
        self.rec: list[Any] = []

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "_Handle":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        rec = self.rec
        self._trace.stack.pop()
        rec[_R_WALL] = _perf_counter() - rec[_R_T0]
        rec[_R_CPU] = _thread_time() - rec[_R_CPU0]
        if exc is not None:
            rec[_R_STATUS] = "error"
            rec[_R_ERROR] = f"{type(exc).__name__}: {exc}"
        return False

    def set(self, **attributes: Any) -> None:
        """Attach structured attributes (merged, last write wins)."""
        self.rec[_R_ATTRS].update(attributes)

    def mark_error(self, detail: str) -> None:
        rec = self.rec
        rec[_R_STATUS] = "error"
        rec[_R_ERROR] = detail

    @property
    def name(self) -> str:
        return self.rec[_R_NAME]

    @name.setter
    def name(self, value: str) -> None:
        # The web middleware renames the root after dispatch, once the
        # router knows which route matched.
        self.rec[_R_NAME] = value

    @property
    def trace_id(self) -> str:
        return self._trace.trace_id

    @property
    def span_id(self) -> str:
        rec = self.rec
        sid = rec[_R_SPAN_ID]
        if sid is None:
            sid = rec[_R_SPAN_ID] = new_span_id()
        return sid

    @property
    def parent_id(self) -> str | None:
        parent = self.rec[_R_PARENT]
        if parent < 0:
            return None
        prec = self._trace.records[parent]
        sid = prec[_R_SPAN_ID]
        if sid is None:
            sid = prec[_R_SPAN_ID] = new_span_id()
        return sid


class Span:
    """One span of a *completed* trace: a node in the served span tree.

    Wall time comes from ``perf_counter``, CPU time from ``thread_time``
    (per-thread, so a span blocked on a lock shows near-zero CPU — the
    wall−CPU gap *is* the contention).  ``self_s`` subtracts finished
    children, attributing time to the layer that actually spent it.

    Live tracing never builds these — call sites get flight-recorder
    handles, and :class:`TraceRecord` reconstructs the Span tree from
    the flat records on first read.
    """

    __slots__ = (
        "name", "trace_id", "_span_id", "parent_id", "attributes",
        "_t0", "_cpu0", "wall_s", "cpu_s", "status", "error",
        "children",
    )

    def __init__(self, name: str, trace_id: str,
                 parent_id: str | None = None,
                 attributes: dict[str, Any] | None = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self._span_id: str | None = None
        self.parent_id = parent_id
        self.attributes = attributes if attributes is not None else {}
        self._t0 = _perf_counter()
        self._cpu0 = _thread_time()
        self.wall_s: float | None = None
        self.cpu_s: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self.children: list["Span"] = []

    def __bool__(self) -> bool:
        return True

    @property
    def span_id(self) -> str:
        sid = self._span_id
        if sid is None:
            sid = self._span_id = new_span_id()
        return sid

    @property
    def start_ts(self) -> float:
        """Wall-clock start time, derived from the monotonic reading."""
        return _EPOCH + self._t0

    def set(self, **attributes: Any) -> None:
        """Attach structured attributes (merged, last write wins)."""
        self.attributes.update(attributes)

    def finish(self, error: BaseException | None = None) -> None:
        if self.wall_s is None:
            self.wall_s = _perf_counter() - self._t0
            self.cpu_s = _thread_time() - self._cpu0
        if error is not None:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"

    def mark_error(self, detail: str) -> None:
        self.status = "error"
        self.error = detail

    @property
    def self_s(self) -> float:
        """Wall time spent in this span minus its finished children."""
        total = self.wall_s or 0.0
        spent = sum(c.wall_s or 0.0 for c in self.children)
        return max(0.0, total - spent)

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ts": self.start_ts,
            "wall_ms": round((self.wall_s or 0.0) * 1e3, 3),
            "cpu_ms": round((self.cpu_s or 0.0) * 1e3, 3),
            "self_ms": round(self.self_s * 1e3, 3),
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [c.as_dict() for c in self.children],
        }
        if self.error is not None:
            out["error"] = self.error
        return out


class _NullSpan:
    """Shared no-op stand-in when no trace is active (falsy on purpose:
    call sites guard expensive attribute computation with ``if span:``)."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def set(self, **attributes: Any) -> None:
        pass

    def mark_error(self, detail: str) -> None:
        pass

    @property
    def trace_id(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()

#: The live trace of the current context.  Module-global so every
#: layer's instrumentation reaches the same trace regardless of which
#: Tracer instance opened the root (threads get isolated contexts).
_CURRENT: ContextVar[_Trace | None] = ContextVar("carcs_trace", default=None)

#: Per-thread pooled recorder (see _Trace).
_LOCAL = threading.local()


def current_span() -> _Handle | None:
    """The innermost open span of the current context, if any."""
    trace = _CURRENT.get()
    if trace is None or not trace.stack:
        return None
    return trace.handles[len(trace.stack) - 1]


def current_trace_id() -> str | None:
    trace = _CURRENT.get()
    return trace.trace_id if trace is not None else None


def span(name: str, /, **attributes: Any):
    """Open a child span under the active trace.

    With no active trace this returns the shared :data:`NULL_SPAN` — the
    whole call costs one context-variable lookup, which is what lets the
    db/cache/search layers stay instrumented unconditionally.
    """
    trace = _CURRENT.get()
    if trace is None:
        return NULL_SPAN
    return trace.open(name, attributes)


class _TraceScope:
    """Context manager owning a root span: resets the thread's pooled
    recorder, activates it on entry, and hands the finished records to
    the tracer's retention pipeline on exit."""

    __slots__ = ("_tracer", "_trace", "_token")

    def __init__(self, tracer: "Tracer", trace_id: str, name: str,
                 attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        if _CURRENT.get() is None:
            try:
                trace = _LOCAL.trace
            except AttributeError:
                trace = _LOCAL.trace = _Trace()
        else:
            # The pooled recorder is busy with an enclosing trace on
            # this thread (an in-process proxied hop opening a fresh
            # segment): record on a private one and leave the outer
            # trace's records alone.  The ContextVar token restores the
            # outer trace on exit.
            trace = _Trace()
        trace.trace_id = trace_id
        trace.records = []
        trace.stack = []
        self._trace = trace
        trace.open(name, attributes)

    def __enter__(self) -> _Handle:
        trace = self._trace
        self._token = _CURRENT.set(trace)
        return trace.handles[0]

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _CURRENT.reset(self._token)
        trace = self._trace
        trace.stack.pop()
        rec = trace.records[0]
        rec[_R_WALL] = _perf_counter() - rec[_R_T0]
        rec[_R_CPU] = _thread_time() - rec[_R_CPU0]
        if exc is not None:
            rec[_R_STATUS] = "error"
            rec[_R_ERROR] = f"{type(exc).__name__}: {exc}"
        self._tracer._finish(trace)
        return False


class TraceRecord:
    """One retained trace: the flat span records plus derived views.

    The :class:`Span` tree is reconstructed lazily on first access —
    request threads only pay for recording, the (rare) trace reads pay
    for tree building.
    """

    __slots__ = ("trace_id", "records", "slow", "retained_by", "_root")

    def __init__(self, trace_id: str, records: list[list[Any]], *,
                 slow: bool, retained_by: str) -> None:
        self.trace_id = trace_id
        self.records = records
        self.slow = slow
        self.retained_by = retained_by
        self._root: Span | None = None

    @property
    def span_count(self) -> int:
        return len(self.records)

    @property
    def root(self) -> Span:
        root = self._root
        if root is None:
            root = self._root = self._build()
        return root

    def _build(self) -> Span:
        spans: list[Span] = []
        for rec in self.records:
            s = object.__new__(Span)
            s.name = rec[_R_NAME]
            s.trace_id = self.trace_id
            s._span_id = rec[_R_SPAN_ID]
            s.parent_id = None
            s.attributes = rec[_R_ATTRS]
            s._t0 = rec[_R_T0]
            s._cpu0 = rec[_R_CPU0]
            s.wall_s = rec[_R_WALL]
            s.cpu_s = rec[_R_CPU]
            s.status = rec[_R_STATUS]
            s.error = rec[_R_ERROR]
            s.children = []
            spans.append(s)
        for i, rec in enumerate(self.records):
            parent = rec[_R_PARENT]
            if parent >= 0:
                spans[parent].children.append(spans[i])
                spans[i].parent_id = spans[parent].span_id
        return spans[0]

    def summary(self) -> dict[str, Any]:
        rec = self.records[0]
        return {
            "trace_id": self.trace_id,
            "name": rec[_R_NAME],
            "status": rec[_R_STATUS],
            "duration_ms": round((rec[_R_WALL] or 0.0) * 1e3, 3),
            "cpu_ms": round((rec[_R_CPU] or 0.0) * 1e3, 3),
            "spans": len(self.records),
            "started_ts": _EPOCH + rec[_R_T0],
            "slow": self.slow,
            "retained_by": self.retained_by,
        }

    def as_dict(self) -> dict[str, Any]:
        out = self.summary()
        out["root"] = self.root.as_dict()
        return out


class TraceStore:
    """Bounded, thread-safe store of completed traces (newest wins).

    Writes stay raw: the request thread inserts the bare
    ``(trace_id, records, slow, retained_by)`` tuple — one ordered-dict
    store plus (at capacity) one eviction pop, nothing else.  Read paths
    wrap entries into :class:`TraceRecord` on demand and memoize the
    wrapper in place, so trace reads keep their lazily-built span trees
    while the request hot path never constructs one.  Memory stays
    strictly bounded by ``capacity`` either way.

    One trace id may hold several *segments*: with cross-process
    propagation an HTTP request and the job it enqueued share a trace
    id, and both can finish inside the same process (``carcs serve
    --workers``).  Each entry is therefore a list of segments in
    completion order; :meth:`get` answers the first (the originating
    request — the view single-process callers always had) and
    :meth:`segments` exposes them all for stitching.
    """

    #: Segments retained per trace id — bounds a pathological client
    #: reusing one traceparent forever.
    MAX_SEGMENTS = 32

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: trace id -> list of segments, each a raw tuple (unread) |
        #: TraceRecord (read at least once)
        self._traces: "OrderedDict[str, list[Any]]" = OrderedDict()
        self._evicted = 0
        #: Set by the owning Tracer: read paths call it first so traces
        #: still sitting in the tracer's completion queue become visible
        #: before the store answers.  Lock order is always tracer → store
        #: (the hook runs before this store's lock is taken).
        self._drain_hook: Any = None

    def _append_locked(self, trace_id: str, entry: Any) -> None:
        traces = self._traces
        existing = traces.pop(trace_id, None)
        if existing is None:
            traces[trace_id] = [entry]
        else:
            existing.append(entry)
            if len(existing) > self.MAX_SEGMENTS:
                del existing[0]
            traces[trace_id] = existing
        while len(traces) > self.capacity:
            traces.popitem(last=False)
            self._evicted += 1

    def add_deferred(self, trace_id: str, records: list[list[Any]],
                     slow: bool, retained_by: str) -> None:
        """Insert a finished trace segment as a raw tuple (the hot path)."""
        with self._lock:
            self._append_locked(
                trace_id, (trace_id, records, slow, retained_by)
            )

    def add(self, record: TraceRecord) -> None:
        with self._lock:
            self._append_locked(record.trace_id, record)

    def _wrap_locked(self, entries: list[Any], index: int) -> TraceRecord:
        value = entries[index]
        if type(value) is tuple:
            value = TraceRecord(
                value[0], value[1], slow=value[2], retained_by=value[3],
            )
            entries[index] = value
        return value

    def get(self, trace_id: str) -> TraceRecord | None:
        """The trace's first segment (its originating request)."""
        hook = self._drain_hook
        if hook is not None:
            hook()
        with self._lock:
            entries = self._traces.get(trace_id)
            if entries is None:
                return None
            return self._wrap_locked(entries, 0)

    def segments(self, trace_id: str) -> list[TraceRecord]:
        """Every stored segment of a trace, in completion order."""
        hook = self._drain_hook
        if hook is not None:
            hook()
        with self._lock:
            entries = self._traces.get(trace_id)
            if entries is None:
                return []
            return [
                self._wrap_locked(entries, i) for i in range(len(entries))
            ]

    def summaries(self) -> list[dict[str, Any]]:
        """Newest-first summary dicts (the ``/api/v1/traces`` payload)."""
        return [r.summary() for r in self.records()]

    def records(self) -> list[TraceRecord]:
        """Newest-first stored segments (exemplar derivation, the CLI)."""
        hook = self._drain_hook
        if hook is not None:
            hook()
        with self._lock:
            wrapped = [
                self._wrap_locked(entries, i)
                for entries in self._traces.values()
                for i in range(len(entries))
            ]
        return list(reversed(wrapped))

    @property
    def evicted(self) -> int:
        hook = self._drain_hook
        if hook is not None:
            hook()
        return self._evicted

    def __len__(self) -> int:
        hook = self._drain_hook
        if hook is not None:
            hook()
        return len(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._evicted = 0


class Tracer:
    """Opens root spans, applies retention rules, feeds store + metrics.

    Child spans are created by the module-level :func:`span` function and
    attach through the shared context; the tracer only decides whether a
    *root* opens (mode) and what happens when it closes (retention,
    histograms, exemplars).
    """

    def __init__(self, store: TraceStore | None = None, *,
                 mode: str | None = None,
                 sample_every: int | None = None,
                 slow_ms: float | None = None) -> None:
        self.store = store if store is not None else TraceStore()
        #: Optional MetricsRegistry receiving per-span-name histograms;
        #: the web layer attaches its registry (same pattern as
        #: ``SearchEngine.metrics``).
        self.registry = None
        self._lock = threading.Lock()
        self._started = 0
        self._retained = 0
        self._dropped = 0
        # Completion queue: finished traces land here as raw
        # (trace_id, records, mode-at-completion) tuples and the whole
        # retention pipeline — slow/error scan, sampling decision,
        # counters, store insert, histogram batch — runs when something
        # *reads* (any stats/metrics scrape or store lookup drains the
        # queue first, via the store's drain hook), or inline once the
        # queue hits its bound.  A request thread therefore pays one
        # list append for trace completion.
        self._queue: list[tuple[str, list[list[Any]], str]] = []
        # Histogram feeding is deferred: _finish appends (name, wall)
        # pairs to this buffer under the lock it already holds, and
        # flush_metrics() drains it when the metrics are actually read
        # (stats(), the /metrics route) or when the buffer fills.  The
        # registry's get-or-create re-freezes labels under its own lock
        # per call — paying that per scrape instead of per span is most
        # of the tracing overhead budget.
        self._pending: list[tuple[str, float | None]] = []
        self._pending_kept = 0
        self._pending_lost = 0
        self._metric_cache: dict[Any, Any] = {}
        self._cached_registry: Any = None
        self.store._drain_hook = self._drain
        self.configure(mode=mode, sample_every=sample_every, slow_ms=slow_ms)

    def configure(self, *, mode: str | None = None,
                  sample_every: int | None = None,
                  slow_ms: float | None = None) -> "Tracer":
        """Override knobs; ``None`` re-reads the environment default."""
        self.mode = mode if mode in (MODE_OFF, MODE_SAMPLED, MODE_ALL) \
            else env_mode()
        self.sample_every = (
            max(1, sample_every) if sample_every is not None
            else env_sample_every()
        )
        self.slow_ms = slow_ms if slow_ms is not None else env_slow_ms()
        return self

    @property
    def enabled(self) -> bool:
        return self.mode != MODE_OFF

    def stats(self) -> dict[str, int]:
        self.flush_metrics()
        return {
            "started": self._started,
            "retained": self._retained,
            "dropped": self._dropped,
            "stored": len(self.store),
            "evicted": self.store.evicted,
        }

    def exemplars(self) -> dict[str, str]:
        """span name → trace id of the newest *stored* trace that
        contains it (the metrics↔traces cross-reference).

        Derived from the store on read, so every exemplar is actually
        retrievable via ``/api/v1/traces/<id>`` — an id is never left
        dangling after its trace is evicted — and the request hot path
        pays nothing for it.
        """
        out: dict[str, str] = {}
        for record in self.store.records():  # newest first
            tid = record.trace_id
            for rec in record.records:
                name = rec[_R_NAME]
                if name not in out:
                    out[name] = tid
        return out

    def reset(self) -> None:
        """Drop stored traces, counters and exemplars (tests, benches)."""
        with self._lock:
            self._queue.clear()
            self._started = self._retained = self._dropped = 0
            self._pending.clear()
            self._pending_kept = self._pending_lost = 0
        self.store.clear()

    def _drain(self) -> None:
        """Run the retention pipeline over every queued trace."""
        with self._lock:
            self._drain_locked()

    def _drain_locked(self) -> None:
        queue = self._queue
        if not queue:
            return
        self._queue = []
        slow_s = self.slow_ms * 1e-3
        feed = self.registry is not None
        pending = self._pending
        store = self.store
        sample_every = self.sample_every
        for trace_id, records, mode in queue:
            slow = errored = False
            for rec in records:
                wall = rec[_R_WALL]
                if wall is not None and wall >= slow_s:
                    slow = True
                if rec[_R_STATUS] == "error":
                    errored = True
                if feed:
                    pending.append((rec[_R_NAME], wall))
            self._started += 1
            # Retention uses the mode that was live when the trace
            # completed, so reconfiguring between completion and drain
            # (the benches flip modes constantly) cannot misclassify.
            if mode == MODE_ALL:
                retained_by = "all"
            elif errored:
                retained_by = "error"
            elif slow:
                retained_by = "slow"
            elif (self._started - 1) % sample_every == 0:
                retained_by = "sampled"
            else:
                retained_by = ""
            if retained_by:
                self._retained += 1
                store.add_deferred(trace_id, records, slow, retained_by)
            else:
                self._dropped += 1
            if feed:
                if retained_by:
                    self._pending_kept += 1
                else:
                    self._pending_lost += 1

    def flush_metrics(self) -> None:
        """Drain buffered span timings into the attached registry.

        Called by every metrics/stats read, so scrapes always see the
        up-to-date histograms; traced requests only pay list appends.
        """
        registry = self.registry
        with self._lock:
            self._drain_locked()
            if registry is None:
                return
            if not self._pending and not self._pending_kept \
                    and not self._pending_lost:
                return
            pending, self._pending = self._pending, []
            kept, self._pending_kept = self._pending_kept, 0
            lost, self._pending_lost = self._pending_lost, 0
            if registry is not self._cached_registry:
                self._metric_cache = {}
                self._cached_registry = registry
            cache = self._metric_cache
        for name, wall in pending:
            hist = cache.get(name)
            if hist is None:
                hist = registry.histogram("carcs_span_seconds", span=name)
                cache[name] = hist
            hist.observe(wall if wall is not None else 0.0)
        for label, count in (("true", kept), ("false", lost)):
            if count:
                counter = cache.get(("retained", label))
                if counter is None:
                    counter = registry.counter(
                        "carcs_traces_total", retained=label
                    )
                    cache[("retained", label)] = counter
                counter.inc(count)

    # -- root spans -------------------------------------------------------

    def trace(self, name: str, /, *, trace_id: str | None = None,
              fresh: bool = False, **attributes: Any):
        """Open the root span of a new trace.

        No-op when the tracer is off; when a trace is already active the
        "root" is just a child span of it — unless ``fresh`` is set, in
        which case a new trace *segment* opens even under an ambient
        trace.  Propagation boundaries (the tracing middleware, the
        front tier, job runs) pass ``fresh=True``: their span is the
        root of this process's segment even when the calling hop runs
        in the same process (LocalBackend, inline job drains).
        """
        if self.mode == MODE_OFF:
            return NULL_SPAN
        trace = _CURRENT.get()
        if trace is not None and not fresh:
            return trace.open(name, attributes)
        return _TraceScope(self, trace_id or new_trace_id(), name, attributes)

    # -- completion -------------------------------------------------------

    def _finish(self, trace: _Trace) -> None:
        # The request thread only enqueues: slow/error scanning,
        # sampling, counters, the store insert and histogram feeding all
        # happen in _drain_locked, on the next read or once the queue
        # fills.  The bound keeps memory flat (and the pipeline cost
        # amortized) even if nothing ever scrapes.
        with self._lock:
            queue = self._queue
            queue.append((trace.trace_id, trace.records, self.mode))
            if len(queue) < 1024:
                return
            self._drain_locked()
            overflow = len(self._pending) >= 4096
        if overflow:
            self.flush_metrics()


#: Process-wide default tracer (the CLI and any bare ``CarCsApi`` use
#: it); tests and benchmarks construct private tracers and hand them to
#: the web layer instead.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


# -- rendering ------------------------------------------------------------


def _format_attributes(attributes: dict[str, Any]) -> str:
    if not attributes:
        return ""
    inner = " ".join(f"{k}={v}" for k, v in sorted(attributes.items()))
    return f"  [{inner}]"


def render_text(record: TraceRecord) -> str:
    """Indented span tree with per-span wall/self/CPU time — the
    ``carcs trace`` output."""
    lines = [
        f"trace {record.trace_id}  status={record.root.status}  "
        f"spans={record.span_count}  "
        f"duration={(record.root.wall_s or 0.0) * 1e3:.3f}ms"
        + ("  SLOW" if record.slow else "")
    ]

    def emit(span_: Span, depth: int) -> None:
        wall = (span_.wall_s or 0.0) * 1e3
        cpu = (span_.cpu_s or 0.0) * 1e3
        self_ms = span_.self_s * 1e3
        marker = " !" if span_.status == "error" else ""
        lines.append(
            f"{'  ' * depth}- {span_.name}{marker}  "
            f"{wall:.3f}ms (self {self_ms:.3f}ms, cpu {cpu:.3f}ms)"
            f"{_format_attributes(span_.attributes)}"
        )
        if span_.error:
            lines.append(f"{'  ' * (depth + 1)}error: {span_.error}")
        for child in span_.children:
            emit(child, depth + 1)

    emit(record.root, 0)
    return "\n".join(lines)


# -- cross-process stitching ----------------------------------------------


def stitch_trace(
    trace_id: str,
    segments: list[tuple[str, dict[str, Any]]],
) -> dict[str, Any]:
    """Merge per-process span trees into one fleet-wide tree.

    ``segments`` is ``(process label, span-tree dict)`` pairs — each
    tree the ``root`` of one process's stored segment (``Span.as_dict``
    shape).  A segment whose root carries a ``remote_parent`` attribute
    is attached as a child of the span with that id, wherever it lives;
    segment roots are labelled with their ``process`` so the rendered
    tree shows every hop.  Roots that name an unknown parent (their
    caller's segment was sampled out or evicted) surface under
    ``unlinked`` rather than vanishing.
    """
    roots: list[dict[str, Any]] = []
    nodes: dict[str, dict[str, Any]] = {}
    owner: dict[str, int] = {}  # span id -> index of its segment root
    for index, (process, tree) in enumerate(segments):
        if not isinstance(tree, dict) or "name" not in tree:
            continue
        tree["process"] = process
        stack = [tree]
        while stack:
            node = stack.pop()
            sid = node.get("span_id")
            if sid and sid not in nodes:
                nodes[sid] = node
                owner[sid] = index
            stack.extend(node.get("children") or ())
        roots.append(tree)

    attached_to: dict[int, int] = {}  # segment index -> parent segment index

    def _would_cycle(child: int, parent: int) -> bool:
        seen = {child}
        cursor: int | None = parent
        while cursor is not None:
            if cursor in seen:
                return True
            seen.add(cursor)
            cursor = attached_to.get(cursor)
        return False

    top: list[dict[str, Any]] = []
    for index, tree in enumerate(roots):
        parent_id = (tree.get("attributes") or {}).get(REMOTE_PARENT_ATTR)
        parent = nodes.get(parent_id) if parent_id else None
        if parent is not None and not _would_cycle(index, owner[parent_id]):
            parent.setdefault("children", []).append(tree)
            tree["parent_id"] = parent_id
            attached_to[index] = owner[parent_id]
        else:
            top.append(tree)
    top.sort(key=lambda t: t.get("start_ts") or 0.0)
    for tree in roots:
        children = tree.get("children")
        if children:
            children.sort(key=lambda c: c.get("start_ts") or 0.0)
    return {
        "trace_id": trace_id,
        "spans": len(nodes),
        "segments": len(roots),
        "processes": sorted({t["process"] for t in roots}),
        "root": top[0] if top else None,
        "unlinked": top[1:],
    }


def render_tree(payload: dict[str, Any]) -> str:
    """Render a stitched trace payload (dict span trees, as served by
    the front tier's ``GET /api/v2/traces/<id>``) — the fleet-wide
    ``carcs trace --id`` output.  Segment roots carry ``@process``
    labels so every hop is visible."""
    processes = ",".join(payload.get("processes") or ()) or "?"
    lines = [
        f"trace {payload.get('trace_id', '?')}  "
        f"spans={payload.get('spans', 0)}  "
        f"segments={payload.get('segments', 0)}  "
        f"processes={processes}"
    ]

    def emit(node: dict[str, Any], depth: int) -> None:
        marker = " !" if node.get("status") == "error" else ""
        process = node.get("process")
        label = f" @{process}" if process else ""
        attrs = {
            k: v for k, v in (node.get("attributes") or {}).items()
            if k != REMOTE_PARENT_ATTR
        }
        lines.append(
            f"{'  ' * depth}- {node.get('name', '?')}{marker}{label}  "
            f"{node.get('wall_ms', 0.0):.3f}ms "
            f"(self {node.get('self_ms', 0.0):.3f}ms, "
            f"cpu {node.get('cpu_ms', 0.0):.3f}ms)"
            f"{_format_attributes(attrs)}"
        )
        if node.get("error"):
            lines.append(f"{'  ' * (depth + 1)}error: {node['error']}")
        for child in node.get("children") or ():
            emit(child, depth + 1)

    root = payload.get("root")
    if root:
        emit(root, 0)
    for tree in payload.get("unlinked") or ():
        lines.append("unlinked segment (caller's segment not retained):")
        emit(tree, 1)
    return "\n".join(lines)
