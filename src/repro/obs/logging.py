"""Structured request logging with per-request ids.

Every request that flows through the web middleware gets a short unique
id (or reuses the ``X-Request-Id`` a proxy already stamped); the same id
appears in the response headers, in error envelopes, and in the records
kept here — so one grep correlates a client-reported failure with the
server-side record.  Records are plain dicts in a bounded ring buffer,
optionally mirrored to a stdlib logger as single-line JSON.
"""

from __future__ import annotations

import json
import logging
import threading
import time
import uuid
from collections import deque
from typing import Any


def new_request_id() -> str:
    """A short, collision-resistant request id (96 random bits, hex)."""
    return uuid.uuid4().hex[:24]


class RequestLog:
    """Bounded, thread-safe ring buffer of structured request records."""

    def __init__(self, capacity: int = 1024,
                 logger: logging.Logger | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.logger = logger
        #: Optional MetricsRegistry; when attached (the web layer does),
        #: every drop updates the ``carcs_request_log_dropped`` gauge so
        #: scrapers see record loss as it happens, not only at scrape
        #: time.
        self.metrics = None
        self._lock = threading.Lock()
        self._records: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._dropped = 0

    def record(self, **fields: Any) -> dict[str, Any]:
        """Append one structured record; ``ts`` is stamped automatically."""
        entry = {"ts": time.time(), **fields}
        with self._lock:
            dropped = len(self._records) == self.capacity
            if dropped:
                self._dropped += 1
            self._records.append(entry)
        if dropped and self.metrics is not None:
            self.metrics.gauge("carcs_request_log_dropped").set(self._dropped)
        if self.logger is not None:
            self.logger.info(json.dumps(entry, sort_keys=True, default=str))
        return entry

    def tail(self, n: int = 50) -> list[dict[str, Any]]:
        with self._lock:
            records = list(self._records)
        return records[-n:]

    def find(self, request_id: str) -> list[dict[str, Any]]:
        with self._lock:
            return [r for r in self._records if r.get("request_id") == request_id]

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound (visibility into loss)."""
        return self._dropped

    def snapshot(self, n: int = 50) -> dict[str, Any]:
        """Bounded view of the log *including* its loss accounting —
        consumers of the records can tell how much history is missing."""
        with self._lock:
            records = list(self._records)
        return {
            "capacity": self.capacity,
            "size": len(records),
            "dropped": self._dropped,
            "records": records[-n:],
        }

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._dropped = 0
