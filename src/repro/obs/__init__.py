"""Observability substrate: metrics + structured logging + tracing.

The paper's prototype was a hosted web service with no way to answer
"how fast is /coverage right now?" or "which routes are erroring?".
This package provides the three primitives the ROADMAP's production
target needs: a process-local :class:`MetricsRegistry` (counters,
gauges, fixed-bucket latency histograms — all thread-safe), a
:class:`RequestLog` ring buffer of structured per-request records keyed
by request id, and a :class:`Tracer` producing hierarchical per-request
:class:`Span` trees that attribute latency across the web → core → db
layers.  The web middleware chain feeds all three; ``GET
/api/v1/metrics`` exports the registry (JSON or Prometheus text) and
``GET /api/v1/traces`` pages over retained traces.
"""

from .logging import RequestLog, new_request_id
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from .runtime import collect_runtime_metrics
from .slo import SloMonitor
from .trace import (
    MODE_ALL,
    MODE_OFF,
    MODE_SAMPLED,
    NULL_SPAN,
    REMOTE_PARENT_ATTR,
    TRACEPARENT_HEADER,
    TRACER,
    Span,
    TraceRecord,
    Tracer,
    TraceStore,
    current_span,
    current_trace_id,
    current_traceparent,
    format_traceparent,
    get_tracer,
    parse_traceparent,
    render_text,
    render_tree,
    span,
    stitch_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MODE_ALL",
    "MODE_OFF",
    "MODE_SAMPLED",
    "MetricsRegistry",
    "NULL_SPAN",
    "REMOTE_PARENT_ATTR",
    "RequestLog",
    "SloMonitor",
    "Span",
    "TRACEPARENT_HEADER",
    "TRACER",
    "TraceRecord",
    "TraceStore",
    "Tracer",
    "collect_runtime_metrics",
    "current_span",
    "current_trace_id",
    "current_traceparent",
    "format_traceparent",
    "get_tracer",
    "new_request_id",
    "parse_traceparent",
    "render_prometheus",
    "render_text",
    "render_tree",
    "span",
    "stitch_trace",
]
