"""Observability substrate: metrics + structured request logging.

The paper's prototype was a hosted web service with no way to answer
"how fast is /coverage right now?" or "which routes are erroring?".
This package provides the two primitives the ROADMAP's production target
needs: a process-local :class:`MetricsRegistry` (counters, gauges,
fixed-bucket latency histograms — all thread-safe) and a
:class:`RequestLog` ring buffer of structured per-request records keyed
by request id.  The web middleware chain feeds both; ``GET
/api/v1/metrics`` exports the registry.
"""

from .logging import RequestLog, new_request_id
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestLog",
    "new_request_id",
]
