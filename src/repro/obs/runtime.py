"""Process runtime gauges: build info, memory, fds, threads.

One call per metrics scrape stamps the process-level facts an operator
correlates with request-level signals — is the p99 regression a code
path or the box swapping?  Stdlib only (``os`` + ``resource``): reads
``/proc/self`` where the platform has it and falls back to
``getrusage`` elsewhere, so the scrape works identically in tests, the
CLI and every fleet role.
"""

from __future__ import annotations

import os
import sys
import threading
import time

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None  # type: ignore[assignment]

from .metrics import MetricsRegistry

#: Monotonic reference taken at import — the process-wide uptime origin
#: (the API's own ``carcs_uptime_seconds`` measures the *server* object,
#: which can be younger than the process that hosts it).
_PROCESS_START = time.monotonic()


def rss_bytes() -> int:
    """Current resident set size; ``-1`` when undeterminable."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    if resource is not None:
        # ru_maxrss is the peak, not current — still the right order of
        # magnitude for capacity planning, and the best portable answer.
        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        scale = 1024 if sys.platform != "darwin" else 1
        return int(usage) * scale
    return -1


def open_fds() -> int:
    """Open file descriptors of this process; ``-1`` when unknowable."""
    for fd_dir in ("/proc/self/fd", "/dev/fd"):
        try:
            return len(os.listdir(fd_dir))
        except OSError:
            continue
    return -1


def collect_runtime_metrics(registry: MetricsRegistry) -> None:
    """Stamp ``carcs_build_info`` + process gauges into ``registry``.

    Called by the ``/metrics`` handlers (v1 and v2 share them) at scrape
    time — gauges are cheap to re-set and scrapes are rare.
    """
    from repro import __version__

    registry.gauge(
        "carcs_build_info",
        version=__version__,
        python="{}.{}.{}".format(*sys.version_info[:3]),
    ).set(1)
    registry.gauge("carcs_process_uptime_seconds").set(
        round(time.monotonic() - _PROCESS_START, 3)
    )
    rss = rss_bytes()
    if rss >= 0:
        registry.gauge("carcs_process_resident_memory_bytes").set(rss)
    fds = open_fds()
    if fds >= 0:
        registry.gauge("carcs_process_open_fds").set(fds)
    registry.gauge("carcs_process_threads").set(threading.active_count())


__all__ = ["collect_runtime_metrics", "open_fds", "rss_bytes"]
