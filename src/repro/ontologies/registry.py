"""Named ontology registry.

"Note that while we use these particular set of guidelines to identify
requirements for and to populate an initial version of CAR-CS, other
guidelines and standards ... could be integrated in the system"
(Section III-A).  The registry is that extension point: any callable
returning an :class:`~repro.core.ontology.Ontology` can be registered
under a name, and built ontologies are memoized (CS13 construction builds
~3000 nodes; analyses ask for it repeatedly).
"""

from __future__ import annotations

from typing import Callable

from repro.core.ontology import Ontology

from . import cs2013, pdc12, pdc2019

_BUILDERS: dict[str, Callable[[], Ontology]] = {
    cs2013.NAME: cs2013.build,
    pdc12.NAME: pdc12.build,
    pdc2019.NAME: pdc2019.build,
}

_CACHE: dict[str, Ontology] = {}


def register(name: str, builder: Callable[[], Ontology]) -> None:
    """Register a new ontology builder (e.g. a cyber-security curriculum)."""
    if name in _BUILDERS:
        raise ValueError(f"ontology {name!r} is already registered")
    _BUILDERS[name] = builder


def unregister(name: str) -> None:
    """Remove a registered ontology (built-ins included; used by tests)."""
    _BUILDERS.pop(name, None)
    _CACHE.pop(name, None)


def available() -> list[str]:
    return sorted(_BUILDERS)


def load(name: str) -> Ontology:
    """Build (or fetch the memoized) ontology called ``name``."""
    if name not in _CACHE:
        try:
            builder = _BUILDERS[name]
        except KeyError:
            raise KeyError(
                f"unknown ontology {name!r}; available: {available()}"
            ) from None
        onto = builder()
        onto.validate()
        _CACHE[name] = onto
    return _CACHE[name]


def load_all() -> dict[str, Ontology]:
    """All registered ontologies, keyed by name."""
    return {name: load(name) for name in available()}


def clear_cache() -> None:
    _CACHE.clear()
