"""Structural diff between two editions of an ontology.

The paper notes both curricula are revised over time ("a new iteration of
these guidelines are expected to be finalized in 2019") and CAR-CS must
keep classifications meaningful across editions.  :func:`diff_ontologies`
compares two trees by *label within path context* (keys are namespaced
per edition, so key equality is useless) and reports added, removed,
relabelled and moved entries — the input the classification migrator
consumes and the report a curriculum committee would read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ontology import NodeKind, Ontology


def _strip_ns(key: str) -> str:
    """Drop the edition namespace (first path segment) from a key."""
    return key.split("/", 1)[1] if "/" in key else ""


@dataclass
class DiffEntry:
    kind: str              # "added" | "removed" | "moved" | "relabelled"
    label: str
    old_path: str = ""
    new_path: str = ""


@dataclass
class OntologyDiff:
    old_name: str
    new_name: str
    added: list[DiffEntry] = field(default_factory=list)
    removed: list[DiffEntry] = field(default_factory=list)
    moved: list[DiffEntry] = field(default_factory=list)
    relabelled: list[DiffEntry] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.moved or self.relabelled)

    def summary(self) -> dict[str, int]:
        return {
            "added": len(self.added),
            "removed": len(self.removed),
            "moved": len(self.moved),
            "relabelled": len(self.relabelled),
        }

    def format(self) -> str:
        lines = [f"Diff {self.old_name} -> {self.new_name}"]
        for title, entries in (
            ("Added", self.added),
            ("Removed", self.removed),
            ("Moved", self.moved),
            ("Relabelled", self.relabelled),
        ):
            if not entries:
                continue
            lines.append(f"  {title}:")
            for entry in entries:
                if entry.kind == "moved":
                    lines.append(f"    {entry.label}")
                    lines.append(f"      from {entry.old_path}")
                    lines.append(f"      to   {entry.new_path}")
                elif entry.kind == "relabelled":
                    lines.append(f"    {entry.old_path}")
                    lines.append(f"      now: {entry.label}")
                else:
                    path = entry.new_path or entry.old_path
                    lines.append(f"    {path}")
        return "\n".join(lines)


def _index(onto: Ontology) -> dict[str, tuple[str, str]]:
    """label -> (namespace-stripped parent key, full path) for all entries."""
    out = {}
    for node in onto.nodes():
        if node.kind is NodeKind.ROOT:
            continue
        parent = node.parent or ""
        out[node.label] = (_strip_ns(parent), onto.path_string(node.key))
    return out


def diff_ontologies(old: Ontology, new: Ontology) -> OntologyDiff:
    """Label-based structural diff (see module docstring).

    An entry present in both editions under a different parent is
    "moved"; present only in the new edition "added"; only in the old
    "removed".  Entries whose namespace-stripped key matches but whose
    label changed are "relabelled" (counted once, not also as
    added+removed).
    """
    diff = OntologyDiff(old_name=old.name, new_name=new.name)

    old_by_label = _index(old)
    new_by_label = _index(new)
    old_by_key = {_strip_ns(n.key): n for n in old.nodes()}
    new_by_key = {_strip_ns(n.key): n for n in new.nodes()}

    relabelled_old_labels: set[str] = set()
    relabelled_new_labels: set[str] = set()
    for stripped, old_node in old_by_key.items():
        new_node = new_by_key.get(stripped)
        if new_node is not None and new_node.label != old_node.label:
            diff.relabelled.append(
                DiffEntry(
                    kind="relabelled",
                    label=new_node.label,
                    old_path=old.path_string(old_node.key),
                    new_path=new.path_string(new_node.key),
                )
            )
            relabelled_old_labels.add(old_node.label)
            relabelled_new_labels.add(new_node.label)

    for label, (new_parent, new_path) in new_by_label.items():
        if label in relabelled_new_labels:
            continue
        if label not in old_by_label:
            diff.added.append(
                DiffEntry(kind="added", label=label, new_path=new_path)
            )
        else:
            old_parent, old_path = old_by_label[label]
            if old_parent != new_parent:
                diff.moved.append(
                    DiffEntry(
                        kind="moved", label=label,
                        old_path=old_path, new_path=new_path,
                    )
                )

    for label, (_, old_path) in old_by_label.items():
        if label in relabelled_old_labels:
            continue
        if label not in new_by_label:
            diff.removed.append(
                DiffEntry(kind="removed", label=label, old_path=old_path)
            )

    _pair_renamed_moves(diff)
    for bucket in (diff.added, diff.removed, diff.moved, diff.relabelled):
        bucket.sort(key=lambda e: e.label)
    return diff


def _normalize(label: str) -> str:
    """Label minus its 'Category: ' prefix — used to recognize entries
    that moved *and* had their prefix renamed (e.g. PDC19's
    'Data: Amdahl's Law…' -> 'Costs of computation: Amdahl's Law…')."""
    if ": " in label:
        return label.split(": ", 1)[1].lower()
    return label.lower()


def _pair_renamed_moves(diff: OntologyDiff) -> None:
    """Convert added+removed pairs with matching normalized labels into
    single 'moved' entries."""
    removed_by_norm: dict[str, DiffEntry] = {}
    for entry in diff.removed:
        norm = _normalize(entry.label)
        # Ambiguity (two removed entries normalizing alike) disables the
        # pairing for that norm — better noisy than wrong.
        removed_by_norm[norm] = (
            None if norm in removed_by_norm else entry  # type: ignore[assignment]
        )

    still_added: list[DiffEntry] = []
    matched_removed: set[int] = set()
    for entry in diff.added:
        partner = removed_by_norm.get(_normalize(entry.label))
        if partner is None:
            still_added.append(entry)
            continue
        diff.moved.append(
            DiffEntry(
                kind="moved",
                label=entry.label,
                old_path=partner.old_path,
                new_path=entry.new_path,
            )
        )
        matched_removed.add(id(partner))
    diff.added = still_added
    diff.removed = [e for e in diff.removed if id(e) not in matched_removed]
