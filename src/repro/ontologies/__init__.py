"""Curriculum ontology data: ACM CS2013, NSF/IEEE-TCPP PDC2012, and the
projected PDC2019 revision, plus edition-diff tooling."""

from . import cs2013, pdc12, pdc2019
from .diff import DiffEntry, OntologyDiff, diff_ontologies
from .registry import available, load, load_all, register, unregister

__all__ = [
    "DiffEntry",
    "OntologyDiff",
    "available",
    "cs2013",
    "diff_ontologies",
    "load",
    "load_all",
    "pdc12",
    "pdc2019",
    "register",
    "unregister",
]
