"""A projected NSF/IEEE-TCPP PDC *2019* revision ("PDC19").

The paper (Sections I, IV-A) anticipates the 2019 update of the PDC
curriculum and lists the 2012 edition's oddities it expects to be fixed:

* "Amdhal's law (and related topics) falls under
  Programming::Performance Issue::Data" — speedup/efficiency/Amdahl/
  Gustafson move to ``Algorithm :: Parallel and Distributed Models and
  Complexity :: Costs of computation``;
* "Notions from scheduling misses Critical Path" — a Critical Path topic
  is added;
* "The Map-Reduce programming model seems mostly missing" — a Map-Reduce
  entry is added under programming notations;
* "BSP; which is oddly bundled with Cilk" — the bundled entry is split
  into separate BSP and CILK model topics;
* "topics related to middleware (design and implementation) seem to be
  mostly missing" — a small middleware unit is added under Cross-Cutting.

PDC19 is built *from* the PDC12 tree by applying a declarative list of
:class:`Revision` operations, so the diff between the two editions is
first-class data: :func:`revisions` feeds the ontology-diff tooling in
:mod:`repro.ontologies.diff` and the classification migration in
:mod:`repro.core.migrate`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ontology import BloomLevel, NodeKind, Ontology, Tier

from . import pdc12
from .pdc12 import _slug  # reuse the key-slug convention

NAME = "PDC19"


@dataclass(frozen=True)
class Revision:
    """One declarative change from PDC12 to PDC19.

    ``op`` is one of:

    * ``"move"``   — topic ``old_key`` re-parents under unit ``new_parent``
      (keeping label/bloom/tier unless overridden);
    * ``"add"``    — new topic ``label`` under unit ``new_parent``;
    * ``"split"``  — topic ``old_key`` is removed and replaced by topics
      ``labels`` under the same parent;
    * ``"add_unit"`` — new unit ``label`` under area ``new_parent``.
    """

    op: str
    old_key: str | None = None
    new_parent: str | None = None
    label: str | None = None
    labels: tuple[str, ...] = ()
    bloom: BloomLevel | None = None
    tier: Tier | None = None
    rationale: str = ""


def _k(area: str, unit: str, topic: str | None = None) -> str:
    return pdc12.key_of(area, unit, topic)


_COSTS_UNIT = _k("ALGO", "Parallel and Distributed Models and Complexity")
_NOTATIONS_UNIT = _k("PROG", "Parallel programming paradigms and notations")
_SCHED_PARENT = _COSTS_UNIT  # scheduling notions live in the same unit


def revisions() -> tuple[Revision, ...]:
    """The declarative PDC12 → PDC19 change list (paper's IV-A fixes)."""
    return (
        Revision(
            op="move",
            old_key=_k("PROG", "Performance issues",
                       "Data: performance metrics, speedup and efficiency"),
            new_parent=_COSTS_UNIT,
            label="Costs of computation: performance metrics, speedup and efficiency",
            rationale="speedup metrics belong with complexity, not data layout",
        ),
        Revision(
            op="move",
            old_key=_k("PROG", "Performance issues",
                       "Data: Amdahl's Law and its consequences"),
            new_parent=_COSTS_UNIT,
            label="Costs of computation: Amdahl's Law and its consequences",
            rationale="the paper: Amdahl oddly filed under Programming::Performance Issue::Data",
        ),
        Revision(
            op="move",
            old_key=_k("PROG", "Performance issues",
                       "Data: Gustafson's Law and scaled speedup"),
            new_parent=_COSTS_UNIT,
            label="Costs of computation: Gustafson's Law and scaled speedup",
            rationale="same relocation as Amdahl",
        ),
        Revision(
            op="add",
            new_parent=_SCHED_PARENT,
            label="Notions from scheduling: critical path and its length",
            bloom=BloomLevel.COMPREHEND,
            tier=Tier.CORE,
            rationale="the paper: 'Notions from scheduling misses Critical Path'",
        ),
        Revision(
            op="add",
            new_parent=_NOTATIONS_UNIT,
            label="Programming notations: Map-Reduce frameworks",
            bloom=BloomLevel.COMPREHEND,
            tier=Tier.CORE,
            rationale="the paper: 'The Map-Reduce programming model seems mostly missing'",
        ),
        Revision(
            op="split",
            old_key=_k("ALGO", "Parallel and Distributed Models and Complexity",
                       "Model-based notions: BSP/CILK multithreaded models"),
            labels=(
                "Model-based notions: Bulk Synchronous Parallel (BSP) model",
                "Model-based notions: CILK-style multithreaded model",
            ),
            rationale="the paper: 'BSP; which is oddly bundled with Cilk'",
        ),
        Revision(
            op="add_unit",
            new_parent=f"{pdc12.NAME}/CROSS",
            label="Middleware design and implementation",
            rationale="the paper: middleware 'seem to be mostly missing' from both ontologies",
        ),
        Revision(
            op="add",
            new_parent=f"{pdc12.NAME}/CROSS/{_slug('Middleware design and implementation')}",
            label="Message brokers and publish-subscribe systems",
            bloom=BloomLevel.KNOW,
            tier=Tier.ELECTIVE,
        ),
        Revision(
            op="add",
            new_parent=f"{pdc12.NAME}/CROSS/{_slug('Middleware design and implementation')}",
            label="Run-time systems for task and data distribution",
            bloom=BloomLevel.KNOW,
            tier=Tier.ELECTIVE,
        ),
    )


def _translate(key: str) -> str:
    """Rewrite a PDC12 key into the PDC19 namespace."""
    assert key.startswith(pdc12.NAME + "/") or key == pdc12.NAME
    return NAME + key[len(pdc12.NAME):]


def build() -> Ontology:
    """Construct PDC19 = PDC12 + :func:`revisions` (validated)."""
    base = pdc12.build()
    revs = revisions()
    moved: dict[str, tuple[str, str | None]] = {}   # old key -> (parent, label)
    removed: set[str] = set()
    for rev in revs:
        if rev.op == "move":
            assert rev.old_key and rev.new_parent
            moved[rev.old_key] = (rev.new_parent, rev.label)
        elif rev.op == "split":
            assert rev.old_key
            removed.add(rev.old_key)

    onto = Ontology(
        NAME,
        "NSF/IEEE-TCPP PDC curriculum, projected 2019 revision "
        "(PDC12 plus the fixes anticipated in the paper's Section IV-A)",
    )

    # Phase 1: copy the PDC12 tree minus removed/moved nodes (pre-order,
    # so parents always precede children).
    for node in base.nodes():
        if node.key in removed or node.key in moved:
            continue
        assert node.parent is not None
        new_parent = (
            _translate(node.parent) if node.parent != base.root.key else None
        )
        onto.add(
            _translate(node.key), node.label, node.kind, new_parent,
            code=node.code, tier=node.tier, bloom=node.bloom, hours=node.hours,
        )

    # Phase 2: re-insert moved nodes under their new (now existing) parents.
    for old_key, (parent, relabel) in moved.items():
        node = base.node(old_key)
        label = relabel or node.label
        onto.add(
            _translate(f"{parent}/{_slug(label)}"), label, node.kind,
            _translate(parent),
            code=node.code, tier=node.tier, bloom=node.bloom, hours=node.hours,
        )

    # Apply additions and splits.
    for rev in revs:
        if rev.op == "add_unit":
            assert rev.new_parent and rev.label
            onto.add(
                _translate(f"{rev.new_parent}/{_slug(rev.label)}"),
                rev.label, NodeKind.UNIT, _translate(rev.new_parent),
            )
        elif rev.op == "add":
            assert rev.new_parent and rev.label
            onto.add(
                _translate(f"{rev.new_parent}/{_slug(rev.label)}"),
                rev.label, NodeKind.TOPIC, _translate(rev.new_parent),
                bloom=rev.bloom,
                tier=rev.tier if rev.tier is not None else Tier.ELECTIVE,
            )
        elif rev.op == "split":
            assert rev.old_key
            parent = _translate(rev.old_key.rsplit("/", 1)[0])
            old_node = pdc12.build().node(rev.old_key)
            for label in rev.labels:
                onto.add(
                    _translate(f"{rev.old_key.rsplit('/', 1)[0]}/{_slug(label)}"),
                    label, NodeKind.TOPIC, parent,
                    bloom=old_node.bloom, tier=old_node.tier,
                )

    onto.validate()
    return onto


def key_map() -> dict[str, tuple[str, ...]]:
    """PDC12 key -> PDC19 key(s) for every key changed by the revision.

    Unlisted keys translate 1:1 by namespace rewrite.  Split topics map
    to all of their replacements (a material classified under the bundle
    is conservatively classified under both halves).
    """
    mapping: dict[str, tuple[str, ...]] = {}
    for rev in revisions():
        if rev.op == "move":
            assert rev.old_key and rev.new_parent
            label = rev.label or pdc12.build().node(rev.old_key).label
            mapping[rev.old_key] = (
                _translate(f"{rev.new_parent}/{_slug(label)}"),
            )
        elif rev.op == "split":
            assert rev.old_key
            parent = rev.old_key.rsplit("/", 1)[0]
            mapping[rev.old_key] = tuple(
                _translate(f"{parent}/{_slug(label)}") for label in rev.labels
            )
    return mapping


def translate_key(key: str) -> tuple[str, ...]:
    """Where a PDC12 classification lands in PDC19 (1 or 2 keys)."""
    mapped = key_map().get(key)
    if mapped is not None:
        return mapped
    return (_translate(key),)
