"""The NSF/IEEE-TCPP PDC 2012 curriculum ontology ("PDC12").

"The 2012 NSF/IEEE-TCPP curriculum for Parallel Distributed Computing is
... divided in four areas: Algorithm, Architecture, Programming, and
Cross-Cutting and Advanced topics ... The PDC guidelines also associate
Bloom levels (Know, Comprehend, and Apply) with the topics ... the PDC
curriculum only exposes two levels: core and elective." (Section II-B.)

The tree below is a faithful hand-encoding of the published topic list,
*including* the classification oddities the paper reports in Section IV-A,
because the gap-analysis code is expected to rediscover them:

* Amdahl's Law (and related speedup topics) sits under
  ``Programming :: Performance issues :: Data`` — not under Algorithms;
* ``BSP/CILK`` is a single bundled entry ("BSP; which is oddly bundled
  with Cilk");
* there is **no** Map-Reduce entry (only BSP/CILK and Cloud Computing come
  close);
* ``Algorithm :: Parallel and Distributed Models and Complexity :: Notions
  from scheduling`` lists makespan-related notions but **misses Critical
  Path**;
* middleware design/implementation topics are absent.

Keys are hierarchical: ``PDC12/<AreaCode>/<unit-slug>/<topic-slug>``.
"""

from __future__ import annotations

from repro.core.ontology import BloomLevel, NodeKind, Ontology, Tier

NAME = "PDC12"

K = BloomLevel.KNOW
C = BloomLevel.COMPREHEND
A = BloomLevel.APPLY

CORE = Tier.CORE
ELEC = Tier.ELECTIVE

# (area code, area label, [(unit label, [(topic label, bloom, tier), ...]), ...])
_AREAS: list[tuple[str, str, list[tuple[str, list[tuple[str, BloomLevel, Tier]]]]]] = [
    (
        "ARCH",
        "Architecture",
        [
            (
                "Classes of architecture",
                [
                    ("Taxonomy: Flynn's taxonomy (SISD, SIMD, MIMD)", K, CORE),
                    ("Data versus control parallelism: SIMD and vector units", K, CORE),
                    ("Data versus control parallelism: pipelines and streams", K, CORE),
                    ("Data versus control parallelism: MIMD and simultaneous multithreading", K, CORE),
                    ("Data versus control parallelism: dataflow architectures", K, ELEC),
                    ("Shared versus distributed memory: SMP and buses", C, CORE),
                    ("Shared versus distributed memory: NUMA organizations", K, ELEC),
                    ("Shared versus distributed memory: message passing interconnects and topologies", K, CORE),
                    ("Shared versus distributed memory: latency and bandwidth", C, CORE),
                    ("Multicore processors and heterogeneity (GPU, accelerators)", K, CORE),
                ],
            ),
            (
                "Memory hierarchy",
                [
                    ("Cache organization in multiprocessors", K, CORE),
                    ("Atomicity of memory operations", K, CORE),
                    ("Memory consistency models", K, ELEC),
                    ("Cache coherence protocols", K, ELEC),
                    ("Impact of memory hierarchy on parallel performance", C, CORE),
                ],
            ),
            (
                "Performance metrics of architecture",
                [
                    ("Cycles per instruction and instruction-level metrics", C, CORE),
                    ("Benchmarks and benchmark suites (SPEC, LINPACK)", K, CORE),
                    ("Peak performance and its limits", C, CORE),
                    ("MIPS and FLOPS as rate measures", K, CORE),
                    ("Sustained versus peak performance", C, CORE),
                ],
            ),
            (
                "Floating point representation",
                [
                    ("Floating point range and precision in parallel codes", K, CORE),
                    ("Error propagation and non-associativity of floating point", K, ELEC),
                ],
            ),
        ],
    ),
    (
        "PROG",
        "Programming",
        [
            (
                "Parallel programming paradigms and notations",
                [
                    ("By target machine model: SIMD programming", K, CORE),
                    ("By target machine model: shared memory programming", A, CORE),
                    ("By target machine model: distributed memory programming", C, CORE),
                    ("By target machine model: hybrid programming models", K, ELEC),
                    ("By control statement: task and thread spawning", A, CORE),
                    ("By control statement: SPMD programming", C, CORE),
                    ("By control statement: data parallel constructs", A, CORE),
                    ("By control statement: parallel loops (e.g., OpenMP for)", A, CORE),
                    ("Programming notations: threads (e.g., pthreads)", A, CORE),
                    ("Programming notations: compiler directives and pragmas (e.g., OpenMP)", A, CORE),
                    ("Programming notations: message passing libraries (e.g., MPI)", C, CORE),
                    ("Programming notations: client-server and RPC frameworks", K, ELEC),
                    ("Programming notations: GPU kernels (e.g., CUDA, OpenCL)", K, ELEC),
                ],
            ),
            (
                "Semantics and correctness issues",
                [
                    ("Tasks and threads as units of execution", C, CORE),
                    ("Synchronization: critical regions and mutual exclusion", A, CORE),
                    ("Synchronization: producer-consumer coordination", A, CORE),
                    ("Synchronization: monitors and condition synchronization", K, ELEC),
                    ("Concurrency defects: data races", C, CORE),
                    ("Concurrency defects: deadlocks and livelocks", C, CORE),
                    ("Memory models and sequential consistency for programmers", K, ELEC),
                    ("Determinism and nondeterminism of parallel programs", C, CORE),
                ],
            ),
            (
                "Performance issues",
                [
                    # The PDC12 document files computation- and data-centric
                    # performance topics under these two sub-headings; the
                    # paper notes the oddity that Amdahl's Law lands under
                    # "Data".  Faithfully reproduced.
                    ("Computation: decomposition into atomic tasks", A, CORE),
                    ("Computation: work stealing and dynamic task scheduling", K, ELEC),
                    ("Computation: load balancing strategies", C, CORE),
                    ("Computation: static and dynamic scheduling and mapping", C, CORE),
                    ("Data: data distribution across memories", C, CORE),
                    ("Data: data locality and its performance impact", C, CORE),
                    ("Data: false sharing", K, ELEC),
                    ("Data: performance metrics, speedup and efficiency", C, CORE),
                    ("Data: Amdahl's Law and its consequences", C, CORE),
                    ("Data: Gustafson's Law and scaled speedup", K, ELEC),
                ],
            ),
            (
                "Tools",
                [
                    ("Performance monitoring and profiling tools", K, CORE),
                    ("Parallel debuggers and race detectors", K, ELEC),
                ],
            ),
        ],
    ),
    (
        "ALGO",
        "Algorithm",
        [
            (
                "Parallel and Distributed Models and Complexity",
                [
                    ("Costs of computation: asymptotic analysis of parallel time", C, CORE),
                    ("Costs of computation: space and communication costs", C, CORE),
                    ("Costs of computation: speedup, efficiency, and scalability", C, CORE),
                    ("Cost reduction through parallelism: work optimality", K, ELEC),
                    ("Model-based notions: PRAM model", K, ELEC),
                    # "BSP; which is oddly bundled with Cilk" — one entry.
                    ("Model-based notions: BSP/CILK multithreaded models", K, ELEC),
                    ("Model-based notions: dependencies and task graphs", C, CORE),
                    ("Model-based notions: work and span of a computation", C, CORE),
                    # "Notions from scheduling" — Critical Path deliberately
                    # absent, as the paper observes.
                    ("Notions from scheduling: makespan minimization", K, ELEC),
                    ("Notions from scheduling: list scheduling and Graham's bound", K, ELEC),
                    ("Notions from scheduling: processor allocation", K, ELEC),
                ],
            ),
            (
                "Algorithmic Paradigms",
                [
                    ("Divide and conquer in parallel", A, CORE),
                    ("Recursion and parallel recursive decomposition", A, CORE),
                    ("Reduction operations", A, CORE),
                    ("Prefix sums and scan", C, CORE),
                    ("Stencil-based iteration", C, CORE),
                    ("Blocking and tiling for parallelism", K, ELEC),
                    ("Out-of-core and streaming paradigms", K, ELEC),
                ],
            ),
            (
                "Algorithmic problems",
                [
                    ("Communication operations: broadcast and multicast", C, CORE),
                    ("Communication operations: scatter and gather", C, CORE),
                    ("Asynchrony and synchronization in algorithms", K, CORE),
                    ("Parallel sorting algorithms", C, CORE),
                    ("Parallel selection and searching", K, ELEC),
                    ("Parallel matrix computations", C, CORE),
                    ("Parallel graph search (BFS, DFS)", K, ELEC),
                    ("Parallel numerical integration and quadrature", C, CORE),
                    ("Monte Carlo methods and parallel random sampling", K, ELEC),
                ],
            ),
        ],
    ),
    (
        "CROSS",
        "Cross Cutting and Advanced",
        [
            (
                "High level themes",
                [
                    ("Why and what is parallel and distributed computing", K, CORE),
                    ("History and trends: end of Dennard scaling, multicore era", K, CORE),
                ],
            ),
            (
                "Crosscutting topics",
                [
                    ("Concurrency as a pervasive concept", C, CORE),
                    ("Nondeterminism as a crosscutting concern", K, CORE),
                    ("Power consumption and energy efficiency", K, ELEC),
                    ("Locality as a unifying principle", C, CORE),
                ],
            ),
            (
                "Advanced topics: distributed systems",
                [
                    ("Cluster computing", K, ELEC),
                    ("Cloud and grid computing", K, ELEC),
                    ("Consistency in distributed transactions", K, ELEC),
                    ("Fault tolerance and resilience", K, ELEC),
                    ("Security in distributed systems", K, ELEC),
                    ("Web services and distributed search", K, ELEC),
                    ("Peer-to-peer and social networking systems", K, ELEC),
                ],
            ),
            (
                "Advanced topics: performance modeling",
                [
                    ("Analytical performance modeling of parallel systems", K, ELEC),
                    ("Simulation-based performance evaluation", K, ELEC),
                ],
            ),
        ],
    ),
]


def _slug(label: str) -> str:
    out = []
    for ch in label.lower():
        if ch.isalnum():
            out.append(ch)
        elif out and out[-1] != "-":
            out.append("-")
    return "".join(out).strip("-")[:48]


def build() -> Ontology:
    """Construct and validate the PDC12 ontology tree."""
    onto = Ontology(
        NAME,
        "NSF/IEEE-TCPP Curriculum Initiative on Parallel and Distributed "
        "Computing — Core Topics for Undergraduates (2012)",
    )
    for code, area_label, units in _AREAS:
        area_key = f"{NAME}/{code}"
        onto.add(area_key, area_label, NodeKind.AREA, code=code)
        for unit_label, topics in units:
            unit_key = f"{area_key}/{_slug(unit_label)}"
            onto.add(unit_key, unit_label, NodeKind.UNIT, area_key)
            for topic_label, bloom, tier in topics:
                topic_key = f"{unit_key}/{_slug(topic_label)}"
                onto.add(
                    topic_key,
                    topic_label,
                    NodeKind.TOPIC,
                    unit_key,
                    bloom=bloom,
                    tier=tier,
                )
    onto.validate()
    return onto


# Keys referenced from corpus construction and tests; computed here once so
# refactors of the table above fail loudly rather than silently.
def key_of(area_code: str, unit_label: str, topic_label: str | None = None) -> str:
    """Resolve a PDC12 key from human-readable labels."""
    base = f"{NAME}/{area_code}/{_slug(unit_label)}"
    if topic_label is None:
        return base
    return f"{base}/{_slug(topic_label)}"
