"""The ACM/IEEE Computer Science 2013 curriculum ontology ("CS13").

"The guidelines divide the body of knowledge into a set of knowledge
areas; knowledge areas are further divided into knowledge units which
contain topics and learning outcomes.  Learning outcomes are classified
into three levels, familiarity, usage and assessment." (Section II-B.)
The paper also leans on two scale/structure facts: "the CS13
classification contains about 3000 entries", and "parallelism related
topics appear in three different places: System Fundamental,
Computational Science::Processing, and in Parallel and Distributed
Computing" (Section IV-A).

This module reconstructs CS13 at that fidelity: all **18 real knowledge
areas** with their **real knowledge-unit names**, hand-encoded topics for
every unit the paper's analyses touch (PD in full, SDF, AL, CN, PL, SF,
OS, AR, GV, IS, …), and procedurally completed topics/learning outcomes
for the remaining units so the total entry count lands at CS13's reported
≈3000.  The substitution is documented in DESIGN.md §2; everything the
paper measures — hierarchy shape, the three parallelism sites, tier and
outcome-level structure, total size — is preserved.

Keys are hierarchical: ``CS13/<AreaCode>/<AreaCode>.<n>/t<i>`` for topics
and ``.../o<i>`` for learning outcomes.
"""

from __future__ import annotations

from repro.core.ontology import BloomLevel, NodeKind, Ontology, Tier

NAME = "CS13"

C1 = Tier.CORE1
C2 = Tier.CORE2
EL = Tier.ELECTIVE

# ---------------------------------------------------------------------------
# Hand-encoded topic lists for the knowledge units the paper's analyses
# depend on.  Maps (area code, knowledge-unit label) -> list of topics.
# ---------------------------------------------------------------------------

_HAND_TOPICS: dict[tuple[str, str], list[str]] = {
    # --- Software Development Fundamentals (SDF) ---------------------------
    ("SDF", "Algorithms and Design"): [
        "The concept and properties of algorithms",
        "The role of algorithms in the problem-solving process",
        "Problem-solving strategies: iteration, divide-and-conquer",
        "Abstraction and decomposition in program design",
        "Separation of behavior and implementation",
        "Fundamental design concepts and principles",
    ],
    ("SDF", "Fundamental Programming Concepts"): [
        "Basic syntax and semantics of a higher-level language",
        "Variables and primitive data types",
        "Expressions and assignments",
        "Simple I/O including file I/O",
        "Conditional and iterative control structures",
        "Functions and parameter passing",
        "The concept of recursion",
    ],
    ("SDF", "Fundamental Data Structures"): [
        "Arrays",
        "Records, structs, and heterogeneous aggregates",
        "Strings and string processing",
        "Stacks and queues",
        "Linked lists",
        "Hash tables and maps",
        "References and aliasing",
        "Abstract data types and their implementations",
    ],
    ("SDF", "Development Methods"): [
        "Program comprehension and code reading",
        "Program correctness: the concept of a specification",
        "Unit testing and test-case design",
        "Debugging strategies",
        "Documentation and program style",
        "Modern programming environments and libraries",
    ],
    # --- Parallel and Distributed Computing (PD) ---------------------------
    ("PD", "Parallelism Fundamentals"): [
        "Multiple simultaneous computations",
        "Goals of parallelism versus concurrency management",
        "Parallelism, communication, and coordination",
        "Programming errors not found in sequential programming: data races",
        "Programming errors not found in sequential programming: deadlock",
    ],
    ("PD", "Parallel Decomposition"): [
        "Need for communication and coordination/synchronization",
        "Independence and partitioning",
        "Task-based decompositions",
        "Data-parallel decompositions",
        "Actors and reactive processes",
    ],
    ("PD", "Communication and Coordination"): [
        "Shared memory communication",
        "Message passing communication",
        "Atomicity: the need for and specification of critical sections",
        "Consensus and coordination among processes",
        "Conditional actions and producer-consumer coordination",
        "Consistency in shared-memory programs",
    ],
    ("PD", "Parallel Algorithms, Analysis, and Programming"): [
        "Critical path, work, and span of a parallel computation",
        "Speedup and scalability; Amdahl's Law",
        "Naturally parallel (embarrassingly parallel) algorithms",
        "Parallel algorithmic patterns: divide-and-conquer, map, reduce",
        "Parallel loops and iteration spaces",
        "Specific parallel algorithms: matrix computations, sorting",
        "Parallel graph algorithms",
        "Producer-consumer and pipelined algorithms",
    ],
    ("PD", "Parallel Architecture"): [
        "Multicore processors",
        "Shared versus distributed memory organizations",
        "Symmetric multiprocessing (SMP)",
        "SIMD and vector processing",
        "GPU and co-processing architectures",
        "Interconnection networks and topologies",
        "Memory hierarchy issues: caches and coherence",
    ],
    ("PD", "Parallel Performance"): [
        "Load balancing",
        "Scheduling of parallel tasks",
        "Data locality and its impact on performance",
        "Performance measurement of parallel programs",
        "Communication overhead and granularity tradeoffs",
        "False sharing and contention",
        "Power and energy considerations in parallel performance",
    ],
    ("PD", "Distributed Systems"): [
        "Faults and partial failure in distributed systems",
        "Distributed message sending and delivery guarantees",
        "Remote procedure call and method invocation",
        "Distributed system design tradeoffs: consistency and availability",
        "Core distributed algorithms: leader election, mutual exclusion",
        "Naming and name services",
        "Distributed shared data and replication",
    ],
    ("PD", "Cloud Computing"): [
        "Internet-scale computing and data centers",
        "Cloud service models: IaaS, PaaS, SaaS",
        "Virtualization as an enabler of cloud computing",
        "Elasticity and resource provisioning",
        "Cloud-based data storage and processing frameworks",
    ],
    ("PD", "Formal Models and Semantics"): [
        "Formal models of processes and message passing",
        "Interleaving semantics of concurrency",
        "Formal notions of safety and liveness",
        "Process calculi and transition systems",
        "Formal verification of concurrent programs",
    ],
    # --- Algorithms and Complexity (AL) -------------------------------------
    ("AL", "Basic Analysis"): [
        "Differences among best, expected, and worst case behaviors",
        "Asymptotic analysis of upper and average complexity bounds",
        "Big O, big Omega, and big Theta notation",
        "Complexity classes and orders of growth",
        "Empirical measurements of performance",
        "Time and space trade-offs in algorithms",
        "Recurrence relations and the analysis of recursive algorithms",
    ],
    ("AL", "Algorithmic Strategies"): [
        "Brute-force algorithms and exhaustive search",
        "Greedy algorithms",
        "Divide-and-conquer strategy",
        "Recursive backtracking",
        "Dynamic programming",
        "Branch-and-bound",
        "Heuristics and approximation strategies",
        "Randomized and Monte Carlo strategies",
    ],
    ("AL", "Fundamental Data Structures and Algorithms"): [
        "Simple numerical algorithms",
        "Sequential and binary search algorithms",
        "Worst-case quadratic sorting algorithms",
        "Worst- or average-case O(n log n) sorting algorithms",
        "Hash tables including collision handling",
        "Binary search trees and balanced trees",
        "Graph representations",
        "Depth- and breadth-first graph traversals",
        "Shortest-path algorithms",
        "Minimum spanning trees",
        "Pattern matching and string algorithms",
    ],
    ("AL", "Basic Automata, Computability and Complexity"): [
        "Finite-state machines and regular expressions",
        "The halting problem and undecidability",
        "Context-free grammars",
        "P versus NP and NP-completeness",
        "Reductions between problems",
    ],
    # --- Computational Science (CN) ----------------------------------------
    ("CN", "Introduction to Modeling and Simulation"): [
        "Models as abstractions of physical processes",
        "Simulation as an experimental tool",
        "Presentation and validation of simulation results",
        "Cellular automaton models",
        "Agent-based simulation models",
    ],
    ("CN", "Modeling and Simulation"): [
        "Random number generation and stochastic simulation",
        "Monte Carlo methods and sampling",
        "Discrete-event simulation",
        "Continuous models and differential equations",
        "Model calibration, verification, and validation",
        "Visualization of simulation output",
    ],
    ("CN", "Processing"): [
        # The paper: "Fundamental Parallel Computing is an area of
        # Computational Sciences::Processing" — one of the three
        # parallelism sites in CS13.
        "Fundamental parallel computing concepts",
        "Fundamental programming concepts for computational science",
        "Computing costs: time, memory, and energy of computations",
        "Decomposition of computational problems for processing",
        "Workflow and batch processing of scientific computations",
    ],
    ("CN", "Interactive Visualization"): [
        "Principles of data visualization",
        "Graphical display of scientific data",
        "Interactive exploration of datasets",
        "Animation of time-dependent data",
    ],
    ("CN", "Data, Information, and Knowledge"): [
        "Acquisition and representation of scientific data",
        "Real-world datasets and their preparation",
        "Metadata and provenance of datasets",
        "From data to information to knowledge",
    ],
    ("CN", "Numerical Analysis"): [
        "Error, stability, and conditioning in numerical computation",
        "Numerical solution of nonlinear equations",
        "Numerical differentiation and integration",
        "Interpolation and curve fitting",
        "Numerical linear algebra fundamentals",
        "Finite difference methods and stencil computations",
    ],
    # --- Systems Fundamentals (SF) -------------------------------------------
    ("SF", "Computational Paradigms"): [
        "Basic building blocks: gates to components",
        "The von Neumann model of computation",
        "Layers of abstraction in computing systems",
        "Programs as data: the stored program concept",
    ],
    ("SF", "Parallelism"): [
        # One of the three parallelism sites in CS13 (System Fundamentals).
        "Sequential versus parallel processing",
        "System support for multiple simultaneous computations",
        "Parallel programming versus concurrent programming",
        "Request-level versus task-level versus data-level parallelism",
        "Parallelism in modern hardware: pipelines, multicore, SIMD",
    ],
    ("SF", "Evaluation"): [
        "Performance figures of merit",
        "Benchmarking and workloads",
        "Analytical tools: Amdahl's Law in system evaluation",
        "Measurement and averaging of performance data",
    ],
    ("SF", "Resource Allocation and Scheduling"): [
        "Kinds of resources in computing systems",
        "Allocation and scheduling approaches",
        "Advantages and disadvantages of scheduling policies",
    ],
    # --- Operating Systems (OS) ------------------------------------------------
    ("OS", "Concurrency"): [
        "States and state diagrams of processes",
        "Dispatching and context switching",
        "The role of interrupts",
        "Managing atomic access: mutual exclusion",
        "Synchronization primitives: semaphores, locks, monitors",
        "Deadlock: causes, conditions, prevention",
        "Producer-consumer problems and race conditions",
        "Multiprocessor issues: spin locks and re-entrancy",
    ],
    ("OS", "Scheduling and Dispatch"): [
        "Preemptive and non-preemptive scheduling",
        "Schedulers and scheduling policies",
        "Processes and threads from the OS perspective",
        "Deadlines and real-time issues in scheduling",
    ],
    # --- Architecture and Organization (AR) -------------------------------------
    ("AR", "Multiprocessing and Alternative Architectures"): [
        "Power-wall motivations for multicore architectures",
        "Amdahl's Law from the architecture perspective",
        "Multicore and multithreaded processors",
        "Shared memory multiprocessors and cache coherence",
        "Flynn's taxonomy and SIMD/MIMD instruction parallelism",
        "GPU and accelerator architectures",
        "Interconnection networks for multiprocessors",
    ],
    ("AR", "Memory System Organization and Architecture"): [
        "Memory hierarchies: importance of temporal and spatial locality",
        "Cache organization: mapping, replacement, write policy",
        "Main memory organization and technologies",
        "Virtual memory from the architecture perspective",
    ],
    # --- Programming Languages (PL) -----------------------------------------------
    ("PL", "Object-Oriented Programming"): [
        "Object-oriented design: classes and objects",
        "Encapsulation and information hiding",
        "Inheritance and subtyping",
        "Dynamic dispatch and polymorphism",
        "Object interaction and message passing between objects",
        "Collection classes and iterators",
        "Interfaces versus implementation inheritance",
    ],
    ("PL", "Functional Programming"): [
        "Effect-free programming and immutability",
        "First-class functions and closures",
        "Higher-order functions: map, filter, reduce",
        "Recursion over inductive data",
    ],
    ("PL", "Event-Driven and Reactive Programming"): [
        "Events and event handlers",
        "Callback-based programming and main event loops",
        "Graphical user interface event handling",
        "Asynchronous event streams",
    ],
    ("PL", "Concurrency and Parallelism"): [
        "Language constructs for concurrency: threads and futures",
        "Message-passing language models: actors",
        "Data-parallel language constructs",
        "Memory models of programming languages",
        "Futures, promises, and asynchronous composition",
    ],
    ("PL", "Runtime Systems"): [
        # The paper: "Runtime systems appear under Programming Languages in
        # CS13, but refer to different things" (than PDC middleware).
        "Dynamic memory management: allocation and garbage collection",
        "Just-in-time compilation and dynamic optimization",
        "Run-time representation of programs and data",
        "Virtual machines and managed run-time environments",
    ],
    # --- Graphics and Visualization (GV) --------------------------------------------
    ("GV", "Fundamental Concepts"): [
        "Media applications: image, sound, and video processing",
        "Digital image representation: raster images and pixels",
        "Color models and color representation",
        "Image file formats and compression basics",
        "Drawing primitives and simple 2D graphics APIs",
        "Animation as a sequence of still images",
    ],
    ("GV", "Basic Rendering"): [
        "Rendering in nature: light and surfaces",
        "The graphics pipeline overview",
        "Rasterization of lines and polygons",
        "Texture mapping fundamentals",
        "Fractal generation and procedural imagery",
    ],
    # --- Intelligent Systems (IS) ------------------------------------------------------
    ("IS", "Fundamental Issues"): [
        "Overview of AI problems and AI application domains",
        "What is intelligent behavior: the Turing test",
        "Problem characteristics: observability, determinism",
        "Rational agent view of AI",
    ],
    ("IS", "Basic Search Strategies"): [
        "Problem spaces, problem solving by search",
        "Uninformed search: breadth-first, depth-first",
        "Heuristic search: hill climbing, A*",
        "Two-player games: minimax search",
        "Constraint satisfaction problems",
    ],
    ("IS", "Basic Machine Learning"): [
        "Definition and examples of machine learning",
        "Supervised learning: classification and regression",
        "Simple statistical learning: naive Bayes, nearest neighbor",
        "Measuring classifier accuracy: training and test sets",
    ],
    # --- Networking and Communication (NC) ------------------------------------------------
    ("NC", "Introduction"): [
        "Organization of the Internet: ISPs, content providers",
        "Layering and the concept of protocols",
        "Circuit switching versus packet switching",
        "Naming, addressing, and DNS",
    ],
    ("NC", "Networked Applications"): [
        "Client-server and peer-to-peer application paradigms",
        "HTTP and web applications",
        "Sockets and application-layer programming",
        "Interaction with network services from programs",
    ],
    # --- Human-Computer Interaction (HCI) --------------------------------------------------
    ("HCI", "Foundations"): [
        "Contexts of human-computer interaction",
        "Usability heuristics and principles",
        "Cognitive models informing interaction design",
        "Accessibility in user interfaces",
    ],
    # --- Information Management (IM) ---------------------------------------------------------
    ("IM", "Information Management Concepts"): [
        "Information systems as sociotechnical systems",
        "Data versus information versus knowledge in systems",
        "Capture, representation, and organization of information",
        "Quality and value of information",
    ],
    ("IM", "Database Systems"): [
        "Approaches to and evolution of database systems",
        "Components of database systems",
        "The relational model and relational databases",
        "Queries and query languages (SQL basics)",
    ],
    # --- Discrete Structures (DS) -----------------------------------------------------------
    ("DS", "Graphs and Trees"): [
        "Undirected and directed graphs",
        "Trees and their properties",
        "Paths, cycles, and connectivity",
        "Traversal strategies on graphs and trees",
    ],
    ("DS", "Discrete Probability"): [
        "Finite probability spaces and events",
        "Conditional probability, independence, and Bayes' theorem",
        "Expected value and variance",
        "Randomized processes and simulations of chance",
    ],
    # --- Social Issues and Professional Practice (SP) ---------------------------------------
    ("SP", "Social Context"): [
        "Social implications of computing in a networked world",
        "Impact of computing applications on individuals and society",
        "Accessibility and the digital divide",
        "Interpreting and presenting data responsibly",
    ],
    # --- Software Engineering (SE) ---------------------------------------------------------
    ("SE", "Software Design"): [
        "System design principles: divide-and-conquer, coupling, cohesion",
        "Design patterns at a basic level",
        "Structural and behavioral design representations",
        "Refactoring of designs",
    ],
    ("SE", "Software Verification and Validation"): [
        "Verification versus validation",
        "Testing levels: unit, integration, system",
        "Test-driven development practices",
        "Defect tracking and inspection",
    ],
}

# ---------------------------------------------------------------------------
# The 18 knowledge areas with real knowledge-unit names and tiers.
# ``(code, area label, [(unit label, tier, core hours), ...])``.
# ---------------------------------------------------------------------------

_AREAS: list[tuple[str, str, list[tuple[str, Tier, float]]]] = [
    ("AL", "Algorithms and Complexity", [
        ("Basic Analysis", C1, 2),
        ("Algorithmic Strategies", C1, 5),
        ("Fundamental Data Structures and Algorithms", C1, 9),
        ("Basic Automata, Computability and Complexity", C1, 3),
        ("Advanced Computational Complexity", EL, 0),
        ("Advanced Automata Theory and Computability", EL, 0),
        ("Advanced Data Structures, Algorithms, and Analysis", EL, 0),
    ]),
    ("AR", "Architecture and Organization", [
        ("Digital Logic and Digital Systems", C2, 3),
        ("Machine Level Representation of Data", C2, 3),
        ("Assembly Level Machine Organization", C2, 6),
        ("Memory System Organization and Architecture", C2, 3),
        ("Interfacing and Communication", C2, 1),
        ("Functional Organization", EL, 0),
        ("Multiprocessing and Alternative Architectures", EL, 0),
        ("Performance Enhancements", EL, 0),
    ]),
    ("CN", "Computational Science", [
        ("Introduction to Modeling and Simulation", C1, 1),
        ("Modeling and Simulation", EL, 0),
        ("Processing", EL, 0),
        ("Interactive Visualization", EL, 0),
        ("Data, Information, and Knowledge", EL, 0),
        ("Numerical Analysis", EL, 0),
    ]),
    ("DS", "Discrete Structures", [
        ("Sets, Relations, and Functions", C1, 4),
        ("Basic Logic", C1, 9),
        ("Proof Techniques", C1, 10),
        ("Basics of Counting", C1, 5),
        ("Graphs and Trees", C1, 3),
        ("Discrete Probability", C1, 6),
    ]),
    ("GV", "Graphics and Visualization", [
        ("Fundamental Concepts", C1, 2),
        ("Basic Rendering", EL, 0),
        ("Geometric Modeling", EL, 0),
        ("Advanced Rendering", EL, 0),
        ("Computer Animation", EL, 0),
        ("Visualization", EL, 0),
    ]),
    ("HCI", "Human-Computer Interaction", [
        ("Foundations", C1, 4),
        ("Designing Interaction", C2, 4),
        ("Programming Interactive Systems", EL, 0),
        ("User-Centered Design and Testing", EL, 0),
        ("New Interactive Technologies", EL, 0),
        ("Collaboration and Communication", EL, 0),
        ("Statistical Methods for HCI", EL, 0),
        ("Human Factors and Security", EL, 0),
        ("Design-Oriented HCI", EL, 0),
        ("Mixed, Augmented and Virtual Reality", EL, 0),
    ]),
    ("IAS", "Information Assurance and Security", [
        ("Foundational Concepts in Security", C1, 1),
        ("Principles of Secure Design", C1, 2),
        ("Defensive Programming", C1, 2),
        ("Threats and Attacks", C2, 1),
        ("Network Security", C2, 2),
        ("Cryptography", C2, 1),
        ("Web Security", EL, 0),
        ("Platform Security", EL, 0),
        ("Security Policy and Governance", EL, 0),
        ("Digital Forensics", EL, 0),
        ("Secure Software Engineering", EL, 0),
    ]),
    ("IM", "Information Management", [
        ("Information Management Concepts", C1, 1),
        ("Database Systems", C2, 3),
        ("Data Modeling", C2, 4),
        ("Indexing", EL, 0),
        ("Relational Databases", EL, 0),
        ("Query Languages", EL, 0),
        ("Transaction Processing", EL, 0),
        ("Distributed Databases", EL, 0),
        ("Physical Database Design", EL, 0),
        ("Data Mining", EL, 0),
        ("Information Storage and Retrieval", EL, 0),
        ("Multimedia Systems", EL, 0),
    ]),
    ("IS", "Intelligent Systems", [
        ("Fundamental Issues", C2, 1),
        ("Basic Search Strategies", C2, 4),
        ("Basic Knowledge Representation and Reasoning", C2, 3),
        ("Basic Machine Learning", C2, 2),
        ("Advanced Search", EL, 0),
        ("Advanced Representation and Reasoning", EL, 0),
        ("Reasoning Under Uncertainty", EL, 0),
        ("Agents", EL, 0),
        ("Natural Language Processing", EL, 0),
        ("Advanced Machine Learning", EL, 0),
        ("Robotics", EL, 0),
        ("Perception and Computer Vision", EL, 0),
    ]),
    ("NC", "Networking and Communication", [
        ("Introduction", C1, 1.5),
        ("Networked Applications", C1, 1.5),
        ("Reliable Data Delivery", C2, 2),
        ("Routing and Forwarding", C2, 1.5),
        ("Local Area Networks", C2, 1.5),
        ("Resource Allocation", C2, 1),
        ("Mobility", C2, 1),
        ("Social Networking", EL, 0),
    ]),
    ("OS", "Operating Systems", [
        ("Overview of Operating Systems", C1, 2),
        ("Operating System Principles", C1, 2),
        ("Concurrency", C2, 3),
        ("Scheduling and Dispatch", C2, 3),
        ("Memory Management", C2, 3),
        ("Security and Protection", C2, 2),
        ("Virtual Machines", EL, 0),
        ("Device Management", EL, 0),
        ("File Systems", EL, 0),
        ("Real Time and Embedded Systems", EL, 0),
        ("Fault Tolerance", EL, 0),
        ("System Performance Evaluation", EL, 0),
    ]),
    ("PBD", "Platform-Based Development", [
        ("Introduction", EL, 0),
        ("Web Platforms", EL, 0),
        ("Mobile Platforms", EL, 0),
        ("Industrial Platforms", EL, 0),
        ("Game Platforms", EL, 0),
    ]),
    ("PD", "Parallel and Distributed Computing", [
        ("Parallelism Fundamentals", C1, 2),
        ("Parallel Decomposition", C1, 1),
        ("Communication and Coordination", C1, 1),
        ("Parallel Algorithms, Analysis, and Programming", C2, 3),
        ("Parallel Architecture", C2, 1),
        ("Parallel Performance", EL, 0),
        ("Distributed Systems", EL, 0),
        ("Cloud Computing", EL, 0),
        ("Formal Models and Semantics", EL, 0),
    ]),
    ("PL", "Programming Languages", [
        ("Object-Oriented Programming", C1, 4),
        ("Functional Programming", C1, 3),
        ("Event-Driven and Reactive Programming", C1, 2),
        ("Basic Type Systems", C2, 1),
        ("Program Representation", C2, 1),
        ("Language Translation and Execution", C2, 3),
        ("Syntax Analysis", EL, 0),
        ("Compiler Semantic Analysis", EL, 0),
        ("Code Generation", EL, 0),
        ("Runtime Systems", EL, 0),
        ("Static Analysis", EL, 0),
        ("Advanced Programming Constructs", EL, 0),
        ("Concurrency and Parallelism", EL, 0),
        ("Type Systems", EL, 0),
        ("Formal Semantics", EL, 0),
        ("Language Pragmatics", EL, 0),
        ("Logic Programming", EL, 0),
    ]),
    ("SDF", "Software Development Fundamentals", [
        ("Algorithms and Design", C1, 11),
        ("Fundamental Programming Concepts", C1, 10),
        ("Fundamental Data Structures", C1, 12),
        ("Development Methods", C1, 10),
    ]),
    ("SE", "Software Engineering", [
        ("Software Processes", C1, 2),
        ("Software Project Management", C2, 2),
        ("Tools and Environments", C1, 2),
        ("Requirements Engineering", C2, 1),
        ("Software Design", C1, 3),
        ("Software Construction", C2, 2),
        ("Software Verification and Validation", C2, 3),
        ("Software Evolution", C2, 1),
        ("Formal Methods", EL, 0),
        ("Software Reliability", C2, 1),
    ]),
    ("SF", "Systems Fundamentals", [
        ("Computational Paradigms", C1, 3),
        ("Cross-Layer Communications", C1, 3),
        ("State and State Machines", C1, 6),
        ("Parallelism", C1, 3),
        ("Evaluation", C1, 3),
        ("Resource Allocation and Scheduling", C2, 2),
        ("Proximity", C2, 3),
        ("Virtualization and Isolation", C2, 2),
        ("Reliability through Redundancy", C2, 2),
        ("Quantitative Evaluation", EL, 0),
    ]),
    ("SP", "Social Issues and Professional Practice", [
        ("Social Context", C1, 1),
        ("Analytical Tools", C1, 2),
        ("Professional Ethics", C1, 2),
        ("Intellectual Property", C1, 2),
        ("Privacy and Civil Liberties", C1, 2),
        ("Professional Communication", C1, 1),
        ("Sustainability", C1, 1),
        ("History", EL, 0),
        ("Economies of Computing", EL, 0),
        ("Security Policies, Laws and Computer Crimes", EL, 0),
    ]),
]

# Procedural completion templates.  Applied to units without hand-encoded
# topics so every knowledge unit carries a realistic topic list and all
# units carry learning outcomes, bringing the ontology to CS13's reported
# ≈3000 entries (DESIGN.md §2).
_TOPIC_TEMPLATES = [
    "Foundational concepts of {ku}",
    "Terminology and definitions in {ku}",
    "Representative techniques for {ku}",
    "Core models underlying {ku}",
    "Practical methods and tools for {ku}",
    "Evaluation criteria in {ku}",
    "Common pitfalls and limitations in {ku}",
    "Applications and case studies of {ku}",
    "Relationship of {ku} to adjacent knowledge areas",
    "Current practice and trends in {ku}",
]

_OUTCOME_TEMPLATES: list[tuple[str, BloomLevel]] = [
    ("Define the main concepts of {topic}. [Familiarity]", BloomLevel.FAMILIARITY),
    ("Explain {topic} and illustrate it with an example. [Familiarity]", BloomLevel.FAMILIARITY),
    ("Identify situations where {topic} applies. [Familiarity]", BloomLevel.FAMILIARITY),
    ("Apply {topic} to solve a representative problem. [Usage]", BloomLevel.USAGE),
    ("Implement a program that demonstrates {topic}. [Usage]", BloomLevel.USAGE),
    ("Use appropriate tools to work with {topic}. [Usage]", BloomLevel.USAGE),
    ("Analyze trade-offs involved in {topic}. [Assessment]", BloomLevel.ASSESSMENT),
    ("Evaluate alternative approaches to {topic}. [Assessment]", BloomLevel.ASSESSMENT),
]


def _stable_hash(text: str) -> int:
    """Deterministic (process-independent) string hash for sizing choices."""
    h = 2166136261
    for ch in text:
        h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return h


def _lower_topic(label: str) -> str:
    """Topic label reshaped to fit inside an outcome sentence."""
    text = label.split(":")[0].strip()
    if text and text[0].isupper() and not text.isupper() and " " in text:
        first, rest = text.split(" ", 1)
        if first.lower() not in ("amdahl's", "flynn's", "graham's"):
            text = first.lower() + " " + rest
    return text.rstrip(".")


def build() -> Ontology:
    """Construct and validate the CS13 ontology (~3000 entries)."""
    onto = Ontology(
        NAME,
        "ACM/IEEE Computer Science Curricula 2013 — Body of Knowledge",
    )
    for code, area_label, units in _AREAS:
        area_key = f"{NAME}/{code}"
        onto.add(area_key, area_label, NodeKind.AREA, code=code)
        for index, (unit_label, tier, hours) in enumerate(units, start=1):
            unit_key = f"{area_key}/{code}.{index}"
            onto.add(
                unit_key, unit_label, NodeKind.UNIT, area_key,
                tier=tier, hours=float(hours),
            )
            hand = _HAND_TOPICS.get((code, unit_label))
            if hand is not None:
                topics = list(hand)
            else:
                # Deterministic 6-10 template topics per remaining unit.
                n = 6 + _stable_hash(unit_key) % 5
                topics = [
                    _TOPIC_TEMPLATES[i].format(ku=unit_label.lower())
                    for i in range(n)
                ]
            topic_keys = []
            for t_index, topic_label in enumerate(topics, start=1):
                topic_key = f"{unit_key}/t{t_index}"
                onto.add(
                    topic_key, topic_label, NodeKind.TOPIC, unit_key, tier=tier
                )
                topic_keys.append((topic_key, topic_label))
            # Learning outcomes: one or two per topic, cycling through the
            # three CS13 mastery levels deterministically.
            o_index = 1
            for t_offset, (_, topic_label) in enumerate(topic_keys):
                per_topic = 1 + (_stable_hash(unit_key + topic_label) % 2)
                for j in range(per_topic):
                    template, level = _OUTCOME_TEMPLATES[
                        (t_offset + j) % len(_OUTCOME_TEMPLATES)
                    ]
                    onto.add(
                        f"{unit_key}/o{o_index}",
                        template.format(topic=_lower_topic(topic_label)),
                        NodeKind.LEARNING_OUTCOME,
                        unit_key,
                        tier=tier,
                        bloom=level,
                    )
                    o_index += 1
    onto.validate()
    return onto


def topic_key(code: str, unit_label: str, topic_label: str) -> str:
    """Resolve the key of a hand-encoded topic from its labels.

    Raises ``KeyError`` if the (area, unit) pair is not hand-encoded or the
    topic label is absent — corpus definitions use this so typos fail fast.
    """
    for area_code, _, units in _AREAS:
        if area_code != code:
            continue
        for index, (label, _, _) in enumerate(units, start=1):
            if label == unit_label:
                hand = _HAND_TOPICS.get((code, unit_label))
                if hand is None:
                    raise KeyError(
                        f"unit {code}/{unit_label!r} has no hand-encoded topics"
                    )
                try:
                    position = hand.index(topic_label) + 1
                except ValueError:
                    raise KeyError(
                        f"unit {code}/{unit_label!r} has no topic {topic_label!r}"
                    ) from None
                return f"{NAME}/{code}/{code}.{index}/t{position}"
        raise KeyError(f"area {code!r} has no unit {unit_label!r}")
    raise KeyError(f"no area with code {code!r}")


def unit_key(code: str, unit_label: str) -> str:
    """Resolve the key of a knowledge unit from its labels."""
    for area_code, _, units in _AREAS:
        if area_code != code:
            continue
        for index, (label, _, _) in enumerate(units, start=1):
            if label == unit_label:
                return f"{NAME}/{code}/{code}.{index}"
        raise KeyError(f"area {code!r} has no unit {unit_label!r}")
    raise KeyError(f"no area with code {code!r}")
