"""TF-IDF keyword extraction — metadata assist for the Figure 1a form.

CAR-CS "pairs materials with properly curated metadata"; extracting the
most distinctive terms of a description gives the curator tag candidates
for free (the same economy argument as the classification recommender).
Scores are corpus-relative TF-IDF, so generic course words rank low even
before the stopword list removes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .vectorize import TfidfVectorizer, preprocess


@dataclass(frozen=True)
class Keyword:
    term: str            # the stemmed vocabulary term
    surface: str         # a representative un-stemmed form from the text
    score: float


class KeywordExtractor:
    """Fit on a corpus; extract per-document distinctive terms."""

    def __init__(self, *, max_keywords: int = 8, min_score: float = 0.05):
        self.max_keywords = max_keywords
        self.min_score = min_score
        self._vectorizer = TfidfVectorizer(min_df=1, sublinear_tf=True)
        self._fitted = False

    def fit(self, corpus: Sequence[str]) -> "KeywordExtractor":
        if not corpus:
            raise ValueError("cannot fit on an empty corpus")
        self._vectorizer.fit(corpus)
        self._fitted = True
        return self

    def _surface_forms(self, text: str) -> dict[str, str]:
        """Map stem -> first un-stemmed surface form seen in the text."""
        from .stem import stem_tokens
        from .stopwords import remove_stopwords
        from .tokenize import tokenize

        raw = remove_stopwords(tokenize(text))
        stems = stem_tokens(raw)
        surfaces: dict[str, str] = {}
        for stemmed, surface in zip(stems, raw):
            surfaces.setdefault(stemmed, surface)
        return surfaces

    def extract(self, text: str) -> list[Keyword]:
        """Keywords of one document, highest TF-IDF first."""
        if not self._fitted:
            raise RuntimeError("extractor is not fitted")
        vocabulary = self._vectorizer.vocabulary
        assert vocabulary is not None
        row = self._vectorizer.transform([text])[0]
        surfaces = self._surface_forms(text)
        terms = vocabulary.tokens()
        order = np.argsort(-row, kind="stable")
        out: list[Keyword] = []
        for idx in order[: self.max_keywords * 3]:
            score = float(row[idx])
            if score < self.min_score:
                break
            term = terms[int(idx)]
            out.append(
                Keyword(
                    term=term,
                    surface=surfaces.get(term, term),
                    score=score,
                )
            )
            if len(out) >= self.max_keywords:
                break
        return out


def suggest_tags(
    corpus: Sequence[str], text: str, *, top: int = 5
) -> list[str]:
    """One-call convenience: tag candidates for ``text`` given a corpus."""
    extractor = KeywordExtractor(max_keywords=top).fit(list(corpus) + [text])
    return [kw.surface.lower() for kw in extractor.extract(text)]
