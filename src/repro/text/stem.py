"""Porter stemming algorithm (Porter, 1980), implemented from scratch.

Used to conflate morphological variants ("schedulers" / "scheduling" /
"scheduled") before vectorization, which matters on the short texts
CAR-CS indexes.  This is the classic five-step algorithm; the reference
behaviour is the original paper's, including its well-known quirks
(e.g. ``agreed -> agre``).
"""

from __future__ import annotations

_VOWELS = set("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The Porter 'measure' m: number of VC sequences in C?(VC){m}V?."""
    m = 0
    i = 0
    n = len(stem)
    # skip initial consonants
    while i < n and _is_consonant(stem, i):
        i += 1
    while i < n:
        # vowels
        while i < n and not _is_consonant(stem, i):
            i += 1
        if i >= n:
            break
        # consonants
        while i < n and _is_consonant(stem, i):
            i += 1
        m += 1
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """*o: stem ends cvc where the final c is not w, x or y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace(word: str, suffix: str, replacement: str, m_min: int) -> str | None:
    """If word ends with suffix and measure(stem) > m_min, replace it."""
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > m_min:
        return stem + replacement
    return word  # suffix matched but condition failed: stop this step


def stem(word: str) -> str:
    """Return the Porter stem of ``word`` (expected lowercase)."""
    if len(word) <= 2:
        return word
    w = word

    # Step 1a
    if w.endswith("sses"):
        w = w[:-2]
    elif w.endswith("ies"):
        w = w[:-2]
    elif w.endswith("ss"):
        pass
    elif w.endswith("s"):
        w = w[:-1]

    # Step 1b
    step1b_extra = False
    if w.endswith("eed"):
        stem_ = w[:-3]
        if _measure(stem_) > 0:
            w = w[:-1]
    elif w.endswith("ed"):
        stem_ = w[:-2]
        if _contains_vowel(stem_):
            w = stem_
            step1b_extra = True
    elif w.endswith("ing"):
        stem_ = w[:-3]
        if _contains_vowel(stem_):
            w = stem_
            step1b_extra = True
    if step1b_extra:
        if w.endswith(("at", "bl", "iz")):
            w += "e"
        elif _ends_double_consonant(w) and w[-1] not in "lsz":
            w = w[:-1]
        elif _measure(w) == 1 and _ends_cvc(w):
            w += "e"

    # Step 1c
    if w.endswith("y") and _contains_vowel(w[:-1]):
        w = w[:-1] + "i"

    # Step 2
    step2 = [
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
        ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
        ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
        ("biliti", "ble"),
    ]
    for suffix, repl in step2:
        if w.endswith(suffix):
            result = _replace(w, suffix, repl, 0)
            if result is not None:
                w = result
            break

    # Step 3
    step3 = [
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    ]
    for suffix, repl in step3:
        if w.endswith(suffix):
            result = _replace(w, suffix, repl, 0)
            if result is not None:
                w = result
            break

    # Step 4
    step4 = [
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ]
    for suffix in step4:
        if w.endswith(suffix):
            stem_ = w[: len(w) - len(suffix)]
            if _measure(stem_) > 1:
                w = stem_
            break
    else:
        if w.endswith("ion"):
            stem_ = w[:-3]
            if _measure(stem_) > 1 and stem_ and stem_[-1] in "st":
                w = stem_

    # Step 5a
    if w.endswith("e"):
        stem_ = w[:-1]
        m = _measure(stem_)
        if m > 1 or (m == 1 and not _ends_cvc(stem_)):
            w = stem_

    # Step 5b
    if _measure(w) > 1 and _ends_double_consonant(w) and w.endswith("l"):
        w = w[:-1]

    return w


def stem_tokens(tokens: list[str]) -> list[str]:
    """Stem each token; hyphenated compounds are stemmed per component."""
    out = []
    for token in tokens:
        if "-" in token:
            out.append("-".join(stem(part) for part in token.split("-")))
        else:
            out.append(stem(token))
    return out
