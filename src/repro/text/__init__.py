"""From-scratch NLP substrate (tokenize/stem/TF-IDF/cosine/kNN/NB).

Replaces the scikit-learn / NLP tooling the paper's auto-classification
feature would lean on; only NumPy is used underneath.
"""

from .keywords import Keyword, KeywordExtractor, suggest_tags
from .knn import KnnClassifier, KnnSuggestion
from .naive_bayes import NaiveBayesClassifier, NbSuggestion
from .similarity import cosine, cosine_matrix, top_k_neighbors
from .stem import stem, stem_tokens
from .stopwords import STOPWORDS, is_stopword, remove_stopwords
from .tokenize import ngrams, sentence_split, tokenize
from .vectorize import (
    TfidfVectorizer,
    Vocabulary,
    count_matrix,
    l2_normalize,
    preprocess,
    tfidf_weights,
)

__all__ = [
    "Keyword",
    "KeywordExtractor",
    "KnnClassifier",
    "suggest_tags",
    "KnnSuggestion",
    "NaiveBayesClassifier",
    "NbSuggestion",
    "STOPWORDS",
    "TfidfVectorizer",
    "Vocabulary",
    "cosine",
    "cosine_matrix",
    "count_matrix",
    "is_stopword",
    "l2_normalize",
    "ngrams",
    "preprocess",
    "remove_stopwords",
    "sentence_split",
    "stem",
    "stem_tokens",
    "tfidf_weights",
    "tokenize",
    "top_k_neighbors",
]
