"""k-nearest-neighbour multi-label classifier over TF-IDF vectors.

Backs the paper's envisioned recommendation feature: "once more material
is classified using the system, we should be able to suggest
classifications to save time for the user" (Conclusion).  Labels here are
ontology entry keys; a material can carry many, so prediction is
multi-label: each neighbour votes, with votes weighted by cosine
similarity, and labels above a score threshold are suggested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .similarity import cosine_matrix, top_k_neighbors


@dataclass
class KnnSuggestion:
    """One suggested label with its accumulated evidence."""

    label: str
    score: float
    supporters: tuple[int, ...]  # training-row indices that voted


class KnnClassifier:
    """Multi-label weighted kNN.

    Parameters
    ----------
    k:
        Number of neighbours consulted per query.
    threshold:
        Minimum normalized vote score (0..1) for a label to be suggested.
    """

    def __init__(self, k: int = 5, threshold: float = 0.25) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.k = k
        self.threshold = threshold
        self._X: np.ndarray | None = None
        self._labels: list[frozenset[str]] = []

    def fit(
        self, X: np.ndarray, labels: Sequence[Sequence[str]]
    ) -> "KnnClassifier":
        X = np.asarray(X, dtype=np.float64)
        if X.shape[0] != len(labels):
            raise ValueError("X rows and labels length differ")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        self._X = X
        self._labels = [frozenset(ls) for ls in labels]
        return self

    def suggest(self, queries: np.ndarray) -> list[list[KnnSuggestion]]:
        """Per query row: suggestions sorted by descending score."""
        if self._X is None:
            raise RuntimeError("classifier is not fitted")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        sims = cosine_matrix(queries, self._X)
        neighbor_lists = top_k_neighbors(sims, self.k)
        out: list[list[KnnSuggestion]] = []
        for neighbors in neighbor_lists:
            votes: dict[str, float] = {}
            supporters: dict[str, list[int]] = {}
            total = sum(max(s, 0.0) for _, s in neighbors)
            for idx, sim in neighbors:
                weight = max(sim, 0.0)
                if weight == 0.0:
                    continue
                for label in self._labels[idx]:
                    votes[label] = votes.get(label, 0.0) + weight
                    supporters.setdefault(label, []).append(idx)
            suggestions = []
            if total > 0:
                for label, score in votes.items():
                    norm = score / total
                    if norm >= self.threshold:
                        suggestions.append(
                            KnnSuggestion(
                                label=label,
                                score=norm,
                                supporters=tuple(supporters[label]),
                            )
                        )
            suggestions.sort(key=lambda s: (-s.score, s.label))
            out.append(suggestions)
        return out

    def predict_labels(self, queries: np.ndarray) -> list[frozenset[str]]:
        """Suggested label sets only (scores dropped)."""
        return [
            frozenset(s.label for s in suggestions)
            for suggestions in self.suggest(queries)
        ]
