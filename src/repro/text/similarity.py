"""Dense cosine-similarity kernels.

A single BLAS-backed matrix multiply over L2-normalized rows, per the
HPC guide's "vectorize the hot loop" rule; no per-pair Python loops.
"""

from __future__ import annotations

import numpy as np

from .vectorize import l2_normalize


def cosine_matrix(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Pairwise cosine similarity between rows of ``a`` and rows of ``b``.

    With ``b=None`` computes the symmetric self-similarity of ``a``.
    Rows need not be pre-normalized.  Zero rows yield zero similarity.
    """
    an = l2_normalize(np.asarray(a, dtype=np.float64))
    bn = an if b is None else l2_normalize(np.asarray(b, dtype=np.float64))
    sims = an @ bn.T
    # Guard against tiny FP excursions outside [-1, 1].
    np.clip(sims, -1.0, 1.0, out=sims)
    return sims


def cosine(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 if either is zero)."""
    u = np.asarray(u, dtype=np.float64).ravel()
    v = np.asarray(v, dtype=np.float64).ravel()
    nu, nv = np.linalg.norm(u), np.linalg.norm(v)
    if nu == 0.0 or nv == 0.0:
        return 0.0
    return float(np.clip(np.dot(u, v) / (nu * nv), -1.0, 1.0))


def top_k_neighbors(
    sims: np.ndarray, k: int, *, exclude_self: bool = False
) -> list[list[tuple[int, float]]]:
    """For each row of a similarity matrix, its k most similar columns.

    Returns, per row, a list of ``(column index, similarity)`` sorted by
    descending similarity.  ``exclude_self`` skips the diagonal (for
    self-similarity matrices).
    """
    sims = np.asarray(sims, dtype=np.float64)
    n_rows, n_cols = sims.shape
    if exclude_self and n_rows != n_cols:
        raise ValueError("exclude_self requires a square matrix")
    work = sims.copy()
    if exclude_self:
        np.fill_diagonal(work, -np.inf)
    k = min(k, n_cols - (1 if exclude_self else 0))
    if k <= 0:
        return [[] for _ in range(n_rows)]
    # argpartition then sort the slice: O(n + k log k) per row.
    part = np.argpartition(-work, k - 1, axis=1)[:, :k]
    out: list[list[tuple[int, float]]] = []
    for row in range(n_rows):
        cols = part[row]
        order = np.argsort(-work[row, cols], kind="stable")
        out.append(
            [(int(cols[j]), float(work[row, cols[j]])) for j in order]
        )
    return out
