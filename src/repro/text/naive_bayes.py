"""Multinomial naive Bayes for one-vs-rest multi-label suggestion.

The second of the two from-scratch learners behind the classification
recommender (the other is :mod:`repro.text.knn`).  One binary multinomial
NB model is trained per label over raw term counts; log-space throughout,
Laplace smoothing, fully vectorised across labels: the per-label
log-likelihood matrix is a single (labels × vocabulary) array and scoring
a batch of documents is one matrix multiply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass
class NbSuggestion:
    label: str
    log_odds: float


class NaiveBayesClassifier:
    """One-vs-rest multinomial naive Bayes over count vectors.

    Parameters
    ----------
    alpha:
        Laplace/Lidstone smoothing constant.
    min_label_count:
        Labels seen on fewer than this many training documents are not
        modelled (too little evidence to suggest responsibly).
    """

    def __init__(self, alpha: float = 1.0, min_label_count: int = 2) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be > 0")
        self.alpha = alpha
        self.min_label_count = min_label_count
        self.labels_: list[str] = []
        self._log_like_pos: np.ndarray | None = None  # (L, V)
        self._log_like_neg: np.ndarray | None = None  # (L, V)
        self._log_prior: np.ndarray | None = None  # (L, 2) [neg, pos]

    def fit(
        self, counts: np.ndarray, labels: Sequence[Sequence[str]]
    ) -> "NaiveBayesClassifier":
        counts = np.asarray(counts, dtype=np.float64)
        n_docs, vocab = counts.shape
        if n_docs != len(labels):
            raise ValueError("counts rows and labels length differ")
        label_sets = [frozenset(ls) for ls in labels]
        tally: dict[str, int] = {}
        for ls in label_sets:
            for label in ls:
                tally[label] = tally.get(label, 0) + 1
        self.labels_ = sorted(
            l for l, c in tally.items() if c >= self.min_label_count
        )
        L = len(self.labels_)
        if L == 0:
            raise ValueError(
                "no label meets min_label_count; lower the threshold"
            )
        membership = np.zeros((L, n_docs), dtype=bool)
        for li, label in enumerate(self.labels_):
            membership[li] = [label in ls for ls in label_sets]

        # Vectorised over labels: positive/negative class term totals.
        pos_counts = membership.astype(np.float64) @ counts       # (L, V)
        total = counts.sum(axis=0)                                # (V,)
        neg_counts = total[None, :] - pos_counts                  # (L, V)

        def _log_like(c: np.ndarray) -> np.ndarray:
            smoothed = c + self.alpha
            return np.log(smoothed / smoothed.sum(axis=1, keepdims=True))

        self._log_like_pos = _log_like(pos_counts)
        self._log_like_neg = _log_like(neg_counts)

        n_pos = membership.sum(axis=1).astype(np.float64)
        prior_pos = (n_pos + self.alpha) / (n_docs + 2 * self.alpha)
        self._log_prior = np.stack(
            [np.log(1.0 - prior_pos), np.log(prior_pos)], axis=1
        )
        return self

    def log_odds(self, counts: np.ndarray) -> np.ndarray:
        """(n_docs, n_labels) log P(pos|doc) - log P(neg|doc)."""
        if self._log_like_pos is None:
            raise RuntimeError("classifier is not fitted")
        counts = np.atleast_2d(np.asarray(counts, dtype=np.float64))
        pos = counts @ self._log_like_pos.T + self._log_prior[:, 1]
        neg = counts @ self._log_like_neg.T + self._log_prior[:, 0]
        return pos - neg

    def suggest(
        self, counts: np.ndarray, *, top: int = 10
    ) -> list[list[NbSuggestion]]:
        """Per document: the labels with positive log-odds, best first."""
        odds = self.log_odds(counts)
        out: list[list[NbSuggestion]] = []
        for row in odds:
            pairs = [
                NbSuggestion(self.labels_[i], float(row[i]))
                for i in np.argsort(-row)[:top]
                if row[i] > 0.0
            ]
            out.append(pairs)
        return out

    def predict_labels(self, counts: np.ndarray) -> list[frozenset[str]]:
        return [
            frozenset(s.label for s in suggestions)
            for suggestions in self.suggest(counts, top=len(self.labels_))
        ]
