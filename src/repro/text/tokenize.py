"""Tokenization for material descriptions and ontology labels.

The search and recommendation paths of CAR-CS work over short technical
English: assignment titles/descriptions and curriculum entry labels.  The
tokenizer therefore keeps embedded hyphens and apostrophes (``divide-and-
conquer``, ``Amdahl's``) and splits on everything else.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

# Words: letters/digits, with internal hyphens or apostrophes kept intact.
_WORD = re.compile(r"[A-Za-z0-9]+(?:['\-][A-Za-z0-9]+)*")


def tokenize(text: str, *, lowercase: bool = True) -> list[str]:
    """Split ``text`` into word tokens.

    >>> tokenize("Amdahl's Law & divide-and-conquer (MPI)!")
    ["amdahl's", 'law', 'divide-and-conquer', 'mpi']
    """
    tokens = _WORD.findall(text)
    if lowercase:
        tokens = [t.lower() for t in tokens]
    return tokens


def ngrams(tokens: list[str], n: int) -> Iterator[tuple[str, ...]]:
    """Sliding n-grams over a token list (n >= 1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i : i + n])


def sentence_split(text: str) -> list[str]:
    """Very light sentence splitter for description snippets."""
    parts = re.split(r"(?<=[.!?])\s+", text.strip())
    return [p for p in parts if p]
