"""Vocabulary building and TF-IDF vectorization (vectorised NumPy).

This replaces the scikit-learn ``TfidfVectorizer`` the paper's envisioned
auto-classification would normally use.  Following the HPC guides'
optimization advice, the document-term matrix is assembled once into
dense NumPy arrays (the corpora here are small and dense enough that a
sparse representation buys nothing, and dense rows keep the cosine
kernel a single matrix multiply); all per-document Python loops are
confined to tokenization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .stem import stem_tokens
from .stopwords import remove_stopwords
from .tokenize import tokenize


def preprocess(text: str, *, stemming: bool = True) -> list[str]:
    """tokenize -> stopword removal -> (optional) stemming."""
    tokens = remove_stopwords(tokenize(text))
    if stemming:
        tokens = stem_tokens(tokens)
    return tokens


@dataclass(frozen=True)
class Vocabulary:
    """An immutable token -> column-index mapping."""

    index: dict[str, int]

    @classmethod
    def build(
        cls,
        documents: Iterable[Sequence[str]],
        *,
        min_df: int = 1,
        max_df_ratio: float = 1.0,
    ) -> "Vocabulary":
        """Build from tokenized documents.

        ``min_df`` drops tokens in fewer than that many documents;
        ``max_df_ratio`` drops tokens in more than that fraction (both
        standard levers against hapaxes and corpus-wide noise).
        """
        docs = [set(d) for d in documents]
        n = len(docs)
        df: dict[str, int] = {}
        for doc in docs:
            for token in doc:
                df[token] = df.get(token, 0) + 1
        max_df = max_df_ratio * n
        kept = sorted(t for t, c in df.items() if c >= min_df and c <= max_df)
        return cls(index={t: i for i, t in enumerate(kept)})

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, token: str) -> bool:
        return token in self.index

    def tokens(self) -> list[str]:
        out = [""] * len(self.index)
        for token, i in self.index.items():
            out[i] = token
        return out


def count_matrix(
    documents: Sequence[Sequence[str]], vocabulary: Vocabulary
) -> np.ndarray:
    """Dense (n_docs, n_terms) raw term-count matrix."""
    n, m = len(documents), len(vocabulary)
    counts = np.zeros((n, m), dtype=np.float64)
    index = vocabulary.index
    for row, doc in enumerate(documents):
        for token in doc:
            col = index.get(token)
            if col is not None:
                counts[row, col] += 1.0
    return counts


def tfidf_weights(counts: np.ndarray, *, smooth: bool = True) -> np.ndarray:
    """Per-term IDF weights from a count matrix.

    Uses the smoothed formulation ``log((1+n)/(1+df)) + 1`` (the
    scikit-learn convention) so terms present in every document still
    carry weight 1 rather than 0.
    """
    n = counts.shape[0]
    df = np.count_nonzero(counts, axis=0).astype(np.float64)
    if smooth:
        return np.log((1.0 + n) / (1.0 + df)) + 1.0
    with np.errstate(divide="ignore"):
        idf = np.log(n / df) + 1.0
    idf[~np.isfinite(idf)] = 0.0
    return idf


def l2_normalize(matrix: np.ndarray) -> np.ndarray:
    """Row-wise L2 normalization; zero rows stay zero."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    # In-place-friendly: avoid dividing by zero without branching per row.
    safe = np.where(norms == 0.0, 1.0, norms)
    return matrix / safe


class TfidfVectorizer:
    """Fit/transform TF-IDF pipeline over raw strings.

    >>> v = TfidfVectorizer()
    >>> X = v.fit_transform(["parallel loops with OpenMP",
    ...                      "message passing with MPI"])
    >>> X.shape[0]
    2
    """

    def __init__(
        self,
        *,
        stemming: bool = True,
        min_df: int = 1,
        max_df_ratio: float = 1.0,
        sublinear_tf: bool = False,
    ) -> None:
        self.stemming = stemming
        self.min_df = min_df
        self.max_df_ratio = max_df_ratio
        self.sublinear_tf = sublinear_tf
        self.vocabulary: Vocabulary | None = None
        self.idf: np.ndarray | None = None

    def _tokenize_all(self, texts: Sequence[str]) -> list[list[str]]:
        return [preprocess(t, stemming=self.stemming) for t in texts]

    def fit(self, texts: Sequence[str]) -> "TfidfVectorizer":
        docs = self._tokenize_all(texts)
        self.vocabulary = Vocabulary.build(
            docs, min_df=self.min_df, max_df_ratio=self.max_df_ratio
        )
        counts = count_matrix(docs, self.vocabulary)
        self.idf = tfidf_weights(counts)
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        if self.vocabulary is None or self.idf is None:
            raise RuntimeError("vectorizer is not fitted")
        docs = self._tokenize_all(texts)
        counts = count_matrix(docs, self.vocabulary)
        if self.sublinear_tf:
            nz = counts > 0
            counts[nz] = 1.0 + np.log(counts[nz])
        return l2_normalize(counts * self.idf)

    def fit_transform(self, texts: Sequence[str]) -> np.ndarray:
        return self.fit(texts).transform(texts)
