"""``carcs`` — command-line front end to the CAR-CS system.

Stands in for the prototype's web UI when driving the system from a
terminal or scripts.  Every subcommand operates on either the built-in
seeded repository (the paper's prototype state) or a JSON snapshot
produced by ``carcs export``.

Examples::

    carcs stats
    carcs coverage --collection itcs3145 --ontology PDC12
    carcs similarity --left nifty --right peachy --threshold 2
    carcs search "monte carlo fire" --limit 5
    carcs gaps --reference nifty --candidate peachy
    carcs recommend "parallel loops over an image with OpenMP"
    carcs plan --ontology PDC12 --tier core
    carcs diff PDC12 PDC19
    carcs explain materials --eq collection=nifty --order title
    carcs explain materials --range year:2010:2020 --order year --limit 5
    carcs trace coverage --collection itcs3145 --ontology PDC12
    carcs trace --id 7f3a... --url http://127.0.0.1:8088   # fleet trace
    carcs top --url http://127.0.0.1:8088 --interval 2     # live ops view
    carcs export snapshot.json ; carcs --snapshot snapshot.json stats
    carcs snapshot ./storage            # durable dir: checkpoint + WAL
    carcs recover ./storage             # replay WAL tail, report, stats
    carcs serve --primary --repl-port 9090
    carcs serve --replica 127.0.0.1:9090 --port 8081
    carcs serve --router --primary-url http://127.0.0.1:8080 \
        --replica-url http://127.0.0.1:8081
    carcs serve --workers 2             # drain jobs beside the server
    carcs jobs ./storage --enqueue-classify --drain
    carcs worker ./storage              # external worker pool
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.analysis import compare_communities, core_targets, plan_course
from repro.core.coverage import compute_coverage
from repro.core.ontology import Tier
from repro.core.recommend import HybridRecommender
from repro.core.repository import Repository
from repro.core.search import SearchEngine, SearchFilters
from repro.core.similarity import isolated_materials, similarity_graph
from repro.corpus.seed import collection_ids, seed_all
from repro.ontologies import load
from repro.ontologies.diff import diff_ontologies
from repro.viz import tree_render


def _open_repository(args: argparse.Namespace) -> Repository:
    if args.snapshot:
        from repro.core.persist import load_json

        return load_json(args.snapshot)
    return seed_all()


def cmd_stats(repo: Repository, args: argparse.Namespace) -> int:
    print(f"collections: {', '.join(repo.collections()) or '(none)'}")
    for name, onto in sorted(repo.ontologies.items()):
        print(f"ontology {name}: {len(onto)} entries, "
              f"{len(onto.areas())} areas")
    for key, value in sorted(repo.stats().items()):
        if value:
            print(f"{key}: {value}")
    return 0


def cmd_coverage(repo: Repository, args: argparse.Namespace) -> int:
    onto = repo.ontology(args.ontology)
    coverage = compute_coverage(repo, args.ontology, collection=args.collection)
    if args.tree:
        print(tree_render.render_text(
            coverage.tree(onto), max_depth=args.depth
        ))
    else:
        print(f"{args.collection or 'all'} vs {args.ontology} "
              f"({coverage.n_materials} materials):")
        for area, count in coverage.area_ranking(onto):
            if count or args.all:
                print(f"  {area.code or area.label[:5]:6s} "
                      f"{area.label:48s} {count:4d}")
    return 0


def cmd_similarity(repo: Repository, args: argparse.Namespace) -> int:
    graph = similarity_graph(
        repo,
        collection_ids(repo, args.left),
        collection_ids(repo, args.right),
        threshold=args.threshold,
        left_group=args.left,
        right_group=args.right,
    )
    print(f"nodes={graph.number_of_nodes()} edges={graph.number_of_edges()}")
    print(f"isolated {args.left}: "
          f"{len(isolated_materials(graph, args.left))}")
    print(f"isolated {args.right}: "
          f"{len(isolated_materials(graph, args.right))}")
    for u, v, data in sorted(
        graph.edges(data=True), key=lambda e: -e[2]["shared"]
    ):
        print(f"  {graph.nodes[u]['title']}  <->  {graph.nodes[v]['title']} "
              f"(shared={data['shared']})")
    return 0


def cmd_search(repo: Repository, args: argparse.Namespace) -> int:
    """Search with the facet query language, e.g.
    ``carcs search "language:python under:PDC12/PROG monte carlo"``."""
    from dataclasses import replace

    from repro.core.query_language import QuerySyntaxError, parse_query

    engine = SearchEngine(repo)
    try:
        parsed = parse_query(args.query)
    except QuerySyntaxError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        return 2
    filters = parsed.filters
    if args.collection:
        filters = replace(
            filters, collections=filters.collections + (args.collection,)
        )
    if args.under:
        filters = replace(filters, under=filters.under + (args.under,))
    hits = engine.search(parsed.text, filters, limit=args.limit)
    if not hits:
        print("no results")
        return 1
    for hit in hits:
        print(f"{hit.score:5.2f}  [{hit.material.collection}] "
              f"{hit.material.title}")
    return 0


def cmd_gaps(repo: Repository, args: argparse.Namespace) -> int:
    comparison = compare_communities(
        repo, args.reference, args.candidate, args.ontology
    )
    print(comparison.format())
    return 0


def cmd_recommend(repo: Repository, args: argparse.Namespace) -> int:
    recommender = HybridRecommender(repo).fit()
    recs = recommender.recommend(args.text, args.selected or (), top=args.top)
    if not recs:
        print("no suggestions")
        return 1
    for rec in recs:
        print(f"{rec.score:5.2f}  {rec.key}")
    return 0


def cmd_plan(repo: Repository, args: argparse.Namespace) -> int:
    onto = repo.ontology(args.ontology)
    tiers = {
        "core": (Tier.CORE, Tier.CORE1),
        "core2": (Tier.CORE, Tier.CORE1, Tier.CORE2),
        "all": tuple(Tier),
    }[args.tier]
    plan = plan_course(
        repo, args.ontology, core_targets(onto, tiers),
        max_materials=args.max_materials,
    )
    print(plan.format(onto))
    return 0


def _explain_value(raw: str):
    """CLI literal -> column value: int/float when they parse, ``null``
    for None, anything else verbatim."""
    if raw == "null":
        return None
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def cmd_explain(repo: Repository, args: argparse.Namespace) -> int:
    """Build a query from the command line, run it, and print the plan
    the cost-based planner chose — estimated vs. actual rows per node,
    plus the table's declared indexes."""
    from repro.db import query as db_query
    from repro.db import render_plan
    from repro.db.errors import SchemaError

    try:
        q = db_query(repo.db, args.table)
        for spec in args.eq or ():
            column, sep, raw = spec.partition("=")
            if not sep:
                raise SystemExit(f"--eq expects COLUMN=VALUE, got {spec!r}")
            q = q.filter(**{column: _explain_value(raw)})
        for spec in args.range or ():
            parts = spec.split(":")
            if len(parts) != 3:
                raise SystemExit(
                    f"--range expects COLUMN:LOW:HIGH (empty = unbounded), "
                    f"got {spec!r}"
                )
            column, low, high = parts
            q = q.where_range(
                column,
                _explain_value(low) if low else None,
                _explain_value(high) if high else None,
            )
        for spec in args.prefix or ():
            column, sep, raw = spec.partition("=")
            if not sep:
                raise SystemExit(
                    f"--prefix expects COLUMN=PREFIX, got {spec!r}"
                )
            q = q.where_prefix(column, raw)
        if args.order:
            q = q.order_by(args.order, descending=args.desc)
        if args.limit is not None:
            q = q.limit(args.limit)
        if args.offset:
            q = q.offset(args.offset)
        report = q.explain()
    except SchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"table:   {report['table']}")
    print(f"plan:    {report['summary']}")
    print(f"rows:    {report['rows']} returned "
          f"(planner estimate {report['est_rows']:g})")
    indexes = repo.db.table(args.table).indexes()
    if indexes:
        rendered = ", ".join(
            f"{column} ({kind})" for column, kind in sorted(indexes.items())
        )
        print(f"indexes: {rendered}")
    print(render_plan(report["plan"]))
    return 0


def cmd_diff(repo: Repository, args: argparse.Namespace) -> int:
    diff = diff_ontologies(load(args.old), load(args.new))
    print(diff.format())
    return 0 if diff.is_empty() else 0


def cmd_export(repo: Repository, args: argparse.Namespace) -> int:
    from repro.core.persist import save_json

    path = save_json(repo, args.path)
    print(f"wrote {path}")
    return 0


def cmd_profile(repo: Repository, args: argparse.Namespace) -> int:
    from repro.analysis import collection_profile, entry_popularity

    for collection in (args.collections or repo.collections()):
        profile = collection_profile(repo, collection)
        sizes = profile["classification_sizes"]
        print(f"{collection}: {profile['materials']} materials "
              f"({profile['kinds']})")
        print(f"  entries/material: mean {sizes.mean:.1f}, "
              f"median {sizes.median:.0f}, max {sizes.maximum}")
        if profile["year_range"]:
            print(f"  years: {profile['year_range'][0]}-"
                  f"{profile['year_range'][1]}")
        if profile["languages"]:
            langs = ", ".join(
                f"{k} ({v})" for k, v in list(profile["languages"].items())[:5]
            )
            print(f"  languages: {langs}")
    print("\nhottest entries:")
    for onto in sorted(repo.ontologies):
        for key, n in entry_popularity(repo, onto, top=args.top):
            print(f"  {n:3d}  {key}")
    return 0


def cmd_report(repo: Repository, args: argparse.Namespace) -> int:
    from repro.viz.html_report import write_report

    path = write_report(repo, args.path)
    print(f"wrote {path}")
    return 0


def cmd_lint(repo: Repository, args: argparse.Namespace) -> int:
    from repro.analysis import lint_repository

    findings = lint_repository(repo, collection=args.collection)
    if not findings:
        print("clean — no classification issues found")
        return 0
    for finding in findings:
        print(f"[{finding.rule}] {finding.title}")
        print(f"    {finding.detail}")
    print(f"{len(findings)} finding(s)")
    return 1


def _fetch_json(url: str, timeout: float = 5.0):
    """GET ``url`` and decode the JSON body (stdlib only)."""
    import json
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def cmd_trace(args: argparse.Namespace) -> int:
    """Two modes sharing one renderer:

    * ``carcs trace <op>`` — run one repository operation fully traced
      in-process and pretty-print the span tree (wall/self/CPU per
      layer).
    * ``carcs trace --id TRACE_ID --url URL`` — fetch a trace from a
      running node.  Against the front tier this is the *stitched*
      fleet-wide tree (router → primary/replica → job segments, each
      hop labelled ``@process``); against a single node its local
      segments are stitched client-side.
    """
    from repro.obs import (
        MODE_ALL,
        get_tracer,
        render_text,
        render_tree,
        stitch_trace,
    )

    if args.id:
        base = args.url.rstrip("/")
        try:
            payload = _fetch_json(f"{base}/api/v2/traces/{args.id}")
        except Exception as exc:  # noqa: BLE001 — network CLI boundary
            print(f"could not fetch trace {args.id!r} from {base}: {exc}",
                  file=sys.stderr)
            return 1
        if "processes" not in payload:
            # A member node's local payload: stitch its segments here so
            # the single-node view renders identically.
            from urllib.parse import urlparse

            process = urlparse(base).netloc or base
            segments = payload.get("segments") or (
                [payload["root"]] if payload.get("root") else []
            )
            payload = stitch_trace(
                payload.get("trace_id", args.id),
                [(process, segment) for segment in segments],
            )
        print(render_tree(payload))
        return 0

    if not args.op:
        print("trace: either an operation or --id TRACE_ID is required",
              file=sys.stderr)
        return 2
    repo = _open_repository(args)
    tracer = get_tracer()
    tracer.configure(mode=MODE_ALL, slow_ms=args.slow_ms)
    with tracer.trace(f"cli.{args.op}") as root:
        if args.op == "search":
            engine = SearchEngine(repo)
            engine.search(args.query or "", SearchFilters(), limit=args.limit)
        elif args.op == "coverage":
            repo.coverage(args.ontology, collection=args.collection)
        elif args.op == "similarity":
            repo.similarity(
                collection_ids(repo, args.left),
                collection_ids(repo, args.right),
                left_group=args.left, right_group=args.right,
            )
        elif args.op == "recommend":
            repo.recommend(args.query or "parallel sorting", top=args.limit)
        else:
            repo.stats()
    record = tracer.store.get(root.trace_id)
    if record is None:  # pragma: no cover - mode=all always retains
        print("trace was not retained", file=sys.stderr)
        return 1
    print(render_text(record))
    return 0


def _fleet_members(base: str):
    """Resolve what ``carcs top`` watches: ``(router status | None,
    [(member name, base url), ...])``.

    Pointed at a front tier, ``/api/v1/fleet`` names the primary and
    every replica (with URLs); pointed at a single node — or when the
    fleet endpoint is unreachable — the URL itself is the one member.
    """
    try:
        fleet = _fetch_json(f"{base}/api/v1/fleet")
    except Exception:  # noqa: BLE001 — not a router; treat as one node
        return None, [("node", base)]
    members = []
    if fleet.get("primary_url"):
        members.append((fleet.get("primary", "primary"), fleet["primary_url"]))
    for replica in fleet.get("replicas", ()):
        if replica.get("url"):
            members.append((replica["name"], replica["url"]))
    if not members:
        members = [("node", base)]
    return fleet, members


def _top_cell(value, width: int, precision: int = 2) -> str:
    if value is None:
        return f"{'-':>{width}s}"
    return f"{value:>{width}.{precision}f}"


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal ops view over a fleet (or a single node).

    Each refresh makes one ``/api/v2/slo`` fetch per member — that
    payload already carries the burn-rate windows, queue depth and
    replication lag — and renders one row per member: request rate,
    p99 latency, availability, the availability/latency burn rates,
    queued jobs and replica lag.
    """
    import time as _time

    base = args.url.rstrip("/")
    clear = sys.stdout.isatty() and args.iterations != 1
    iteration = 0
    while True:
        fleet, members = _fleet_members(base)
        lines = []
        if fleet is not None:
            replicas = fleet.get("replicas", [])
            lines.append(
                f"router {fleet.get('name', 'router')}: "
                f"reads={fleet.get('reads', 0)} "
                f"writes={fleet.get('writes', 0)} "
                f"healthy={fleet.get('healthy_replicas', 0)}/{len(replicas)} "
                f"sessions={fleet.get('sessions', 0)} "
                f"primary_errors={fleet.get('primary_errors', 0)}"
            )
        lines.append(
            f"{'member':<14s} {'req/s':>8s} {'p99ms':>8s} {'avail':>8s} "
            f"{'burn:a':>8s} {'burn:l':>8s} {'queued':>7s} {'lag s':>8s} "
            f"{'up s':>9s}"
        )
        for name, url in members:
            try:
                slo = _fetch_json(f"{url.rstrip('/')}/api/v2/slo")
            except Exception as exc:  # noqa: BLE001 — keep rendering
                lines.append(f"{name:<14s} unreachable: {exc}")
                continue
            windows = slo.get("windows", {})
            window = windows.get(args.window)
            if window is None:
                window = next(iter(windows.values()), {})
            jobs = slo.get("jobs", {})
            replication = slo.get("replication", {})
            queued = (jobs.get("queued", 0) or 0) + (jobs.get("leased", 0) or 0)
            lines.append(
                f"{name:<14s} "
                f"{_top_cell(window.get('req_s'), 8)} "
                f"{_top_cell(window.get('p99_ms'), 8, 1)} "
                f"{_top_cell(window.get('availability'), 8, 4)} "
                f"{_top_cell(window.get('availability_burn'), 8)} "
                f"{_top_cell(window.get('latency_burn'), 8)} "
                f"{queued:>7d} "
                f"{_top_cell(replication.get('lag_seconds'), 8, 3)} "
                f"{_top_cell(slo.get('uptime_seconds'), 9, 1)}"
            )
        if clear:
            print("\x1b[2J\x1b[H", end="")
        print("\n".join(lines), flush=True)
        iteration += 1
        if args.iterations and iteration >= args.iterations:
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0
        if not clear:
            print()


def cmd_snapshot(repo: Repository, args: argparse.Namespace) -> int:
    """Persist the repository into a durable storage directory: write a
    full checkpoint snapshot and attach a WAL for further commits."""
    path = repo.db.attach(args.dir, wal_sync=args.wal_sync)
    print(f"checkpointed version {repo.db.version} to {path}")
    repo.db.close()
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Open a durable storage directory (no seeding — recovery must not
    depend on being able to rebuild state from code) and report what the
    snapshot restore + WAL replay did."""
    from repro.db import Database

    db = Database.open(args.dir)
    report = db.recovery_report
    assert report is not None
    print(f"snapshot version: {report['snapshot_version']}")
    print(f"frames replayed:  {report['frames_replayed']} "
          f"({report['ops_replayed']} ops)")
    if report["torn"]:
        print(f"torn WAL tail:    truncated {report['truncated_bytes']} bytes")
    else:
        print("torn WAL tail:    none")
    print(f"recovered version: {db.version}")
    if "materials" in db:
        repo = Repository(db)
        for key, value in sorted(repo.stats().items()):
            if value:
                print(f"{key}: {value}")
    db.close()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Run a standalone worker pool against a durable storage directory.

    The queue lives in the same database the server commits to, so a
    worker process started beside ``carcs serve`` (same directory)
    drains the jobs the API enqueues — and a worker killed mid-job is
    harmless: its lease expires and the job is leased out again.
    """
    import time

    from repro.db import Database
    from repro.jobs import JobQueue, WorkerPool, default_handlers

    db = Database.open(args.dir)
    if "materials" not in db:
        print(f"{args.dir} has no materials table — nothing to classify",
              file=sys.stderr)
        db.close()
        return 1
    repo = Repository(db)
    queue = JobQueue(db)
    pool = WorkerPool(
        queue, default_handlers(repo),
        size=args.threads, name="cli",
    ).start()
    counts = queue.counts()
    print(f"worker pool ({args.threads} threads) on {args.dir}: "
          f"{counts['queued']} queued, {counts['leased']} leased "
          f"(Ctrl-C to stop)")
    try:
        if args.drain:
            pool.drain(timeout=args.timeout)
        else:
            while True:
                time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        pool.stop()
        db.close()
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    """Inspect and drive the durable job queue of a storage directory."""
    from repro.db import Database
    from repro.jobs import JobQueue, default_handlers, run_pending

    db = Database.open(args.dir)
    queue = JobQueue(db)
    try:
        if args.enqueue_classify:
            job = queue.enqueue("classify", {})
            print(f"enqueued classify job {job['id']}")
        if args.drain:
            if "materials" not in db:
                print(f"{args.dir} has no materials table", file=sys.stderr)
                return 1
            run = run_pending(queue, default_handlers(Repository(db)))
            print(f"ran {run} job(s)")
        if args.job is not None:
            job = queue.get(args.job)
            if job is None:
                print(f"no job with id {args.job}", file=sys.stderr)
                return 1
            for key in ("id", "kind", "status", "attempts", "max_attempts",
                        "payload", "result", "error"):
                print(f"{key}: {job.get(key)}")
            return 0
        counts = queue.counts()
        print("  ".join(f"{state}={n}" for state, n in counts.items()))
        for job in queue.jobs()[:args.limit]:
            print(f"  #{job['id']} {job['kind']:10s} {job['status']:7s} "
                  f"attempts={job['attempts']}/{job['max_attempts']} "
                  f"{job['error'] or ''}".rstrip())
    finally:
        db.close()
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    """Synthesize a blocked-checkpoint database of N materials on disk.

    Bypasses the engine's insert path (see
    :func:`repro.corpus.generator.synthesize_database`), so a million
    materials lands in seconds with flat memory — and opening the
    result pages rows in lazily through the block cache.
    """
    import time

    from repro.corpus.generator import GeneratorConfig, synthesize_database

    config = GeneratorConfig(
        n_materials=args.n, seed=args.seed, collection=args.collection,
    )
    t0 = time.perf_counter()
    out = synthesize_database(
        args.dir, config,
        ontology_name=args.ontology, block_rows=args.block_rows,
    )
    elapsed = time.perf_counter() - t0
    print(f"synthesized {out['materials']} materials "
          f"({out['links']} classification links) into {args.dir} "
          f"in {elapsed:.1f}s")
    print(f"open with: carcs recover {args.dir}  (or Database.open)")
    return 0


def _parse_address(raw: str) -> tuple[str, int]:
    host, _, port = raw.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"expected HOST:PORT, got {raw!r}")
    return host, int(port)


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve the REST API — standalone, or as one node of a replicated
    deployment:

    * ``carcs serve`` — the single-node server (as before).
    * ``carcs serve --primary`` — also bind the WAL shipper so replicas
      can stream this node's commits.
    * ``carcs serve --replica HOST:PORT`` — bootstrap from that primary's
      shipper, keep applying its stream, and serve the read surface
      (mutations answer 403 pointing at the primary).
    * ``carcs serve --router --primary-url URL --replica-url URL ...`` —
      the front tier: writes to the primary, reads fanned across the
      replicas with read-your-writes per ``x-carcs-session``.
    """
    from repro.web import CarCsApi, FrontTier, HttpBackend
    from repro.web.server import ApiServer

    if args.router:
        if not args.primary_url:
            raise SystemExit("--router requires --primary-url")
        front = FrontTier(
            HttpBackend("primary", args.primary_url),
            [HttpBackend(f"replica-{i}", url)
             for i, url in enumerate(args.replica_url)],
            rate_limit=args.rate_limit,
            rate_burst=args.rate_burst,
            max_inflight=args.max_inflight,
        )
        server = ApiServer(front, host=args.host, port=args.port)
        print(f"routing at {server.url}: writes -> {args.primary_url}, "
              f"reads -> {len(args.replica_url)} replica(s) (Ctrl-C to stop)")
        server.serve_forever()
        return 0

    if args.replica:
        from repro.db import Database
        from repro.replication import ReplicaApplier

        # The replica database starts empty and receives its entire
        # state from the stream — local writes would fork its history,
        # so the Repository facade is only attached once the bootstrap
        # snapshot has landed (its schema comes from the primary).
        db = Database("carcs-replica")
        applier = ReplicaApplier(db, _parse_address(args.replica)).start()
        print(f"replica {applier.replica_id}: bootstrapping from "
              f"{args.replica} ...")
        while not applier.wait_ready(1.0):
            print("  waiting for the primary ...")
        repo = Repository(db)
        applier.on_snapshot = repo.refresh_bindings
        api = CarCsApi(
            repo, replication=applier, read_only=True,
            primary_url=args.primary_url,
            rate_limit=args.rate_limit, rate_burst=args.rate_burst,
            max_inflight=args.max_inflight,
        )
        server = ApiServer(api, host=args.host, port=args.port)
        print(f"serving read-only CAR-CS API at {server.url} "
              f"(version {db.version}, Ctrl-C to stop)")
        try:
            server.serve_forever()
        finally:
            applier.stop()
        return 0

    repo = _open_repository(args)
    replication = None
    if args.primary:
        from repro.replication import PrimaryShipper

        replication = PrimaryShipper(
            repo.db, args.repl_host, args.repl_port,
            checkpoint_every=args.checkpoint_every,
        ).start()
        host, port = replication.address
        print(f"shipping WAL frames at {host}:{port}")
    api = CarCsApi(
        repo, replication=replication, workers=args.workers,
        rate_limit=args.rate_limit, rate_burst=args.rate_burst,
        max_inflight=args.max_inflight,
    )
    server = ApiServer(api, host=args.host, port=args.port, threaded=True)
    suffix = f", {args.workers} job worker(s)" if args.workers else ""
    print(f"serving CAR-CS API at {server.url}{suffix} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        api.close()
        if replication is not None:
            replication.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="carcs",
        description="CAR-CS: classify and analyze pedagogical materials",
    )
    parser.add_argument(
        "--snapshot", help="operate on a JSON snapshot instead of the "
        "built-in seeded repository",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="repository summary")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("coverage", help="area coverage of a collection")
    p.add_argument("--collection", default=None)
    p.add_argument("--ontology", default="CS13")
    p.add_argument("--tree", action="store_true", help="render the tree")
    p.add_argument("--depth", type=int, default=2)
    p.add_argument("--all", action="store_true", help="include zero areas")
    p.set_defaults(fn=cmd_coverage)

    p = sub.add_parser("similarity", help="cross-collection similarity graph")
    p.add_argument("--left", default="nifty")
    p.add_argument("--right", default="peachy")
    p.add_argument("--threshold", type=int, default=2)
    p.set_defaults(fn=cmd_similarity)

    p = sub.add_parser("search", help="faceted full-text search")
    p.add_argument("query")
    p.add_argument("--collection", default=None)
    p.add_argument("--under", default=None, help="ontology subtree key")
    p.add_argument("--limit", type=int, default=10)
    p.set_defaults(fn=cmd_search)

    p = sub.add_parser("gaps", help="community gap analysis")
    p.add_argument("--reference", default="nifty")
    p.add_argument("--candidate", default="peachy")
    p.add_argument("--ontology", default="CS13")
    p.set_defaults(fn=cmd_gaps)

    p = sub.add_parser("recommend", help="suggest classifications for text")
    p.add_argument("text")
    p.add_argument("--selected", nargs="*", default=None,
                   help="already-selected entry keys")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(fn=cmd_recommend)

    p = sub.add_parser("plan", help="greedy course plan over core topics")
    p.add_argument("--ontology", default="PDC12")
    p.add_argument("--tier", choices=("core", "core2", "all"), default="core")
    p.add_argument("--max-materials", type=int, default=None)
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser(
        "explain",
        help="show the query plan the cost-based planner picks for an "
             "ad-hoc query (estimated vs. actual rows per node)",
    )
    p.add_argument("table", help="table to query (e.g. materials)")
    p.add_argument("--eq", action="append", metavar="COLUMN=VALUE",
                   help="equality filter (repeatable)")
    p.add_argument("--range", action="append", metavar="COLUMN:LOW:HIGH",
                   help="range filter, empty bound = unbounded (repeatable)")
    p.add_argument("--prefix", action="append", metavar="COLUMN=PREFIX",
                   help="string-prefix filter (repeatable)")
    p.add_argument("--order", default=None, help="order-by column")
    p.add_argument("--desc", action="store_true", help="descending order")
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--offset", type=int, default=0)
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("diff", help="diff two ontology editions")
    p.add_argument("old")
    p.add_argument("new")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("export", help="write a JSON snapshot")
    p.add_argument("path")
    p.set_defaults(fn=cmd_export)

    p = sub.add_parser("profile", help="descriptive corpus statistics")
    p.add_argument("--collections", nargs="*", default=None)
    p.add_argument("--top", type=int, default=5)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("report", help="write the self-contained HTML report")
    p.add_argument("path")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("lint", help="lint classifications like an editor")
    p.add_argument("--collection", default=None)
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "trace",
        help="run one operation fully traced and print the span tree, or "
             "fetch a (stitched, fleet-wide) trace from a running node "
             "with --id/--url",
    )
    p.add_argument(
        "op", nargs="?", default=None,
        choices=("search", "coverage", "similarity", "recommend", "stats"),
    )
    p.add_argument("--id", default=None, metavar="TRACE_ID",
                   help="fetch this trace over HTTP instead of running "
                        "an operation locally")
    p.add_argument("--url", default="http://127.0.0.1:8080",
                   help="node or front-tier base URL (with --id)")
    p.add_argument("--query", default=None, help="search/recommend text")
    p.add_argument("--collection", default=None)
    p.add_argument("--ontology", default="PDC12")
    p.add_argument("--left", default="nifty")
    p.add_argument("--right", default="peachy")
    p.add_argument("--limit", type=int, default=10)
    p.add_argument("--slow-ms", type=float, default=100.0,
                   help="slow-span threshold for the SLOW marker")
    p.set_defaults(fn=cmd_trace, needs_repo=False)

    p = sub.add_parser(
        "top",
        help="live fleet ops view: per-member request rate, p99, SLO "
             "burn rates, queue depth and replica lag",
    )
    p.add_argument("--url", default="http://127.0.0.1:8080",
                   help="front-tier (or single node) base URL")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes")
    p.add_argument("--iterations", type=int, default=0,
                   help="stop after N refreshes (0 = until Ctrl-C)")
    p.add_argument("--window", default="5m",
                   help="SLO window to display (5m, 1h)")
    p.set_defaults(fn=cmd_top, needs_repo=False)

    p = sub.add_parser(
        "serve",
        help="serve the REST API over HTTP (standalone, --primary, "
             "--replica HOST:PORT, or --router)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--primary", action="store_true",
                   help="also bind the WAL shipper for read replicas")
    p.add_argument("--repl-host", default="127.0.0.1",
                   help="shipper bind host (with --primary)")
    p.add_argument("--repl-port", type=int, default=9090,
                   help="shipper bind port (with --primary; 0 = ephemeral)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="ship a snapshot checkpoint every N frames "
                        "(with --primary; 0 = bootstrap/catch-up only)")
    p.add_argument("--replica", metavar="HOST:PORT", default=None,
                   help="serve as a read replica streaming from this "
                        "primary shipper")
    p.add_argument("--router", action="store_true",
                   help="serve as the front tier over --primary-url / "
                        "--replica-url nodes")
    p.add_argument("--primary-url", default="",
                   help="primary node base URL (--router; also names the "
                        "write target in replica 403s)")
    p.add_argument("--replica-url", action="append", default=[],
                   help="replica node base URL (--router; repeatable)")
    p.add_argument("--workers", type=int, default=0,
                   help="start N in-process job workers beside the server "
                        "(0 = rely on external 'carcs worker' processes)")
    p.add_argument("--rate-limit", type=float, default=None,
                   help="admission control: sustained requests/second per "
                        "client before 429 (default: CARCS_RATE_LIMIT or off)")
    p.add_argument("--rate-burst", type=float, default=None,
                   help="admission control: per-client burst allowance "
                        "(default: CARCS_RATE_BURST or the rate)")
    p.add_argument("--max-inflight", type=int, default=None,
                   help="admission control: concurrent requests before 503 "
                        "(default: CARCS_MAX_INFLIGHT or off)")
    p.set_defaults(fn=cmd_serve, needs_repo=False)

    p = sub.add_parser(
        "synth",
        help="synthesize an N-material blocked database directory "
             "(vectorized, streams straight to the cold tier)",
    )
    p.add_argument("dir")
    p.add_argument("--n", type=int, default=100_000,
                   help="number of synthetic materials (default 100000)")
    p.add_argument("--ontology", default="CS13")
    p.add_argument("--seed", type=int, default=20190520)
    p.add_argument("--collection", default="synthetic")
    p.add_argument("--block-rows", type=int, default=None,
                   help="rows per storage block (default CARCS_BLOCK_ROWS "
                        "or 2048)")
    p.set_defaults(fn=cmd_synth, needs_repo=False)

    p = sub.add_parser(
        "worker",
        help="run a job worker pool against a durable storage directory",
    )
    p.add_argument("dir")
    p.add_argument("--threads", type=int, default=2)
    p.add_argument("--drain", action="store_true",
                   help="exit once the queue is empty instead of looping")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="drain deadline in seconds (with --drain)")
    p.set_defaults(fn=cmd_worker, needs_repo=False)

    p = sub.add_parser(
        "jobs",
        help="inspect/drive the durable job queue of a storage directory",
    )
    p.add_argument("dir")
    p.add_argument("--job", type=int, default=None,
                   help="show one job in full")
    p.add_argument("--limit", type=int, default=20,
                   help="jobs listed in the overview")
    p.add_argument("--enqueue-classify", action="store_true",
                   help="enqueue a classification sweep of every "
                        "unclassified material")
    p.add_argument("--drain", action="store_true",
                   help="run pending jobs inline before reporting")
    p.set_defaults(fn=cmd_jobs, needs_repo=False)

    p = sub.add_parser(
        "snapshot",
        help="persist the repository into a durable storage directory "
             "(full checkpoint + write-ahead log)",
    )
    p.add_argument("dir")
    p.add_argument("--wal-sync", choices=("always", "batch", "off"),
                   default=None, help="fsync policy for the attached WAL "
                   "(default: CARCS_WAL_SYNC or 'batch')")
    p.set_defaults(fn=cmd_snapshot)

    p = sub.add_parser(
        "recover",
        help="open a durable storage directory, replay the WAL tail "
             "(truncating a torn final record) and print what happened",
    )
    p.add_argument("dir")
    p.set_defaults(fn=cmd_recover, needs_repo=False)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not getattr(args, "needs_repo", True):
        return args.fn(args)
    fn: Callable[[Repository, argparse.Namespace], int] = args.fn
    repo = _open_repository(args)
    return fn(repo, args)


if __name__ == "__main__":
    sys.exit(main())
