#!/usr/bin/env python
"""Relative-link checker for the documentation set.

Walks the markdown files CI guards (``docs/*.md`` plus the top-level
README/DESIGN/EXPERIMENTS/ROADMAP) and verifies that every relative
markdown link — ``[text](path)`` and reference-style ``[text]: path`` —
resolves to a file that exists.  External (``http``/``https``/
``mailto``) links and pure in-page ``#anchors`` are skipped; a
``path#anchor`` link is checked for the file only.

Exit status 1 lists every broken link as ``file:line: target``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_GLOBS = ("docs/*.md", "README.md", "DESIGN.md", "EXPERIMENTS.md",
             "ROADMAP.md", "CHANGES.md")

# Inline [text](target) — target ends at the first unnested ")".
_INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference-style "[label]: target" at line start.
_REFERENCE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def doc_files() -> list[Path]:
    files: list[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    return files


def targets_in(text: str) -> list[tuple[int, str]]:
    """(line number, link target) for every markdown link in ``text``."""
    found: list[tuple[int, str]] = []
    for pattern in (_INLINE, _REFERENCE):
        for match in pattern.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            found.append((line, match.group(1)))
    return sorted(found)


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    for line, target in targets_in(path.read_text()):
        if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            rel = path.relative_to(REPO_ROOT)
            errors.append(f"{rel}:{line}: broken link -> {target}")
    return errors


def main() -> int:
    files = doc_files()
    errors = [err for path in files for err in check_file(path)]
    if errors:
        sys.stderr.write("\n".join(errors) + "\n")
        return 1
    print(f"doc links ok: {len(files)} files checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
