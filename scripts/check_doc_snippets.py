#!/usr/bin/env python
"""Execute the ``python`` code blocks of the documented guides.

``docs/db-internals.md`` teaches the storage engine through runnable
examples whose ``assert`` lines state the API contract.  This gate
extracts every fenced ``python`` block from each guarded document and
executes them top-to-bottom in one shared namespace per document — if
an engine API is renamed, a plan shape changes, or a documented number
drifts, the corresponding block raises and CI fails, pointing at the
exact block and line.

Usage::

    PYTHONPATH=src python scripts/check_doc_snippets.py

Exit status 1 reports the failing document, block number, and the
traceback of the first broken snippet.
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Documents whose python blocks must execute cleanly.
GUARDED_DOCS = (
    "docs/db-internals.md",
    "docs/observability.md",
    "docs/capacity.md",
)

_FENCE = re.compile(
    r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL
)


def python_blocks(text: str) -> list[tuple[int, str]]:
    """(starting line number, source) for every ```python fence."""
    blocks = []
    for match in _FENCE.finditer(text):
        line = text.count("\n", 0, match.start(1)) + 1
        blocks.append((line, match.group(1)))
    return blocks


def run_document(path: Path) -> int:
    text = path.read_text(encoding="utf-8")
    blocks = python_blocks(text)
    if not blocks:
        print(f"{path}: no python blocks found (is the doc gutted?)")
        return 1
    namespace: dict = {"__name__": f"docsnippet:{path.name}"}
    for number, (line, source) in enumerate(blocks, start=1):
        # Pad with blank lines so tracebacks point at the real line in
        # the markdown file, not a line within the extracted block.
        padded = "\n" * (line - 1) + source
        try:
            exec(compile(padded, str(path), "exec"), namespace)
        except Exception:
            print(f"{path}: block {number} (line {line}) failed:")
            traceback.print_exc()
            return 1
    print(f"{path.relative_to(REPO_ROOT)}: "
          f"{len(blocks)} python block(s) executed OK")
    return 0


def main() -> int:
    status = 0
    for rel in GUARDED_DOCS:
        path = REPO_ROOT / rel
        if not path.exists():
            print(f"{rel}: missing")
            status = 1
            continue
        status |= run_document(path)
    return status


if __name__ == "__main__":
    sys.exit(main())
