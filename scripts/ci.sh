#!/usr/bin/env bash
# Tier-1 gate: byte-compile everything, then run the unit/integration
# suite.  Benchmarks are excluded (run them with `pytest benchmarks/`).
set -euo pipefail

cd "$(dirname "$0")/.."

python -m compileall -q src
PYTHONPATH=src python -m pytest -x -q tests/

# Docs gate: the generated API reference must match the live route
# table, and every relative doc link must resolve.
PYTHONPATH=src python scripts/gen_api_docs.py --check
python scripts/check_doc_links.py

# Observability gate: sampled tracing must stay within its 10%
# warm-path overhead budget (docs/architecture.md, "Observability").
PYTHONPATH=src python -m pytest -q benchmarks/bench_obs.py

# Storage gate: pinned MVCC reads must beat the RWLock read path >= 2x
# under a durable writer, and batch-mode WAL ingest must stay within
# 30% of in-memory (docs/architecture.md, "Storage & durability").
PYTHONPATH=src python -m pytest -q benchmarks/bench_storage.py
