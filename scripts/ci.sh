#!/usr/bin/env bash
# Tier-1 gate: byte-compile everything, then run the unit/integration
# suite.  Benchmarks are excluded (run them with `pytest benchmarks/`).
set -euo pipefail

cd "$(dirname "$0")/.."

# Every benchmark gate below records its measured value + threshold
# into this machine-readable artifact (see benchmarks/_results.py).
export CARCS_BENCH_RESULTS="${CARCS_BENCH_RESULTS:-BENCH_results.json}"
rm -f "$CARCS_BENCH_RESULTS"

python -m compileall -q src
PYTHONPATH=src python -m pytest -x -q tests/

# Multi-process e2e: real `carcs serve` primary/replica/router
# processes over loopback — replication, plus one trace id covering
# router -> primary -> job worker (skipped by default; CI opts in).
CARCS_MULTIPROC=1 PYTHONPATH=src python -m pytest -q \
    tests/replication/test_multiprocess.py tests/web/test_multiproc_trace.py

# Docs gate: the generated API reference must match the live route
# table, every relative doc link must resolve, and the runnable
# examples in docs/db-internals.md must execute against the real
# engine API (drift fails the build).
PYTHONPATH=src python scripts/gen_api_docs.py --check
python scripts/check_doc_links.py
PYTHONPATH=src python scripts/check_doc_snippets.py

# Observability gate: sampled tracing must stay within its 10%
# warm-path overhead budget, single-node and with trace-context
# propagation on a router->primary proxied request
# (docs/architecture.md, "Observability").
PYTHONPATH=src python -m pytest -q benchmarks/bench_obs.py

# Storage gate: pinned MVCC reads must beat the RWLock read path >= 2x
# under a durable writer, and batch-mode WAL ingest must stay within
# 30% of in-memory (docs/architecture.md, "Storage & durability").
PYTHONPATH=src python -m pytest -q benchmarks/bench_storage.py

# Jobs gate: enqueue-to-suggestion throughput of the classification
# queue must stay above its floor at a 10^3-material backlog
# (docs/architecture.md, "Jobs").
PYTHONPATH=src python -m pytest -q benchmarks/bench_jobs.py

# Planner gate: at 10^5 materials a planner-chosen indexed
# equality+order query must beat the naive full-scan interpretation
# >= 10x, and the coverage/gap analytics must stay within their latency
# budgets (docs/architecture.md, "Query planning").
PYTHONPATH=src python -m pytest -q benchmarks/bench_scale.py -k "at_1e5"

# Replication gate: read fan-out across replicas must scale >= 3x with
# 4 replicas on >= 4 usable CPUs (no-collapse floor on smaller hosts),
# and replica staleness must stay bounded under sustained writes
# (docs/architecture.md, "Replication").
PYTHONPATH=src python -m pytest -q benchmarks/bench_replication.py

# Tiered-storage gate: a 10^5-material blocked checkpoint (synthesized
# out of process by `carcs synth`) must open lazily with RSS growth
# bounded by the block-cache budget + fixed overhead, and sustained
# overload must be absorbed as 429s while served p99 stays in budget
# (docs/capacity.md).
PYTHONPATH=src python -m pytest -q benchmarks/bench_tiered.py

# Opt-in scale stage (CARCS_SCALE=1): the same bounded-RSS gate at
# 10^6 materials, plus the slow/scale-marked test tiers — minutes of
# wall clock and gigabytes of disk, so nightly CI flips the flag.
if [ "${CARCS_SCALE:-0}" = "1" ]; then
    CARCS_SLOW=1 CARCS_SCALE=1 PYTHONPATH=src python -m pytest -q \
        -m "slow or scale" tests/
    CARCS_SCALE=1 PYTHONPATH=src python -m pytest -q \
        benchmarks/bench_tiered.py -k "1e6"
fi
