"""Property-based tests on ontology tree invariants (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ontology import NodeKind, Ontology


@st.composite
def random_tree(draw) -> Ontology:
    """A random valid ontology of up to ~40 nodes."""
    onto = Ontology("R")
    n = draw(st.integers(min_value=1, max_value=40))
    keys = [onto.root.key]
    for i in range(n):
        parent = draw(st.sampled_from(keys))
        kind = draw(st.sampled_from([NodeKind.AREA, NodeKind.UNIT, NodeKind.TOPIC]))
        key = f"R/n{i}"
        onto.add(key, f"node {i}", kind, parent)
        keys.append(key)
    onto.validate()
    return onto


@given(random_tree())
def test_walk_visits_every_node_once(onto):
    visited = [n.key for n in onto.walk()]
    assert len(visited) == len(set(visited)) == len(onto) + 1


@given(random_tree(), st.data())
def test_path_is_consistent_with_depth_and_parent(onto, data):
    node = data.draw(st.sampled_from(onto.nodes()))
    path = onto.path(node.key)
    assert path[0].key == onto.root.key
    assert path[-1].key == node.key
    assert len(path) == onto.depth(node.key) + 1
    # successive elements are parent/child pairs
    for parent, child in zip(path, path[1:]):
        assert child.parent == parent.key


@given(random_tree(), st.data())
def test_subtree_of_ancestor_contains_descendant(onto, data):
    node = data.draw(st.sampled_from(onto.nodes()))
    for ancestor in onto.ancestors(node.key):
        assert node.key in onto.subtree_keys(ancestor.key)


@given(random_tree())
def test_leaves_partition_against_internal_nodes(onto):
    leaves = {n.key for n in onto.leaves()}
    internal = {n.key for n in onto.walk()} - leaves
    for key in internal:
        assert onto.node(key).children
    for key in leaves:
        assert not onto.node(key).children


@given(random_tree(), st.data())
def test_area_of_is_idempotent_fixed_point(onto, data):
    node = data.draw(st.sampled_from(onto.nodes()))
    area = onto.area_of(node.key)
    assert area is not None
    assert onto.area_of(area.key).key == area.key
    assert onto.depth(area.key) == 1


@settings(max_examples=25)
@given(random_tree(), st.text(min_size=1, max_size=3))
def test_search_results_actually_match(onto, phrase):
    for hit in onto.search(phrase):
        assert phrase.lower().strip() in hit.label.lower()
