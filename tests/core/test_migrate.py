"""Classification migration across ontology editions."""

import pytest

from repro.core.classification import ClassificationSet
from repro.core.material import Material
from repro.core.migrate import migrate_classifications
from repro.core.ontology import BloomLevel
from repro.core.coverage import compute_coverage
from repro.ontologies import load, pdc12, pdc2019


AMDAHL12 = pdc12.key_of(
    "PROG", "Performance issues", "Data: Amdahl's Law and its consequences"
)
BUNDLE12 = pdc12.key_of(
    "ALGO", "Parallel and Distributed Models and Complexity",
    "Model-based notions: BSP/CILK multithreaded models",
)
PTHREADS12 = pdc12.key_of(
    "PROG", "Parallel programming paradigms and notations",
    "Programming notations: threads (e.g., pthreads)",
)


def add(repo, title, keys, blooms=None):
    cs = ClassificationSet()
    for i, key in enumerate(keys):
        bloom = (blooms or {}).get(key)
        cs.add("PDC12", key, bloom)
    return repo.add_material(
        Material(title=title, description="d", collection="c"), cs
    )


class TestMigration:
    def test_one_to_one_links_carried(self, fresh_repo):
        m = add(fresh_repo, "A", [PTHREADS12])
        report = migrate_classifications(
            fresh_repo, "PDC12", load("PDC19"), pdc2019.translate_key
        )
        assert report.migrated_links == 1
        cs = fresh_repo.classification_of(m.id)
        assert len(cs.keys("PDC19")) == 1
        assert not cs.keys("PDC12")  # old link removed by default

    def test_moved_topic_lands_in_new_home(self, fresh_repo):
        m = add(fresh_repo, "A", [AMDAHL12])
        migrate_classifications(
            fresh_repo, "PDC12", load("PDC19"), pdc2019.translate_key
        )
        (key,) = fresh_repo.classification_of(m.id).keys("PDC19")
        assert load("PDC19").area_of(key).label == "Algorithm"

    def test_split_topic_expands(self, fresh_repo):
        m = add(fresh_repo, "A", [BUNDLE12])
        report = migrate_classifications(
            fresh_repo, "PDC12", load("PDC19"), pdc2019.translate_key
        )
        assert report.expanded_links == 1
        assert len(fresh_repo.classification_of(m.id).keys("PDC19")) == 2

    def test_bloom_levels_preserved(self, fresh_repo):
        m = add(fresh_repo, "A", [PTHREADS12],
                blooms={PTHREADS12: BloomLevel.APPLY})
        migrate_classifications(
            fresh_repo, "PDC12", load("PDC19"), pdc2019.translate_key
        )
        cs = fresh_repo.classification_of(m.id)
        (key,) = cs.keys("PDC19")
        assert cs.bloom("PDC19", key) is BloomLevel.APPLY

    def test_keep_old_retains_both_editions(self, fresh_repo):
        m = add(fresh_repo, "A", [PTHREADS12])
        migrate_classifications(
            fresh_repo, "PDC12", load("PDC19"), pdc2019.translate_key,
            keep_old=True,
        )
        cs = fresh_repo.classification_of(m.id)
        assert cs.keys("PDC12") and cs.keys("PDC19")

    def test_dropped_links_keep_old_classification(self, fresh_repo):
        m = add(fresh_repo, "A", [PTHREADS12])
        report = migrate_classifications(
            fresh_repo, "PDC12", load("PDC19"), lambda key: (),
        )
        assert report.dropped_links == [(m.id, PTHREADS12)]
        # nothing lost: the old link survives for editorial review
        assert fresh_repo.classification_of(m.id).keys("PDC12")

    def test_other_ontologies_untouched(self, fresh_repo):
        from repro.corpus import keys as K
        cs = ClassificationSet()
        cs.add("CS13", K.SDF_ARRAYS)
        cs.add("PDC12", PTHREADS12)
        m = fresh_repo.add_material(
            Material(title="A", description="d", collection="c"), cs
        )
        migrate_classifications(
            fresh_repo, "PDC12", load("PDC19"), pdc2019.translate_key
        )
        assert fresh_repo.classification_of(m.id).has("CS13", K.SDF_ARRAYS)

    def test_full_seeded_migration_preserves_coverage_shape(self, seeded_repo):
        # migrate a *copy* (via snapshot) so the session fixture stays pure
        from repro.core.persist import export_repository, import_repository

        copy = import_repository(export_repository(seeded_repo))
        report = migrate_classifications(
            copy, "PDC12", load("PDC19"), pdc2019.translate_key
        )
        assert not report.dropped_links
        cov = compute_coverage(copy, "PDC19", collection="itcs3145")
        ranking = [
            (a.label, n)
            for a, n in cov.area_ranking(copy.ontology("PDC19")) if n
        ]
        # Programming still leads; Amdahl's move nudges Algorithm up but
        # the class shape survives the edition change.
        assert ranking[0][0] in ("Programming", "Algorithm")
        assert dict(ranking)["Architecture"] <= 3

    def test_unknown_old_ontology_rejected(self, fresh_repo):
        with pytest.raises(KeyError):
            migrate_classifications(
                fresh_repo, "NOPE", load("PDC19"), pdc2019.translate_key
            )
