"""The incremental inverted index: unit behaviour + rebuild parity.

The load-bearing property: after *any* sequence of repository mutations,
the incrementally maintained BM25 index answers every query identically
— same hits, bit-identical scores — to an index rebuilt from scratch.
Randomized mutation sequences drive that invariant below.
"""

from __future__ import annotations

import random

import pytest

from repro.core.classification import ClassificationSet
from repro.core.index import MaterialIndex
from repro.core.material import CourseLevel, Material, MaterialKind
from repro.core.search import (
    MODE_BM25,
    MODE_DENSE,
    SearchEngine,
    SearchFilters,
    env_mode,
)
from repro.corpus import keys as K

WORDS = (
    "parallel", "distributed", "graph", "matrix", "sort", "thread",
    "openmp", "mpi", "cuda", "loop", "queue", "tree", "hash", "monte",
    "carlo", "pipeline", "reduce", "broadcast", "simulation", "kernel",
)
KEYS = (K.P_OPENMP, K.PD_LOOPS, K.AL_SORT_QUAD, K.AL_BST, K.SDF_ARRAYS,
        K.SDF_CTRL, K.SDF_RECURSION)
PROBES = (
    ("parallel graph sort", None),
    ("monte carlo simulation", None),
    ("thread queue", SearchFilters(collections=("alpha",))),
    ("", SearchFilters(under=("CS13/AL",))),
    ("loop matrix", SearchFilters(years=(2012, 2018))),
    ("", None),
)


def _mk_material(rng: random.Random, i: int) -> Material:
    return Material(
        title=" ".join(rng.sample(WORDS, 3)) + f" {i}",
        description=" ".join(rng.choices(WORDS, k=8)),
        kind=rng.choice(list(MaterialKind)),
        course_level=rng.choice(list(CourseLevel) + [None]),
        languages=tuple(rng.sample(("Python", "C", "Java"), rng.randint(0, 2))),
        datasets=("numbers",) if rng.random() < 0.3 else (),
        tags=tuple(rng.sample(("intro", "hpc", "viz"), rng.randint(0, 2))),
        collection=rng.choice(("alpha", "beta", "")),
        year=rng.choice((None, 2010, 2015, 2018)),
    )


def _assert_parity(incremental: SearchEngine, repo) -> None:
    rebuilt = SearchEngine(repo, mode=MODE_BM25)
    rebuilt.refresh()
    for text, filters in PROBES:
        got = incremental.search(text, filters, limit=50)
        want = rebuilt.search(text, filters, limit=50)
        assert [h.material.id for h in got] == [h.material.id for h in want]
        assert [h.score for h in got] == [h.score for h in want]  # bitwise
    for mid in sorted(rebuilt._index.docs)[:5]:
        got = incremental.similar_to(mid, limit=10)
        want = rebuilt.similar_to(mid, limit=10)
        assert [(h.material.id, h.score) for h in got] == [
            (h.material.id, h.score) for h in want
        ]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_mutation_sequences_match_full_rebuild(fresh_repo, seed):
    rng = random.Random(seed)
    engine = SearchEngine(fresh_repo, mode=MODE_BM25)
    ids: list[int] = []
    for i in range(8):  # starting corpus
        cs = ClassificationSet()
        for key in rng.sample(KEYS, rng.randint(0, 3)):
            cs.add(key.split("/", 1)[0], key)
        ids.append(fresh_repo.add_material(_mk_material(rng, i), cs).id)
    engine.search("parallel")  # build once; everything after is delta

    for step in range(40):
        op = rng.random()
        if op < 0.3 or not ids:
            cs = ClassificationSet()
            for key in rng.sample(KEYS, rng.randint(0, 3)):
                cs.add(key.split("/", 1)[0], key)
            ids.append(
                fresh_repo.add_material(_mk_material(rng, 100 + step), cs).id
            )
        elif op < 0.5:
            fresh_repo.update_material(
                rng.choice(ids),
                title=" ".join(rng.sample(WORDS, 3)),
                description=" ".join(rng.choices(WORDS, k=6)),
            )
        elif op < 0.65:
            key = rng.choice(KEYS)
            fresh_repo.classify(
                rng.choice(ids), key.split("/", 1)[0], key
            )
        elif op < 0.8:
            fresh_repo.declassify(rng.choice(ids), rng.choice(KEYS))
        else:
            mid = ids.pop(rng.randrange(len(ids)))
            fresh_repo.delete_material(mid)
        if step % 5 == 4:
            _assert_parity(engine, fresh_repo)
    _assert_parity(engine, fresh_repo)
    # The whole run must have been served by delta catch-up: the one
    # eager build, then never a refit.
    assert engine.full_rebuilds == 1
    assert engine.delta_catchups > 0


class TestDeltaMaintenance:
    def test_single_patch_reindexes_one_doc(self, fresh_repo):
        for i in range(5):
            fresh_repo.add_material(
                Material(title=f"material {i}", description="graph sort")
            )
        engine = SearchEngine(fresh_repo, mode=MODE_BM25)
        engine.search("graph")
        assert engine.full_rebuilds == 1
        mid = fresh_repo.materials()[0].id
        fresh_repo.update_material(mid, title="updated openmp loops")
        hits = engine.search("openmp")
        assert [h.material.id for h in hits] == [mid]
        assert engine.full_rebuilds == 1
        assert engine.delta_catchups == 1
        assert engine.docs_reindexed == 1

    def test_irrelevant_tables_do_not_touch_the_index(self, fresh_repo):
        from repro.core.repository import Role

        fresh_repo.add_material(Material(title="alpha", description="beta"))
        engine = SearchEngine(fresh_repo, mode=MODE_BM25)
        engine.search("alpha")
        fresh_repo.add_user("reader", Role.USER)
        engine.search("alpha")
        assert engine.full_rebuilds == 1
        assert engine.docs_reindexed == 0  # user writes are filtered out

    def test_outrun_journal_falls_back_to_full_rebuild(self):
        from repro.core.repository import Repository
        from repro.corpus.seed import seed_ontologies

        repo = Repository()
        seed_ontologies(repo)
        engine = SearchEngine(repo, mode=MODE_BM25)
        engine.search("x")
        builds = engine.full_rebuilds
        # Far more mutations than the journal retains (each add_material
        # writes several rows across materials + link + name tables).
        for i in range(600):
            repo.add_material(
                Material(title=f"bulk {i}", description="graph sort",
                         tags=(f"t{i}",), languages=("Python",))
            )
        engine.search("bulk")
        assert engine.full_rebuilds == builds + 1
        assert engine.search("graph", limit=1000)

    def test_index_built_in_transaction_is_not_kept(self, fresh_repo):
        fresh_repo.add_material(Material(title="committed", description="x"))
        engine = SearchEngine(fresh_repo, mode=MODE_BM25)
        with pytest.raises(RuntimeError):
            with fresh_repo.db.transaction():
                fresh_repo.add_material(
                    Material(title="phantom", description="x")
                )
                # Inside the transaction the phantom row is visible...
                titles = [
                    h.material.title for h in engine.search("phantom")
                ]
                assert titles == ["phantom"]
                raise RuntimeError("abort")
        # ...after rollback it is gone, even though the version counter
        # was restored (the re-used-version trap).
        assert engine.search("phantom") == []
        assert [h.material.title for h in engine.search("committed")]


class TestMaterialIndex:
    def test_add_remove_roundtrip_is_clean(self):
        index = MaterialIndex()
        m = Material(title="parallel sorting", description="with threads",
                     tags=("hpc",), languages=("C",), collection="alpha",
                     year=2018, datasets=("d",), id=7)
        index.add(m, frozenset({"CS13/AL"}))
        assert index.stats()["docs"] == 1
        assert index.stats()["postings"] > 0
        assert index.remove(7)
        stats = index.stats()
        assert stats == {"docs": 0, "terms": 0, "postings": 0,
                         "facet_postings": 0}
        assert not index.remove(7)

    def test_double_add_rejected(self):
        index = MaterialIndex()
        m = Material(title="x y", description="", id=1)
        index.add(m, frozenset())
        with pytest.raises(ValueError):
            index.add(m, frozenset())

    def test_candidates_intersect_facets(self):
        index = MaterialIndex()
        index.add(Material(title="a b", description="", languages=("C",),
                           collection="alpha", id=1), frozenset())
        index.add(Material(title="c d", description="", languages=("C",),
                           collection="beta", id=2), frozenset())
        both = index.candidates(SearchFilters(languages=("c",)))
        assert both == {1, 2}
        one = index.candidates(
            SearchFilters(languages=("c",), collections=("alpha",))
        )
        assert one == {1}

    def test_scores_empty_on_empty_index(self):
        assert MaterialIndex().score(["anything"], set()) == {}


class TestModeSelection:
    def test_default_is_bm25(self, monkeypatch):
        monkeypatch.delenv("CARCS_SEARCH", raising=False)
        assert env_mode() == MODE_BM25

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("CARCS_SEARCH", "dense")
        assert env_mode() == MODE_DENSE
        monkeypatch.setenv("CARCS_SEARCH", "anything-else")
        assert env_mode() == MODE_BM25

    def test_engine_honours_env(self, fresh_repo, monkeypatch):
        monkeypatch.setenv("CARCS_SEARCH", "dense")
        assert SearchEngine(fresh_repo).mode == MODE_DENSE

    def test_modes_agree_on_hit_sets(self, fresh_repo):
        """Ranking differs (BM25 vs cosine) but the *hit set* for a
        query and the facet matches must coincide."""
        rng = random.Random(42)
        for i in range(10):
            cs = ClassificationSet()
            for key in rng.sample(KEYS, 2):
                cs.add(key.split("/", 1)[0], key)
            fresh_repo.add_material(_mk_material(rng, i), cs)
        bm25 = SearchEngine(fresh_repo, mode=MODE_BM25)
        dense = SearchEngine(fresh_repo, mode=MODE_DENSE)
        for text, filters in PROBES:
            got = {h.material.id for h in bm25.search(text, filters, limit=100)}
            want = {h.material.id for h in dense.search(text, filters, limit=100)}
            assert got == want
