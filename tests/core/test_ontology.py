"""Ontology tree structure and traversal."""

import pytest

from repro.core.ontology import BloomLevel, NodeKind, Ontology, Tier


@pytest.fixture()
def small():
    onto = Ontology("T", "test ontology")
    onto.add("T/A", "Area A", NodeKind.AREA, code="A")
    onto.add("T/B", "Area B", NodeKind.AREA, code="B")
    onto.add("T/A/u1", "Unit one", NodeKind.UNIT, "T/A", tier=Tier.CORE1)
    onto.add("T/A/u1/t1", "Topic alpha", NodeKind.TOPIC, "T/A/u1",
             bloom=BloomLevel.APPLY)
    onto.add("T/A/u1/t2", "Topic beta", NodeKind.TOPIC, "T/A/u1")
    onto.add("T/A/u1/o1", "Explain alpha", NodeKind.LEARNING_OUTCOME,
             "T/A/u1", bloom=BloomLevel.FAMILIARITY)
    onto.add("T/B/u1", "Unit two", NodeKind.UNIT, "T/B")
    onto.validate()
    return onto


class TestConstruction:
    def test_len_excludes_root(self, small):
        assert len(small) == 7

    def test_duplicate_key_rejected(self, small):
        with pytest.raises(ValueError):
            small.add("T/A", "again", NodeKind.AREA)

    def test_unknown_parent_rejected(self, small):
        with pytest.raises(KeyError):
            small.add("T/X/y", "y", NodeKind.TOPIC, "T/X")

    def test_default_parent_is_root(self):
        onto = Ontology("T")
        node = onto.add("T/A", "A", NodeKind.AREA)
        assert node.parent == "T"

    def test_validate_detects_parent_child_mismatch(self, small):
        small._nodes["T/A/u1"].parent = "T/B"
        with pytest.raises(ValueError):
            small.validate()

    def test_validate_detects_unknown_child(self, small):
        small._nodes["T/A"].children.append("T/ghost")
        with pytest.raises(ValueError):
            small.validate()

    def test_validate_detects_bad_cross_link(self, small):
        object.__setattr__  # noqa: B018 - dataclass not frozen; direct set ok
        small._nodes["T/A/u1/t1"].cross_links = ("T/nonexistent",)
        with pytest.raises(ValueError):
            small.validate()

    def test_cross_links_resolve(self):
        onto = Ontology("T")
        onto.add("T/A", "A", NodeKind.AREA)
        onto.add("T/B", "B", NodeKind.AREA)
        onto.add("T/B/x", "x", NodeKind.TOPIC, "T/B", cross_links=("T/A",))
        onto.validate()


class TestLookups:
    def test_node_and_get(self, small):
        assert small.node("T/A/u1/t1").label == "Topic alpha"
        assert small.get("T/none") is None
        with pytest.raises(KeyError):
            small.node("T/none")

    def test_contains(self, small):
        assert "T/A" in small
        assert "T/zzz" not in small

    def test_children(self, small):
        labels = [n.label for n in small.children("T/A/u1")]
        assert labels == ["Topic alpha", "Topic beta", "Explain alpha"]

    def test_parent(self, small):
        assert small.parent("T/A/u1").key == "T/A"
        assert small.parent("T").is_leaf() is False if small.parent("T") else True

    def test_areas(self, small):
        assert [a.code for a in small.areas()] == ["A", "B"]


class TestTraversal:
    def test_walk_preorder(self, small):
        keys = [n.key for n in small.walk()]
        assert keys[0] == "T"
        assert keys.index("T/A") < keys.index("T/A/u1") < keys.index("T/A/u1/t1")
        assert keys.index("T/A/u1/t2") < keys.index("T/B")

    def test_walk_subtree(self, small):
        keys = set(small.subtree_keys("T/A"))
        assert keys == {"T/A", "T/A/u1", "T/A/u1/t1", "T/A/u1/t2", "T/A/u1/o1"}

    def test_ancestors(self, small):
        keys = [n.key for n in small.ancestors("T/A/u1/t1")]
        assert keys == ["T/A/u1", "T/A", "T"]

    def test_path_and_path_string(self, small):
        assert [n.key for n in small.path("T/A/u1/t1")] == [
            "T", "T/A", "T/A/u1", "T/A/u1/t1"
        ]
        assert small.path_string("T/A/u1/t1") == "Area A::Unit one::Topic alpha"

    def test_depth(self, small):
        assert small.depth("T") == 0
        assert small.depth("T/A") == 1
        assert small.depth("T/A/u1/t1") == 3

    def test_area_of(self, small):
        assert small.area_of("T/A/u1/t1").key == "T/A"
        assert small.area_of("T/A").key == "T/A"
        assert small.area_of("T") is None

    def test_leaves(self, small):
        leaf_keys = {n.key for n in small.leaves()}
        assert leaf_keys == {"T/A/u1/t1", "T/A/u1/t2", "T/A/u1/o1", "T/B/u1"}

    def test_nodes_excludes_root(self, small):
        assert all(n.kind is not NodeKind.ROOT for n in small.nodes())
        assert len(small.nodes()) == len(small)


class TestSearch:
    def test_substring_case_insensitive(self, small):
        assert [n.key for n in small.search("ALPHA")] == [
            "T/A/u1/t1", "T/A/u1/o1"
        ]

    def test_kind_filter(self, small):
        hits = small.search("alpha", kinds=[NodeKind.TOPIC])
        assert [n.key for n in hits] == ["T/A/u1/t1"]

    def test_limit(self, small):
        assert len(small.search("a", limit=2)) == 2

    def test_empty_phrase(self, small):
        assert small.search("   ") == []

    def test_count_by_kind(self, small):
        counts = small.count_by_kind()
        assert counts[NodeKind.AREA] == 2
        assert counts[NodeKind.TOPIC] == 2
        assert counts[NodeKind.LEARNING_OUTCOME] == 1


class TestBloomLevels:
    def test_rank_ordering_pdc_scale(self):
        assert (
            BloomLevel.KNOW.rank()
            < BloomLevel.COMPREHEND.rank()
            < BloomLevel.APPLY.rank()
        )

    def test_rank_ordering_cs13_scale(self):
        assert (
            BloomLevel.FAMILIARITY.rank()
            < BloomLevel.USAGE.rank()
            < BloomLevel.ASSESSMENT.rank()
        )

    def test_scales_are_comparable(self):
        assert BloomLevel.KNOW.rank() == BloomLevel.FAMILIARITY.rank()
        assert BloomLevel.APPLY.rank() == BloomLevel.ASSESSMENT.rank()
