"""Gap identification and alignment (Section IV-C machinery)."""

import pytest

from repro.core.classification import ClassificationSet
from repro.core.coverage import compute_coverage
from repro.core.gaps import alignment_score, curriculum_holes, find_gaps
from repro.core.material import Material
from repro.core.ontology import Tier
from repro.corpus import keys as K


def add(repo, title, keys, collection):
    cs = ClassificationSet()
    for key in keys:
        cs.add(key.split("/", 1)[0], key)
    return repo.add_material(
        Material(title=title, description="d", collection=collection), cs
    )


@pytest.fixture()
def two_corpora(fresh_repo):
    # reference: heavy on Arrays + control structures
    for i in range(3):
        add(fresh_repo, f"ref{i}", [K.SDF_ARRAYS, K.SDF_CTRL], "ref")
    add(fresh_repo, "ref-extra", [K.SDF_ARRAYS, K.AL_BIGO], "ref")
    # candidate: covers control structures and something unique
    add(fresh_repo, "cand0", [K.SDF_CTRL, K.P_OPENMP], "cand")
    add(fresh_repo, "cand1", [K.SDF_CTRL, K.PD_LOOPS], "cand")
    ref = compute_coverage(fresh_repo, "CS13", collection="ref")
    cand = compute_coverage(fresh_repo, "CS13", collection="cand")
    return fresh_repo, ref, cand


class TestFindGaps:
    def test_missing_in_candidate(self, two_corpora, cs13):
        repo, ref, cand = two_corpora
        report = find_gaps(cs13, ref, cand, min_reference_count=2)
        missing = {e.key for e in report.missing_in_candidate}
        assert K.SDF_ARRAYS in missing      # 4 ref materials, 0 candidate
        assert K.SDF_CTRL not in missing    # candidate covers it
        assert K.AL_BIGO not in missing     # only 1 ref material (< min)

    def test_unique_to_candidate(self, two_corpora, cs13):
        repo, ref, cand = two_corpora
        report = find_gaps(cs13, ref, cand)
        unique = {e.key for e in report.unique_to_candidate}
        assert K.PD_LOOPS in unique
        assert K.SDF_CTRL not in unique

    def test_ordering_by_reference_popularity(self, two_corpora, cs13):
        repo, ref, cand = two_corpora
        report = find_gaps(cs13, ref, cand)
        counts = [e.reference_count for e in report.missing_in_candidate]
        assert counts == sorted(counts, reverse=True)

    def test_top_development_targets_slices(self, two_corpora, cs13):
        repo, ref, cand = two_corpora
        report = find_gaps(cs13, ref, cand)
        assert len(report.top_development_targets(1)) <= 1

    def test_gap_entry_fields(self, two_corpora, cs13):
        repo, ref, cand = two_corpora
        report = find_gaps(cs13, ref, cand)
        entry = next(e for e in report.missing_in_candidate if e.key == K.SDF_ARRAYS)
        assert entry.label == "Arrays"
        assert "Software Development Fundamentals" in entry.path
        assert entry.deficit == 4

    def test_wrong_ontology_rejected(self, two_corpora, pdc12):
        repo, ref, cand = two_corpora
        with pytest.raises(ValueError):
            find_gaps(pdc12, ref, cand)


class TestAlignment:
    def test_identical_corpora_align_fully(self, fresh_repo, cs13):
        add(fresh_repo, "a", [K.SDF_ARRAYS, K.SDF_CTRL], "x")
        add(fresh_repo, "b", [K.SDF_ARRAYS, K.SDF_CTRL], "y")
        x = compute_coverage(fresh_repo, "CS13", collection="x")
        y = compute_coverage(fresh_repo, "CS13", collection="y")
        assert alignment_score(cs13, x, y) == pytest.approx(1.0)

    def test_disjoint_corpora_align_zero(self, fresh_repo, cs13):
        add(fresh_repo, "a", [K.SDF_ARRAYS], "x")
        add(fresh_repo, "b", [K.AL_BIGO], "y")
        x = compute_coverage(fresh_repo, "CS13", collection="x")
        y = compute_coverage(fresh_repo, "CS13", collection="y")
        assert alignment_score(cs13, x, y) == 0.0

    def test_empty_corpus_aligns_zero(self, fresh_repo, cs13):
        add(fresh_repo, "a", [K.SDF_ARRAYS], "x")
        x = compute_coverage(fresh_repo, "CS13", collection="x")
        empty = compute_coverage(fresh_repo, "CS13", collection="ghost")
        assert alignment_score(cs13, x, empty) == 0.0

    def test_alignment_symmetry(self, two_corpora, cs13):
        repo, ref, cand = two_corpora
        assert alignment_score(cs13, ref, cand) == pytest.approx(
            alignment_score(cs13, cand, ref)
        )


class TestCurriculumHoles:
    def test_holes_shrink_as_coverage_grows(self, fresh_repo, pdc12):
        empty = compute_coverage(fresh_repo, "PDC12", collection="ghost")
        before = curriculum_holes(pdc12, empty, tiers=(Tier.CORE,))
        add(fresh_repo, "m", [K.P_OPENMP], "c")
        after_cov = compute_coverage(fresh_repo, "PDC12", collection="c")
        after = curriculum_holes(pdc12, after_cov, tiers=(Tier.CORE,))
        assert len(after) == len(before) - 1
        assert all(n.tier is Tier.CORE for n in after)

    def test_no_tier_filter_counts_all_topics(self, fresh_repo, pdc12):
        empty = compute_coverage(fresh_repo, "PDC12", collection="ghost")
        holes = curriculum_holes(pdc12, empty)
        from repro.core.ontology import NodeKind
        n_topics = pdc12.count_by_kind()[NodeKind.TOPIC]
        assert len(holes) == n_topics
