"""JSON snapshot export/import."""

import json

import pytest

from repro.core.classification import ClassificationSet
from repro.core.material import CourseLevel, Material, MaterialKind
from repro.core.ontology import BloomLevel
from repro.core.persist import (
    export_repository,
    import_repository,
    load_json,
    save_json,
)
from repro.core.repository import Role
from repro.corpus import keys as K


@pytest.fixture()
def populated(fresh_repo):
    cs = ClassificationSet()
    cs.add("CS13", K.SDF_ARRAYS, BloomLevel.USAGE)
    cs.add("PDC12", K.P_OPENMP)
    fresh_repo.add_material(
        Material(
            title="Snapshot target",
            description="a material with every field set",
            kind=MaterialKind.LECTURE_SLIDES,
            authors=("Ada", "Bob"),
            url="http://example.org",
            course_level=CourseLevel.CS2,
            languages=("C",),
            datasets=("numbers",),
            tags=("demo",),
            collection="snap",
            year=2019,
        ),
        cs,
    )
    fresh_repo.add_user("ed", Role.EDITOR)
    return fresh_repo


class TestRoundTrip:
    def test_material_fields_survive(self, populated):
        restored = import_repository(export_repository(populated))
        m = restored.materials("snap")[0]
        original = populated.materials("snap")[0]
        assert m == original  # Material is a frozen dataclass

    def test_classifications_survive_with_bloom(self, populated):
        restored = import_repository(export_repository(populated))
        mid = restored.materials("snap")[0].id
        cs = restored.classification_of(mid)
        assert cs.has("CS13", K.SDF_ARRAYS)
        assert cs.bloom("CS13", K.SDF_ARRAYS) is BloomLevel.USAGE
        assert cs.has("PDC12", K.P_OPENMP)

    def test_material_ids_preserved(self, populated):
        original_id = populated.materials("snap")[0].id
        restored = import_repository(export_repository(populated))
        assert restored.materials("snap")[0].id == original_id

    def test_users_survive(self, populated):
        restored = import_repository(export_repository(populated))
        assert restored.db.table("users").find_one(name="ed")["role"] == "editor"

    def test_ontologies_self_contained(self, populated):
        data = export_repository(populated)
        restored = import_repository(data)
        assert len(restored.ontology("CS13")) == len(populated.ontology("CS13"))
        # node metadata survives
        node = restored.ontology("CS13").node(K.SDF_ARRAYS)
        assert node.label == "Arrays"

    def test_snapshot_is_pure_json(self, populated):
        data = export_repository(populated)
        json.dumps(data)  # must not raise

    def test_file_round_trip(self, populated, tmp_path):
        path = save_json(populated, tmp_path / "snap.json")
        restored = load_json(path)
        assert restored.material_count() == populated.material_count()

    def test_seeded_repository_round_trip(self, seeded_repo):
        restored = import_repository(export_repository(seeded_repo))
        assert restored.material_count() == 97
        assert (
            restored.stats()["classification_links"]
            == seeded_repo.stats()["classification_links"]
        )
        # an analysis gives identical results on the restored copy
        from repro.core.coverage import compute_coverage

        a = compute_coverage(seeded_repo, "CS13", collection="nifty")
        b = compute_coverage(restored, "CS13", collection="nifty")
        assert a.rollup_counts == b.rollup_counts


class TestVersioning:
    def test_unknown_version_rejected(self, populated):
        data = export_repository(populated)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            import_repository(data)

    def test_missing_version_rejected(self, populated):
        data = export_repository(populated)
        del data["format_version"]
        with pytest.raises(ValueError):
            import_repository(data)
